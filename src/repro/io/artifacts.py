"""Content-addressed persistence of plan run units.

A :class:`RunStore` is the on-disk cache behind
:meth:`repro.core.plan.ExperimentPlan.execute`: every executed
:class:`~repro.core.plan.RunUnit` is persisted under its content hash as a
JSON document (``units/<hash>.json``), with the raw ensemble optionally kept
as a sibling ``units/<hash>.npz``.

Design points:

* **Deterministic documents** — the stored JSON is a pure function of the
  unit's specification and its (seeded, hence reproducible) result: volatile
  wall-time diagnostics are stripped before writing.  Re-executing a plan
  against a warm store therefore leaves every byte of the store untouched,
  which is what makes resumed sweeps bit-identical to uninterrupted ones.
* **Atomic, durable writes** — documents are written to a temporary sibling,
  fsynced, and renamed into place (the containing directory is fsynced too),
  so an interrupted execution — or a power loss right after it — never
  leaves a truncated document behind; at worst the unit is simply missing
  and is recomputed on resume.  The raw-ensemble ``.npz`` is committed
  *before* its JSON document, so a crash between the two can only leave an
  **orphaned** archive (never a document referencing a missing archive);
  orphans are ignored by every read path and can be listed/removed with
  :meth:`RunStore.orphaned_files` / :meth:`RunStore.sweep_orphans` (the CLI
  ``status`` command does this automatically).
* **Readable layout** — documents are indented, sorted JSON carrying the full
  configs, so a store can be inspected (and diffed) with standard tools.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.pipeline import ExperimentResult
from repro.io.storage import experiment_result_from_dict, experiment_result_to_dict
from repro.particles.trajectory import EnsembleTrajectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import RunUnit

__all__ = ["RunStore", "RunStoreError", "ORPHAN_MIN_AGE_SECONDS"]

_HASH_LENGTH = 64  # sha256 hexdigest

#: Grace period before a stray file counts as an orphan: younger files may
#: belong to a live writer in another process (mid-save, between its .npz
#: and JSON commits), which a sweep must never touch.
ORPHAN_MIN_AGE_SECONDS = 3600.0


class RunStoreError(RuntimeError):
    """A store directory or document is missing, truncated or malformed."""


def _as_hash(unit_or_hash: "RunUnit | str") -> str:
    content_hash = getattr(unit_or_hash, "content_hash", unit_or_hash)
    if not isinstance(content_hash, str) or len(content_hash) != _HASH_LENGTH:
        raise ValueError(f"expected a RunUnit or a sha256 hex digest, got {unit_or_hash!r}")
    return content_hash


class RunStore:
    """Content-addressed on-disk cache of experiment results.

    Parameters
    ----------
    root:
        Store directory; created (with a format marker) unless ``create`` is
        False, in which case a missing or unmarked directory raises
        :class:`RunStoreError` — the behaviour the CLI's ``status``/``resume``
        commands rely on to catch typos before running anything.
    """

    MARKER_NAME = "run_store.json"
    FORMAT = {"format": "repro-run-store", "version": 1}

    def __init__(self, root: str | Path, *, create: bool = True) -> None:
        self.root = Path(root)
        self.units_dir = self.root / "units"
        marker = self.root / self.MARKER_NAME
        if create:
            try:
                self.units_dir.mkdir(parents=True, exist_ok=True)
                if not marker.exists():
                    _atomic_write(marker, json.dumps(self.FORMAT, indent=2, sort_keys=True))
            except OSError as exc:
                raise RunStoreError(f"cannot create run store at {self.root}: {exc}") from exc
        else:
            if not self.root.is_dir():
                raise RunStoreError(f"run store {self.root} does not exist")
            if not marker.is_file():
                raise RunStoreError(
                    f"{self.root} is not a run store (missing {self.MARKER_NAME} marker)"
                )

    # paths -------------------------------------------------------------- #
    def path_for(self, unit_or_hash: "RunUnit | str") -> Path:
        """Path of the unit's JSON document (whether or not it exists)."""
        return self.units_dir / f"{_as_hash(unit_or_hash)}.json"

    def ensemble_path_for(self, unit_or_hash: "RunUnit | str") -> Path:
        """Path of the unit's optional raw-ensemble archive."""
        return self.units_dir / f"{_as_hash(unit_or_hash)}.npz"

    # interrogation ------------------------------------------------------ #
    def has(self, unit_or_hash: "RunUnit | str") -> bool:
        """Whether a completed result for this unit is present."""
        return self.path_for(unit_or_hash).is_file()

    def __contains__(self, unit_or_hash: "RunUnit | str") -> bool:
        return self.has(unit_or_hash)

    def keys(self) -> list[str]:
        """Content hashes of every persisted unit (sorted for determinism)."""
        if not self.units_dir.is_dir():
            return []
        return sorted(path.stem for path in self.units_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    # persistence -------------------------------------------------------- #
    def save(self, unit: "RunUnit", result: ExperimentResult) -> Path:
        """Persist a unit's result under its content hash; returns the JSON path.

        The document is deterministic: wall-time diagnostics are stripped so
        the bytes depend only on the unit's specification and its seeded
        result.  When the result carries its raw ensemble, the trajectory is
        written as a sibling ``.npz`` (the JSON never embeds arrays of that
        size).
        """
        document = experiment_result_to_dict(result)
        document["wall_time_seconds"] = {}
        document["summary"]["wall_time_seconds"] = {}
        document["unit"] = {
            "name": unit.spec.name,
            "description": unit.spec.description,
            "tags": list(unit.spec.tags),
            "content_hash": unit.content_hash,
        }
        path = self.path_for(unit)
        if result.ensemble is not None:
            ensemble_path = self.ensemble_path_for(unit)
            # Same write-fsync-rename discipline (and pid-unique temp name)
            # as the JSON documents; the .npz suffix on the temp name keeps
            # numpy from appending a second extension.  The archive commits
            # *before* the document that references it: a crash between the
            # two leaves an orphaned .npz (harmless, swept later), never a
            # document pointing at a missing archive.
            tmp = ensemble_path.with_name(f"{ensemble_path.stem}.{os.getpid()}.tmp.npz")
            result.ensemble.save(tmp)
            _fsync_path(tmp)
            os.replace(tmp, ensemble_path)
            _fsync_path(ensemble_path.parent)
            document["unit"]["ensemble"] = ensemble_path.name
        _atomic_write(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    # maintenance -------------------------------------------------------- #
    def orphaned_files(self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS) -> list[Path]:
        """Stray files a crash can leave behind (nothing any read path uses).

        Two kinds: raw-ensemble ``.npz`` archives whose JSON document was
        never committed (the save order makes this the *only* possible
        inconsistency), and ``*.tmp`` / ``*.tmp.npz`` temporaries abandoned
        by a writer that died before its rename — in ``units/`` *and* at the
        store root, where a writer that died between creating the directory
        and renaming the store marker leaks ``run_store.json.<pid>.tmp``.

        Files younger than ``min_age_seconds`` are *not* reported: a live
        writer in another process looks exactly like a crash for the moment
        between committing its ``.npz`` and committing the JSON (and while
        its temporaries exist), and sweeping those would fail or corrupt an
        in-flight save.  Genuine crash leftovers keep ageing, so the default
        one-hour grace period only delays their cleanup.
        """
        newest_allowed = time.time() - min_age_seconds
        orphans: list[Path] = []

        def scan(directory: Path, *, stray_npz: bool) -> None:
            if not directory.is_dir():
                return
            for path in sorted(directory.iterdir()):
                name = path.name
                if name.endswith(".tmp") or name.endswith(".tmp.npz"):
                    candidate = path.is_file()
                elif stray_npz and name.endswith(".npz"):
                    # An archive is live only while its sibling document
                    # *references* it — one next to a summaries-only document
                    # (another sweep's crash leftover) is as orphaned as one
                    # with no document at all.
                    candidate = not self._archive_is_referenced(path)
                else:
                    candidate = False
                if not candidate:
                    continue
                try:
                    if path.stat().st_mtime > newest_allowed:
                        continue
                except OSError:  # pragma: no cover - raced with its writer/cleaner
                    continue
                orphans.append(path)

        # Root level: only abandoned temporaries (e.g. the store marker's)
        # are ours to sweep — any other stray file is not a store artifact.
        scan(self.root, stray_npz=False)
        scan(self.units_dir, stray_npz=True)
        return orphans

    def _archive_is_referenced(self, archive: Path) -> bool:
        """Whether the sibling document claims this raw-ensemble archive."""
        document_path = self.units_dir / f"{archive.stem}.json"
        if not document_path.is_file():
            return False
        try:
            document = json.loads(document_path.read_text())
        except (OSError, json.JSONDecodeError):
            return True  # unreadable document: never delete data beside it
        return document.get("unit", {}).get("ensemble") == archive.name

    def sweep_orphans(self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS) -> list[Path]:
        """Delete orphaned files (see :meth:`orphaned_files`); returns what was removed.

        Documents are never touched, and the ``min_age_seconds`` grace
        period keeps concurrent writers' in-flight files out of reach.
        """
        removed: list[Path] = []
        for path in self.orphaned_files(min_age_seconds):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleaner won the race
                continue
            removed.append(path)
        return removed

    def load_document(self, unit_or_hash: "RunUnit | str") -> dict[str, Any]:
        """Raw JSON document of a persisted unit."""
        path = self.path_for(unit_or_hash)
        if not path.is_file():
            raise RunStoreError(f"no persisted result for {_as_hash(unit_or_hash)[:12]}… in {self.root}")
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise RunStoreError(f"corrupt run-store document {path}: {exc}") from exc

    def load(self, unit_or_hash: "RunUnit | str", *, with_ensemble: bool = True) -> ExperimentResult:
        """Reconstruct the full :class:`ExperimentResult` of a persisted unit.

        ``with_ensemble=False`` skips reading the referenced ``.npz`` even
        when one exists — callers that only need the summaries (e.g. a warm
        sweep that did not ask for ensembles) avoid pulling whole raw
        trajectories into memory.

        Only an archive the document *references* (``unit.ensemble``) is
        attached: a sibling ``.npz`` that merely exists on disk is an orphan
        from a crashed save — possibly still inside the sweep grace period —
        and must never round-trip into a result whose run kept no ensemble.
        """
        document = self.load_document(unit_or_hash)
        try:
            result = experiment_result_from_dict(document)
        except (KeyError, TypeError, ValueError) as exc:
            raise RunStoreError(
                f"corrupt run-store document {self.path_for(unit_or_hash)}: {exc}"
            ) from exc
        ensemble_name = document.get("unit", {}).get("ensemble")
        if with_ensemble and ensemble_name is not None:
            ensemble_path = self.units_dir / ensemble_name
            if not ensemble_path.is_file():
                # The save order (npz before its document) makes this state
                # unreachable by crashes; something external removed the
                # archive, and silently dropping the ensemble would hide it.
                raise RunStoreError(
                    f"run-store document {self.path_for(unit_or_hash)} references "
                    f"missing ensemble archive {ensemble_name}"
                )
            try:
                result.ensemble = EnsembleTrajectory.load(ensemble_path)
            except Exception as exc:  # zipfile/OSError zoo from a damaged archive
                raise RunStoreError(
                    f"corrupt run-store ensemble {ensemble_path}: {exc}"
                ) from exc
        return result


def _fsync_path(path: Path) -> None:
    """Flush a file (or directory entry table) to stable storage."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. directories on Windows
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, text: str) -> None:
    """Write-fsync-rename so readers never observe a partially written file.

    The temp name carries the pid so concurrent writers of the same unit
    (two sweeps sharing a store) cannot race on one temp file — last rename
    wins, and both renamed documents are complete and identical anyway.
    Without the fsync before :func:`os.replace`, a crash shortly after the
    rename could surface a *committed name with uncommitted bytes* (an empty
    or truncated document) on journaled filesystems; syncing the directory
    afterwards makes the rename itself durable.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_path(path.parent)
