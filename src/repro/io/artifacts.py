"""Content-addressed persistence of plan run units.

A :class:`RunStore` is the on-disk cache behind
:meth:`repro.core.plan.ExperimentPlan.execute`: every executed
:class:`~repro.core.plan.RunUnit` is persisted under its content hash as a
JSON document (``units/<hash>.json``), with the raw ensemble optionally kept
as a sibling ``units/<hash>.npz``.

Design points:

* **Deterministic documents** — the stored JSON is a pure function of the
  unit's specification and its (seeded, hence reproducible) result: volatile
  wall-time diagnostics are stripped before writing.  Re-executing a plan
  against a warm store therefore leaves every byte of the store untouched,
  which is what makes resumed sweeps bit-identical to uninterrupted ones.
* **Atomic writes** — documents are written to a temporary sibling and
  renamed into place, so an interrupted execution never leaves a truncated
  document behind; at worst the unit is simply missing and is recomputed on
  resume.
* **Readable layout** — documents are indented, sorted JSON carrying the full
  configs, so a store can be inspected (and diffed) with standard tools.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.pipeline import ExperimentResult
from repro.io.storage import experiment_result_from_dict, experiment_result_to_dict
from repro.particles.trajectory import EnsembleTrajectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import RunUnit

__all__ = ["RunStore", "RunStoreError"]

_HASH_LENGTH = 64  # sha256 hexdigest


class RunStoreError(RuntimeError):
    """A store directory or document is missing, truncated or malformed."""


def _as_hash(unit_or_hash: "RunUnit | str") -> str:
    content_hash = getattr(unit_or_hash, "content_hash", unit_or_hash)
    if not isinstance(content_hash, str) or len(content_hash) != _HASH_LENGTH:
        raise ValueError(f"expected a RunUnit or a sha256 hex digest, got {unit_or_hash!r}")
    return content_hash


class RunStore:
    """Content-addressed on-disk cache of experiment results.

    Parameters
    ----------
    root:
        Store directory; created (with a format marker) unless ``create`` is
        False, in which case a missing or unmarked directory raises
        :class:`RunStoreError` — the behaviour the CLI's ``status``/``resume``
        commands rely on to catch typos before running anything.
    """

    MARKER_NAME = "run_store.json"
    FORMAT = {"format": "repro-run-store", "version": 1}

    def __init__(self, root: str | Path, *, create: bool = True) -> None:
        self.root = Path(root)
        self.units_dir = self.root / "units"
        marker = self.root / self.MARKER_NAME
        if create:
            try:
                self.units_dir.mkdir(parents=True, exist_ok=True)
                if not marker.exists():
                    _atomic_write(marker, json.dumps(self.FORMAT, indent=2, sort_keys=True))
            except OSError as exc:
                raise RunStoreError(f"cannot create run store at {self.root}: {exc}") from exc
        else:
            if not self.root.is_dir():
                raise RunStoreError(f"run store {self.root} does not exist")
            if not marker.is_file():
                raise RunStoreError(
                    f"{self.root} is not a run store (missing {self.MARKER_NAME} marker)"
                )

    # paths -------------------------------------------------------------- #
    def path_for(self, unit_or_hash: "RunUnit | str") -> Path:
        """Path of the unit's JSON document (whether or not it exists)."""
        return self.units_dir / f"{_as_hash(unit_or_hash)}.json"

    def ensemble_path_for(self, unit_or_hash: "RunUnit | str") -> Path:
        """Path of the unit's optional raw-ensemble archive."""
        return self.units_dir / f"{_as_hash(unit_or_hash)}.npz"

    # interrogation ------------------------------------------------------ #
    def has(self, unit_or_hash: "RunUnit | str") -> bool:
        """Whether a completed result for this unit is present."""
        return self.path_for(unit_or_hash).is_file()

    def __contains__(self, unit_or_hash: "RunUnit | str") -> bool:
        return self.has(unit_or_hash)

    def keys(self) -> list[str]:
        """Content hashes of every persisted unit (sorted for determinism)."""
        if not self.units_dir.is_dir():
            return []
        return sorted(path.stem for path in self.units_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    # persistence -------------------------------------------------------- #
    def save(self, unit: "RunUnit", result: ExperimentResult) -> Path:
        """Persist a unit's result under its content hash; returns the JSON path.

        The document is deterministic: wall-time diagnostics are stripped so
        the bytes depend only on the unit's specification and its seeded
        result.  When the result carries its raw ensemble, the trajectory is
        written as a sibling ``.npz`` (the JSON never embeds arrays of that
        size).
        """
        document = experiment_result_to_dict(result)
        document["wall_time_seconds"] = {}
        document["summary"]["wall_time_seconds"] = {}
        document["unit"] = {
            "name": unit.spec.name,
            "description": unit.spec.description,
            "tags": list(unit.spec.tags),
            "content_hash": unit.content_hash,
        }
        path = self.path_for(unit)
        if result.ensemble is not None:
            ensemble_path = self.ensemble_path_for(unit)
            # Same write-then-rename discipline (and pid-unique temp name) as
            # the JSON documents; the .npz suffix on the temp name keeps
            # numpy from appending a second extension.
            tmp = ensemble_path.with_name(f"{ensemble_path.stem}.{os.getpid()}.tmp.npz")
            result.ensemble.save(tmp)
            os.replace(tmp, ensemble_path)
            document["unit"]["ensemble"] = ensemble_path.name
        _atomic_write(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load_document(self, unit_or_hash: "RunUnit | str") -> dict[str, Any]:
        """Raw JSON document of a persisted unit."""
        path = self.path_for(unit_or_hash)
        if not path.is_file():
            raise RunStoreError(f"no persisted result for {_as_hash(unit_or_hash)[:12]}… in {self.root}")
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise RunStoreError(f"corrupt run-store document {path}: {exc}") from exc

    def load(self, unit_or_hash: "RunUnit | str", *, with_ensemble: bool = True) -> ExperimentResult:
        """Reconstruct the full :class:`ExperimentResult` of a persisted unit.

        ``with_ensemble=False`` skips reading a sibling ``.npz`` even when one
        exists — callers that only need the summaries (e.g. a warm sweep that
        did not ask for ensembles) avoid pulling whole raw trajectories into
        memory.
        """
        document = self.load_document(unit_or_hash)
        try:
            result = experiment_result_from_dict(document)
        except (KeyError, TypeError, ValueError) as exc:
            raise RunStoreError(
                f"corrupt run-store document {self.path_for(unit_or_hash)}: {exc}"
            ) from exc
        if with_ensemble:
            ensemble_path = self.ensemble_path_for(unit_or_hash)
            if ensemble_path.is_file():
                try:
                    result.ensemble = EnsembleTrajectory.load(ensemble_path)
                except Exception as exc:  # zipfile/OSError zoo from a damaged archive
                    raise RunStoreError(
                        f"corrupt run-store ensemble {ensemble_path}: {exc}"
                    ) from exc
        return result


def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so readers never observe a partially written file.

    The temp name carries the pid so concurrent writers of the same unit
    (two sweeps sharing a store) cannot race on one temp file — last rename
    wins, and both renamed documents are complete and identical anyway.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
