"""Content-addressed persistence of plan run units.

A run store is the cache behind :meth:`repro.core.plan.ExperimentPlan.execute`:
every executed :class:`~repro.core.plan.RunUnit` is persisted under its
content hash as a JSON document (``units/<hash>.json``), with the raw ensemble
optionally kept as a sibling ``units/<hash>.npz``.

Two implementations share one interface, the :class:`RunStoreBackend`
protocol: the filesystem :class:`RunStore` defined here (the reference
implementation) and the HTTP client in :mod:`repro.io.remote`, which talks to
a ``repro serve-store`` server fronting a filesystem store on another host.
:func:`repro.io.remote.open_store` picks the backend from a path-or-URL spec.

Design points:

* **Deterministic documents** — the stored JSON is a pure function of the
  unit's specification and its (seeded, hence reproducible) result: volatile
  wall-time diagnostics are stripped before writing (:func:`build_document` /
  :func:`encode_document` are shared by every backend, so a document is
  byte-identical no matter which backend persisted it).  Re-executing a plan
  against a warm store therefore leaves every byte of the store untouched,
  which is what makes resumed sweeps bit-identical to uninterrupted ones.
* **Write-once commits** — on a store shared between concurrent workers,
  ``save(..., overwrite=False)`` never rewrites a document that already
  satisfies the request: the filesystem backend commits with an exclusive
  hard-link rename, the HTTP backend with a content-hash-conditional PUT.
  Combined with the deterministic bytes, "first writer wins" and every later
  writer is a no-op.
* **Atomic, durable writes** — documents are written to a temporary sibling,
  fsynced, and renamed into place (the containing directory is fsynced too),
  so an interrupted execution — or a power loss right after it — never
  leaves a truncated document behind; at worst the unit is simply missing
  and is recomputed on resume.  The raw-ensemble ``.npz`` is committed
  *before* its JSON document, so a crash between the two can only leave an
  **orphaned** archive (never a document referencing a missing archive);
  orphans are ignored by every read path and can be listed/removed with
  :meth:`RunStore.orphaned_files` / :meth:`RunStore.sweep_orphans` (the CLI
  ``status`` command reports them; ``status --sweep-orphans`` deletes them —
  deletion is opt-in because on a *shared* store another host's clock skew
  can make a live writer's in-flight file look older than it is).
* **Leases, not locks** — concurrent workers draining one plan coordinate
  through advisory, expiring leases (``leases/<hash>.json``): a worker
  leases a unit before computing it, renews the lease while the computation
  runs, and releases it after the save.  A crashed worker's lease simply
  expires, so the unit is picked up again — at-most-rare duplicate compute,
  and never duplicate persistence (see above).
* **Readable layout** — documents are indented, sorted JSON carrying the full
  configs, so a store can be inspected (and diffed) with standard tools.
"""

from __future__ import annotations

import abc
import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.pipeline import ExperimentResult
from repro.io.storage import experiment_result_from_dict, experiment_result_to_dict
from repro.particles.trajectory import EnsembleTrajectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import RunUnit

__all__ = [
    "RunStore",
    "RunStoreBackend",
    "RunStoreError",
    "ORPHAN_MIN_AGE_SECONDS",
    "DEFAULT_LEASE_TTL_SECONDS",
    "build_document",
    "encode_document",
    "metrics_artifact_name",
]

_HASH_LENGTH = 64  # sha256 hexdigest

#: Grace period before a stray file counts as an orphan: younger files may
#: belong to a live writer in another process (mid-save, between its .npz
#: and JSON commits), which a sweep must never touch.
ORPHAN_MIN_AGE_SECONDS = 3600.0

#: Default lease lifetime.  Holders renew well before expiry (the plan
#: executor renews at a third of the TTL), so the TTL only bounds how long a
#: *crashed* worker blocks other workers from picking its unit up.
DEFAULT_LEASE_TTL_SECONDS = 60.0


class RunStoreError(RuntimeError):
    """A store (directory or service) or document is missing, truncated or malformed."""


def _as_hash(unit_or_hash: "RunUnit | str") -> str:
    content_hash = getattr(unit_or_hash, "content_hash", unit_or_hash)
    if not isinstance(content_hash, str) or len(content_hash) != _HASH_LENGTH:
        raise ValueError(f"expected a RunUnit or a sha256 hex digest, got {unit_or_hash!r}")
    return content_hash


def build_document(unit: "RunUnit", result: ExperimentResult) -> dict[str, Any]:
    """The deterministic JSON document of a unit's result (no ensemble entry).

    Volatile wall-time diagnostics are stripped so the bytes depend only on
    the unit's specification and its seeded result.  Backends that persist a
    raw ensemble add the ``unit.ensemble`` reference themselves, *after* the
    archive is durably committed.
    """
    document = experiment_result_to_dict(result)
    document["wall_time_seconds"] = {}
    document["summary"]["wall_time_seconds"] = {}
    document["unit"] = {
        "name": unit.spec.name,
        "description": unit.spec.description,
        "tags": list(unit.spec.tags),
        "content_hash": unit.content_hash,
    }
    return document


def encode_document(document: dict[str, Any]) -> str:
    """Canonical text encoding of a store document (shared by all backends)."""
    return json.dumps(document, indent=2, sort_keys=True)


def metrics_artifact_name(unit_or_hash: "RunUnit | str") -> str:
    """Name of a unit's auxiliary live-metrics artifact (JSONL).

    The ``.metrics.jsonl`` suffix keeps the artifact out of :meth:`RunStore
    .keys` (which globs ``*.json``) and out of the orphan sweep — it is pure
    sidecar data ``repro watch`` attaches next to a unit and ``repro query``
    reports.
    """
    return f"{_as_hash(unit_or_hash)}.metrics.jsonl"


class RunStoreBackend(abc.ABC):
    """Interface every run-store backend implements.

    The contract the plan executor relies on:

    * documents are **deterministic** (built via :func:`build_document` /
      :func:`encode_document`), so any two backends holding the same unit
      hold byte-identical documents;
    * :meth:`save` with ``overwrite=False`` never rewrites a document that
      already satisfies the request (write-once commits on shared stores);
    * :meth:`provides_ensemble` consults the *document's* ``unit.ensemble``
      reference — never the mere existence of a sibling archive, which may
      be an orphan from a crashed save;
    * leases are advisory and expire: :meth:`try_acquire_lease` /
      :meth:`renew_lease` / :meth:`release_lease` let concurrent workers
      partition a sweep with at-most-rare duplicate compute.
    """

    # interrogation ------------------------------------------------------ #
    @abc.abstractmethod
    def has(self, unit_or_hash: "RunUnit | str") -> bool:
        """Whether a completed result for this unit is present."""

    @abc.abstractmethod
    def keys(self) -> list[str]:
        """Content hashes of every persisted unit (sorted for determinism)."""

    @abc.abstractmethod
    def load_document(self, unit_or_hash: "RunUnit | str") -> dict[str, Any]:
        """Raw JSON document of a persisted unit."""

    def __contains__(self, unit_or_hash: "RunUnit | str") -> bool:
        return self.has(unit_or_hash)

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def provides_ensemble(self, unit_or_hash: "RunUnit | str") -> bool:
        """Whether a persisted document exists *and* references a raw ensemble.

        This is the cache check for ``keep_ensembles`` requests.  It reads
        the document's ``unit.ensemble`` reference: a bare ``.npz`` beside a
        reference-less document is an orphan from a crashed save (possibly
        still inside the sweep grace period) and must not count as a hit.
        """
        try:
            document = self.load_document(unit_or_hash)
        except RunStoreError:
            return False
        return document.get("unit", {}).get("ensemble") is not None

    def _existing_satisfies(self, unit: "RunUnit", result: ExperimentResult) -> bool:
        """Whether the already-persisted state fully covers this save request."""
        if not self.has(unit):
            return False
        return result.ensemble is None or self.provides_ensemble(unit)

    # persistence -------------------------------------------------------- #
    @abc.abstractmethod
    def save(self, unit: "RunUnit", result: ExperimentResult, *, overwrite: bool = True):
        """Persist a unit's result under its content hash.

        ``overwrite=False`` is the shared-store mode: if an equivalent
        document is already committed (same hash, and carrying an ensemble
        reference whenever this result carries an ensemble), nothing is
        written — the existing bytes are guaranteed identical by the
        deterministic-document contract.
        """

    # auxiliary metrics artifacts ---------------------------------------- #
    @abc.abstractmethod
    def save_metrics(self, unit_or_hash: "RunUnit | str", payload: str, *, overwrite: bool = True):
        """Persist a unit's live-monitor metric stream (JSONL text).

        Metric rows carry volatile wall times, so unlike documents they are
        rewritten by default — each ``repro watch`` of a unit replaces the
        previous stream.  ``overwrite=False`` keeps an existing stream.
        """

    @abc.abstractmethod
    def load_metrics(self, unit_or_hash: "RunUnit | str") -> str:
        """The persisted JSONL metric stream (:class:`RunStoreError` when absent)."""

    @abc.abstractmethod
    def has_metrics(self, unit_or_hash: "RunUnit | str") -> bool:
        """Whether a live-metrics artifact is attached to this unit."""

    # reconstruction ----------------------------------------------------- #
    def load(self, unit_or_hash: "RunUnit | str", *, with_ensemble: bool = True) -> ExperimentResult:
        """Reconstruct the full :class:`ExperimentResult` of a persisted unit.

        ``with_ensemble=False`` skips reading the referenced ``.npz`` even
        when one exists — callers that only need the summaries (e.g. a warm
        sweep that did not ask for ensembles) avoid pulling whole raw
        trajectories into memory.

        Only an archive the document *references* (``unit.ensemble``) is
        attached: a sibling ``.npz`` that merely exists is an orphan from a
        crashed save — possibly still inside the sweep grace period — and
        must never round-trip into a result whose run kept no ensemble.
        """
        document = self.load_document(unit_or_hash)
        try:
            result = experiment_result_from_dict(document)
        except (KeyError, TypeError, ValueError) as exc:
            raise RunStoreError(
                f"corrupt run-store document {self._document_label(unit_or_hash)}: {exc}"
            ) from exc
        ensemble_name = document.get("unit", {}).get("ensemble")
        if with_ensemble and ensemble_name is not None:
            result.ensemble = self._read_ensemble(unit_or_hash, ensemble_name)
        return result

    @abc.abstractmethod
    def _document_label(self, unit_or_hash: "RunUnit | str") -> str:
        """Human-readable location of the unit's document (path or URL)."""

    @abc.abstractmethod
    def _read_ensemble(self, unit_or_hash: "RunUnit | str", ensemble_name: str) -> EnsembleTrajectory:
        """Fetch the referenced raw-ensemble archive (raising :class:`RunStoreError`)."""

    # maintenance -------------------------------------------------------- #
    @abc.abstractmethod
    def orphaned_files(self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS) -> list:
        """Stray files a crash can leave behind (nothing any read path uses)."""

    @abc.abstractmethod
    def sweep_orphans(self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS) -> list:
        """Delete orphaned files (see :meth:`orphaned_files`); returns what was removed."""

    # leases ------------------------------------------------------------- #
    @abc.abstractmethod
    def try_acquire_lease(
        self,
        unit_or_hash: "RunUnit | str",
        owner: str,
        ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
    ) -> bool:
        """Claim a unit for computation; False when another live owner holds it.

        An expired lease (its holder crashed or stalled past the TTL) is
        stolen.  Acquiring a lease one already holds renews it.
        """

    @abc.abstractmethod
    def renew_lease(
        self,
        unit_or_hash: "RunUnit | str",
        owner: str,
        ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
    ) -> bool:
        """Extend one's own lease; False when it expired and was taken over."""

    @abc.abstractmethod
    def release_lease(self, unit_or_hash: "RunUnit | str", owner: str) -> None:
        """Drop one's own lease (no-op when not held)."""


class RunStore(RunStoreBackend):
    """Content-addressed on-disk cache of experiment results.

    The reference :class:`RunStoreBackend` implementation — and the storage
    a ``repro serve-store`` service fronts for remote workers.

    Parameters
    ----------
    root:
        Store directory; created (with a format marker) unless ``create`` is
        False, in which case a missing or unmarked directory raises
        :class:`RunStoreError` — the behaviour the CLI's ``status``/``resume``
        commands rely on to catch typos before running anything.
    """

    MARKER_NAME = "run_store.json"
    FORMAT = {"format": "repro-run-store", "version": 1}

    def __init__(self, root: str | Path, *, create: bool = True) -> None:
        self.root = Path(root)
        self.units_dir = self.root / "units"
        self.leases_dir = self.root / "leases"
        marker = self.root / self.MARKER_NAME
        if create:
            try:
                self.units_dir.mkdir(parents=True, exist_ok=True)
                if not marker.exists():
                    _atomic_write(marker, json.dumps(self.FORMAT, indent=2, sort_keys=True))
            except OSError as exc:
                raise RunStoreError(f"cannot create run store at {self.root}: {exc}") from exc
        else:
            if not self.root.is_dir():
                raise RunStoreError(f"run store {self.root} does not exist")
            if not marker.is_file():
                raise RunStoreError(
                    f"{self.root} is not a run store (missing {self.MARKER_NAME} marker)"
                )

    # paths -------------------------------------------------------------- #
    def path_for(self, unit_or_hash: "RunUnit | str") -> Path:
        """Path of the unit's JSON document (whether or not it exists)."""
        return self.units_dir / f"{_as_hash(unit_or_hash)}.json"

    def ensemble_path_for(self, unit_or_hash: "RunUnit | str") -> Path:
        """Path of the unit's optional raw-ensemble archive."""
        return self.units_dir / f"{_as_hash(unit_or_hash)}.npz"

    def lease_path_for(self, unit_or_hash: "RunUnit | str") -> Path:
        """Path of the unit's advisory lease file (whether or not it exists)."""
        return self.leases_dir / f"{_as_hash(unit_or_hash)}.json"

    def metrics_path_for(self, unit_or_hash: "RunUnit | str") -> Path:
        """Path of the unit's optional live-metrics artifact (JSONL)."""
        return self.units_dir / metrics_artifact_name(unit_or_hash)

    def _document_label(self, unit_or_hash: "RunUnit | str") -> str:
        return str(self.path_for(unit_or_hash))

    # interrogation ------------------------------------------------------ #
    def has(self, unit_or_hash: "RunUnit | str") -> bool:
        """Whether a completed result for this unit is present."""
        return self.path_for(unit_or_hash).is_file()

    def keys(self) -> list[str]:
        """Content hashes of every persisted unit (sorted for determinism)."""
        if not self.units_dir.is_dir():
            return []
        return sorted(path.stem for path in self.units_dir.glob("*.json"))

    # persistence -------------------------------------------------------- #
    def save(self, unit: "RunUnit", result: ExperimentResult, *, overwrite: bool = True) -> Path:
        """Persist a unit's result under its content hash; returns the JSON path.

        The document is deterministic (see :func:`build_document`).  When the
        result carries its raw ensemble, the trajectory is written as a
        sibling ``.npz`` (the JSON never embeds arrays of that size).

        ``overwrite=False`` makes the commit write-once: a document that
        already satisfies the request is left byte-for-byte untouched, and
        when two workers race on a genuinely new unit the loser's rename
        fails against the winner's committed (identical) document.
        """
        path = self.path_for(unit)
        if not overwrite and self._existing_satisfies(unit, result):
            return path
        document = build_document(unit, result)
        if result.ensemble is not None:
            ensemble_path = self.ensemble_path_for(unit)
            # Same write-fsync-rename discipline (and pid-unique temp name)
            # as the JSON documents; the .npz suffix on the temp name keeps
            # numpy from appending a second extension.  The archive commits
            # *before* the document that references it: a crash between the
            # two leaves an orphaned .npz (harmless, swept later), never a
            # document pointing at a missing archive.
            tmp = ensemble_path.with_name(f"{ensemble_path.stem}.{os.getpid()}.tmp.npz")
            result.ensemble.save(tmp)
            _fsync_path(tmp)
            os.replace(tmp, ensemble_path)
            _fsync_path(ensemble_path.parent)
            document["unit"]["ensemble"] = ensemble_path.name
        # Exclusive (link-based) commit only when nothing is there yet: if a
        # partial document exists (e.g. it lacks the ensemble reference this
        # result carries), the rewrite is a deliberate upgrade.
        _atomic_write(path, encode_document(document), exclusive=not overwrite and not self.has(unit))
        return path

    # auxiliary metrics artifacts ---------------------------------------- #
    def save_metrics(self, unit_or_hash: "RunUnit | str", payload: str, *, overwrite: bool = True) -> Path:
        """Persist a unit's live-metrics JSONL stream; returns its path."""
        path = self.metrics_path_for(unit_or_hash)
        if not overwrite and path.is_file():
            return path
        try:
            self.units_dir.mkdir(parents=True, exist_ok=True)
            _atomic_write(path, payload)
        except OSError as exc:
            raise RunStoreError(f"cannot write metrics artifact {path}: {exc}") from exc
        return path

    def load_metrics(self, unit_or_hash: "RunUnit | str") -> str:
        path = self.metrics_path_for(unit_or_hash)
        if not path.is_file():
            raise RunStoreError(
                f"no metrics artifact for {_as_hash(unit_or_hash)[:12]}… in {self.root}"
            )
        try:
            return path.read_text(encoding="utf8")
        except OSError as exc:
            raise RunStoreError(f"cannot read metrics artifact {path}: {exc}") from exc

    def has_metrics(self, unit_or_hash: "RunUnit | str") -> bool:
        return self.metrics_path_for(unit_or_hash).is_file()

    # maintenance -------------------------------------------------------- #
    def orphaned_files(self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS) -> list[Path]:
        """Stray files a crash can leave behind (nothing any read path uses).

        Three kinds: raw-ensemble ``.npz`` archives whose JSON document was
        never committed (the save order makes this the *only* possible
        inconsistency), ``*.tmp`` / ``*.tmp.npz`` temporaries abandoned by a
        writer that died before its rename — in ``units/``, ``leases/`` *and*
        at the store root, where a writer that died between creating the
        directory and renaming the store marker leaks
        ``run_store.json.<pid>.tmp`` — and **expired lease files** whose
        holder never released them (a crashed worker's leftovers).

        Files younger than ``min_age_seconds`` are *not* reported: a live
        writer in another process looks exactly like a crash for the moment
        between committing its ``.npz`` and committing the JSON (and while
        its temporaries exist), and sweeping those would fail or corrupt an
        in-flight save.  Genuine crash leftovers keep ageing, so the default
        one-hour grace period only delays their cleanup.
        """
        newest_allowed = time.time() - min_age_seconds
        orphans: list[Path] = []

        def scan(directory: Path, *, stray_npz: bool, expired_leases: bool = False) -> None:
            if not directory.is_dir():
                return
            for path in sorted(directory.iterdir()):
                name = path.name
                if name.endswith(".tmp") or name.endswith(".tmp.npz"):
                    candidate = path.is_file()
                elif stray_npz and name.endswith(".npz"):
                    # An archive is live only while its sibling document
                    # *references* it — one next to a summaries-only document
                    # (another sweep's crash leftover) is as orphaned as one
                    # with no document at all.
                    candidate = not self._archive_is_referenced(path)
                elif expired_leases and name.endswith(".json"):
                    # A lease past its expiry whose holder never released it.
                    # Live holders renew (refreshing both expiry and mtime),
                    # so only genuinely abandoned leases age into candidates.
                    lease = self._read_lease(path)
                    candidate = lease is None or lease["expires"] <= time.time()
                else:
                    candidate = False
                if not candidate:
                    continue
                try:
                    if path.stat().st_mtime > newest_allowed:
                        continue
                except OSError:  # pragma: no cover - raced with its writer/cleaner
                    continue
                orphans.append(path)

        # Root level: only abandoned temporaries (e.g. the store marker's)
        # are ours to sweep — any other stray file is not a store artifact.
        scan(self.root, stray_npz=False)
        scan(self.units_dir, stray_npz=True)
        scan(self.leases_dir, stray_npz=False, expired_leases=True)
        return orphans

    def _archive_is_referenced(self, archive: Path) -> bool:
        """Whether the sibling document claims this raw-ensemble archive."""
        document_path = self.units_dir / f"{archive.stem}.json"
        if not document_path.is_file():
            return False
        try:
            document = json.loads(document_path.read_text())
        except (OSError, json.JSONDecodeError):
            return True  # unreadable document: never delete data beside it
        return document.get("unit", {}).get("ensemble") == archive.name

    def sweep_orphans(self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS) -> list[Path]:
        """Delete orphaned files (see :meth:`orphaned_files`); returns what was removed.

        Documents are never touched, and the ``min_age_seconds`` grace
        period keeps concurrent writers' in-flight files out of reach.
        """
        removed: list[Path] = []
        for path in self.orphaned_files(min_age_seconds):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleaner won the race
                continue
            removed.append(path)
        return removed

    def load_document(self, unit_or_hash: "RunUnit | str") -> dict[str, Any]:
        """Raw JSON document of a persisted unit."""
        path = self.path_for(unit_or_hash)
        if not path.is_file():
            raise RunStoreError(f"no persisted result for {_as_hash(unit_or_hash)[:12]}… in {self.root}")
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise RunStoreError(f"corrupt run-store document {path}: {exc}") from exc

    def _read_ensemble(self, unit_or_hash: "RunUnit | str", ensemble_name: str) -> EnsembleTrajectory:
        ensemble_path = self.units_dir / ensemble_name
        if not ensemble_path.is_file():
            # The save order (npz before its document) makes this state
            # unreachable by crashes; something external removed the
            # archive, and silently dropping the ensemble would hide it.
            raise RunStoreError(
                f"run-store document {self.path_for(unit_or_hash)} references "
                f"missing ensemble archive {ensemble_name}"
            )
        try:
            return EnsembleTrajectory.load(ensemble_path)
        except Exception as exc:  # zipfile/OSError zoo from a damaged archive
            raise RunStoreError(
                f"corrupt run-store ensemble {ensemble_path}: {exc}"
            ) from exc

    # leases ------------------------------------------------------------- #
    def _read_lease(self, path: Path) -> dict[str, Any] | None:
        """The lease payload, or None when the file is gone or unreadable."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or "owner" not in payload or "expires" not in payload:
            return None
        return payload

    def _write_lease(self, path: Path, owner: str, ttl_seconds: float) -> None:
        payload = json.dumps({"owner": owner, "expires": time.time() + float(ttl_seconds)})
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(payload)
        os.replace(tmp, path)  # advisory state: atomic, but no fsync needed

    def try_acquire_lease(
        self,
        unit_or_hash: "RunUnit | str",
        owner: str,
        ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
    ) -> bool:
        path = self.lease_path_for(unit_or_hash)
        try:
            self.leases_dir.mkdir(parents=True, exist_ok=True)
            # The exclusive create is the atomic claim: exactly one of N
            # concurrent acquirers wins the O_EXCL race on a shared filesystem.
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            current = self._read_lease(path)
            if current is not None and current["owner"] != owner and current["expires"] > time.time():
                return False  # held by a live (or at least unexpired) owner
            # Unreadable, expired, or already ours: take it over.  Two
            # stealers can both replace; reading back arbitrates — exactly
            # one sees its own owner id in the committed file.
            self._write_lease(path, owner, ttl_seconds)
            confirmed = self._read_lease(path)
            return confirmed is not None and confirmed["owner"] == owner
        except OSError as exc:
            raise RunStoreError(f"cannot write lease in {self.leases_dir}: {exc}") from exc
        with os.fdopen(fd, "w", encoding="utf8") as handle:
            handle.write(json.dumps({"owner": owner, "expires": time.time() + float(ttl_seconds)}))
        return True

    def renew_lease(
        self,
        unit_or_hash: "RunUnit | str",
        owner: str,
        ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
    ) -> bool:
        path = self.lease_path_for(unit_or_hash)
        current = self._read_lease(path)
        if current is None or current["owner"] != owner:
            return False  # expired and stolen (or never held): do not revive
        self._write_lease(path, owner, ttl_seconds)
        return True

    def release_lease(self, unit_or_hash: "RunUnit | str", owner: str) -> None:
        path = self.lease_path_for(unit_or_hash)
        current = self._read_lease(path)
        if current is None or current["owner"] != owner:
            return  # not ours (anymore): never drop another worker's claim
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced with a stealer/cleaner
            pass


def _fsync_path(path: Path) -> None:
    """Flush a file (or directory entry table) to stable storage."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. directories on Windows
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, text: str, *, exclusive: bool = False) -> bool:
    """Write-fsync-rename so readers never observe a partially written file.

    The temp name carries the pid so concurrent writers of the same unit
    (two sweeps sharing a store) cannot race on one temp file — last rename
    wins, and both renamed documents are complete and identical anyway.
    Without the fsync before :func:`os.replace`, a crash shortly after the
    rename could surface a *committed name with uncommitted bytes* (an empty
    or truncated document) on journaled filesystems; syncing the directory
    afterwards makes the rename itself durable.

    ``exclusive=True`` commits via :func:`os.link`, which fails (instead of
    replacing) when the target already exists — the write-once mode shared
    stores use; returns False when another writer won the race.  Filesystems
    without hard links fall back to the plain replace.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    if exclusive:
        try:
            os.link(tmp, path)
        except FileExistsError:
            os.unlink(tmp)
            return False  # first writer already committed (identical bytes)
        except OSError:  # pragma: no cover - e.g. FAT/exotic network mounts
            os.replace(tmp, path)
        else:
            os.unlink(tmp)
        _fsync_path(path.parent)
        return True
    os.replace(tmp, path)
    _fsync_path(path.parent)
    return True
