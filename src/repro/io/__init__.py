"""Result persistence: JSON summaries, measurement round-trips, run-unit cache.

:mod:`repro.io.storage` holds the document (de)serialisation of measurements
and experiment results; :mod:`repro.io.artifacts` builds the content-addressed
:class:`RunStore` cache on top of it (ensembles use ``.npz`` via their own
save/load) behind the :class:`RunStoreBackend` protocol; :mod:`repro.io.remote`
adds the HTTP client backend and the :func:`open_store` path-or-URL factory;
:mod:`repro.io.service` is the ``repro serve-store`` server fronting a
filesystem store for remote workers.
"""

from repro.io.artifacts import RunStore, RunStoreBackend, RunStoreError
from repro.io.remote import HTTPRunStore, open_store
from repro.io.storage import (
    load_experiment_summary,
    load_measurement,
    save_experiment_summary,
    save_measurement,
)

__all__ = [
    "save_measurement",
    "load_measurement",
    "save_experiment_summary",
    "load_experiment_summary",
    "RunStore",
    "RunStoreBackend",
    "RunStoreError",
    "HTTPRunStore",
    "open_store",
]
