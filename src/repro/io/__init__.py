"""Result persistence: JSON summaries, measurement round-trips, run-unit cache.

:mod:`repro.io.storage` holds the document (de)serialisation of measurements
and experiment results; :mod:`repro.io.artifacts` builds the content-addressed
:class:`RunStore` cache on top of it (ensembles use ``.npz`` via their own
save/load).
"""

from repro.io.artifacts import RunStore, RunStoreError
from repro.io.storage import (
    load_experiment_summary,
    load_measurement,
    save_experiment_summary,
    save_measurement,
)

__all__ = [
    "save_measurement",
    "load_measurement",
    "save_experiment_summary",
    "load_experiment_summary",
    "RunStore",
    "RunStoreError",
]
