"""Result persistence (JSON summaries; ensembles use npz via their own save/load)."""

from repro.io.storage import load_measurement, save_experiment_summary, save_measurement

__all__ = ["save_measurement", "load_measurement", "save_experiment_summary"]
