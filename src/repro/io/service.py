"""Stdlib HTTP service fronting a filesystem :class:`~repro.io.artifacts.RunStore`.

``repro serve-store`` runs this server so that workers on other hosts can
share one store through :class:`repro.io.remote.HTTPRunStore`.  The wire
format is deliberately boring — the store's own on-disk artifacts, shuttled
verbatim:

==========  =============================  =======================================
method      path                           meaning
==========  =============================  =======================================
GET         ``/``                          store marker + unit count (reachability probe)
GET         ``/units``                     ``{"keys": [...]}`` — sorted content hashes
HEAD/GET    ``/units/<hash>.json``         a unit's document, byte-for-byte
HEAD/GET    ``/units/<hash>.npz``          a unit's raw-ensemble archive
HEAD/GET    ``/units/<hash>.metrics.jsonl``  a unit's live-metrics stream
PUT         ``/units/<hash>.{json,npz}``   commit an artifact (conditional, see below)
PUT         ``/units/<hash>.metrics.jsonl``  commit a metrics stream (usually ``?overwrite=1``)
GET         ``/orphans``                   orphan report (``?min_age=`` seconds)
POST        ``/orphans/sweep``             delete aged orphans
POST        ``/leases/<hash>/acquire``     body ``{"owner", "ttl_seconds"}`` → 200/409
POST        ``/leases/<hash>/renew``       same body → 200/409
POST        ``/leases/<hash>/release``     body ``{"owner"}`` → 200
==========  =============================  =======================================

Commit semantics (what makes concurrent remote workers safe):

* PUT is **content-hash conditional**: without ``?overwrite=1``, an artifact
  that already exists is answered with ``412 Precondition Failed`` and *no
  write happens* — documents are deterministic, so the existing bytes are
  already what the client holds, and the client treats 412 as success.
* A PUT body is validated before anything touches the store: its length must
  match ``Content-Length`` (a dropped connection mid-upload yields a short
  read → 400, store untouched) and a JSON document must parse and carry the
  URL's content hash in ``unit.content_hash``.  Writes then go through the
  store's own atomic write-fsync-rename path.
* Lease endpoints run under a server-wide mutex, which upgrades the
  filesystem backend's best-effort steal arbitration into strict
  serialization — across hosts, lease races are decided here, in one place.

The server is a :class:`~http.server.ThreadingHTTPServer` (daemon threads,
one per connection) — plenty for its job of fronting compute-bound sweep
workers, whose requests are rare compared to the simulations between them.
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.io.artifacts import (
    DEFAULT_LEASE_TTL_SECONDS,
    ORPHAN_MIN_AGE_SECONDS,
    RunStore,
    _atomic_write,
    _fsync_path,
)

__all__ = ["StoreServer", "serve_store"]

_UNIT_PATH = re.compile(r"^/units/([0-9a-f]{64})\.(json|npz|metrics\.jsonl)$")
_LEASE_PATH = re.compile(r"^/leases/([0-9a-f]{64})/(acquire|renew|release)$")


class StoreServer(ThreadingHTTPServer):
    """HTTP front-end over a filesystem store; ``with``-able and thread-startable."""

    daemon_threads = True

    def __init__(
        self,
        store: RunStore,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _StoreRequestHandler)
        self.store = store
        self.lease_mutex = threading.Lock()
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests and embedders)."""
        thread = threading.Thread(target=self.serve_forever, name="repro-store-server", daemon=True)
        thread.start()
        return thread


def serve_store(
    root: str | Path,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    create: bool = True,
    quiet: bool = True,
) -> StoreServer:
    """Build a :class:`StoreServer` over the filesystem store at ``root``.

    ``port=0`` picks a free port; read the result's :attr:`StoreServer.url`.
    The caller decides how to run it (``serve_forever`` in the CLI,
    :meth:`StoreServer.serve_in_background` in tests).
    """
    return StoreServer(RunStore(root, create=create), (host, port), quiet=quiet)


class _StoreRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-store/1"
    protocol_version = "HTTP/1.1"
    server: StoreServer  # narrowed from BaseHTTPRequestHandler

    # plumbing ----------------------------------------------------------- #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(self, status: int, body: bytes = b"", content_type: str = "application/json") -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if self.command != "HEAD" and body:
                self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover - client went away
            self.close_connection = True

    def _reply_json(self, status: int, payload: dict[str, Any]) -> None:
        self._reply(status, json.dumps(payload).encode("utf8"))

    def _error(self, status: int, message: str) -> None:
        self.close_connection = True  # keep a poisoned keep-alive stream from lingering
        self._reply_json(status, {"error": message})

    def _read_body(self) -> bytes | None:
        """The request body, or None when it is shorter than Content-Length.

        A None return is the fault-injection path: the client died (or lied)
        mid-upload, and the handler must answer 400 without touching the
        store — a partial artifact must never be committed.
        """
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None
        if length < 0:
            return None
        body = b""
        try:
            while len(body) < length:
                chunk = self.rfile.read(length - len(body))
                if not chunk:
                    return None  # connection dropped mid-body
                body += chunk
        except (ConnectionError, OSError):
            return None
        return body

    def _json_body(self) -> dict[str, Any] | None:
        body = self._read_body()
        if body is None:
            return None
        try:
            payload = json.loads(body.decode("utf8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    # GET / HEAD --------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parts = urlsplit(self.path)
        store = self.server.store
        if parts.path == "/":
            marker = dict(RunStore.FORMAT)
            marker["units"] = len(store.keys())
            self._reply_json(200, marker)
            return
        if parts.path == "/units":
            self._reply_json(200, {"keys": store.keys()})
            return
        if parts.path == "/orphans":
            query = parse_qs(parts.query)
            try:
                min_age = float(query.get("min_age", [ORPHAN_MIN_AGE_SECONDS])[0])
            except ValueError:
                self._error(400, "min_age must be a number")
                return
            orphans = [path.name for path in store.orphaned_files(min_age)]
            self._reply_json(200, {"orphans": orphans})
            return
        match = _UNIT_PATH.match(parts.path)
        if match is None:
            self._error(404, f"unknown path {parts.path}")
            return
        artifact = store.units_dir / f"{match.group(1)}.{match.group(2)}"
        try:
            data = artifact.read_bytes()
        except FileNotFoundError:
            self._error(404, f"no such artifact {artifact.name}")
            return
        content_type = "application/json" if match.group(2) == "json" else "application/octet-stream"
        self._reply(200, data, content_type)

    do_HEAD = do_GET  # noqa: N815 - same routing; _reply suppresses the body

    # PUT ---------------------------------------------------------------- #
    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        parts = urlsplit(self.path)
        match = _UNIT_PATH.match(parts.path)
        if match is None:
            self._error(404, f"unknown path {parts.path}")
            return
        content_hash, kind = match.group(1), match.group(2)
        overwrite = parse_qs(parts.query).get("overwrite", ["0"])[0] == "1"
        body = self._read_body()
        if body is None:
            self._error(400, "request body shorter than Content-Length")
            return
        store = self.server.store
        target = store.units_dir / f"{content_hash}.{kind}"
        if not overwrite and target.is_file():
            # Content-hash conditional commit: deterministic artifacts make
            # the existing bytes equivalent, so refusing is the safe answer
            # and the client counts it as success.
            self._reply_json(412, {"error": f"{target.name} already committed"})
            return
        if kind == "json":
            try:
                document = json.loads(body.decode("utf8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._error(400, f"document is not valid JSON: {exc}")
                return
            stated = document.get("unit", {}).get("content_hash") if isinstance(document, dict) else None
            if stated != content_hash:
                self._error(400, f"document unit.content_hash {stated!r} does not match URL hash")
                return
            committed = _atomic_write(target, body.decode("utf8"), exclusive=not overwrite)
        else:
            committed = self._commit_binary(target, body, overwrite=overwrite)
        # An exclusive commit lost to a concurrent writer is still success:
        # the committed bytes are the same document either way.
        self._reply_json(200, {"committed": bool(committed), "name": target.name})

    def _commit_binary(self, target: Path, body: bytes, *, overwrite: bool) -> bool:
        tmp = target.with_name(f"{target.stem}.{os.getpid()}.{threading.get_ident()}.tmp.npz")
        with open(tmp, "wb") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        if not overwrite:
            try:
                os.link(tmp, target)
            except FileExistsError:
                os.unlink(tmp)
                return False
            except OSError:  # pragma: no cover - linkless filesystems
                os.replace(tmp, target)
            else:
                os.unlink(tmp)
            _fsync_path(target.parent)
            return True
        os.replace(tmp, target)
        _fsync_path(target.parent)
        return True

    # POST --------------------------------------------------------------- #
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        parts = urlsplit(self.path)
        store = self.server.store
        if parts.path == "/orphans/sweep":
            payload = self._json_body()
            if payload is None:
                self._error(400, "malformed request body")
                return
            try:
                min_age = float(payload.get("min_age_seconds", ORPHAN_MIN_AGE_SECONDS))
            except (TypeError, ValueError):
                self._error(400, "min_age_seconds must be a number")
                return
            removed = [path.name for path in store.sweep_orphans(min_age)]
            self._reply_json(200, {"removed": removed})
            return
        match = _LEASE_PATH.match(parts.path)
        if match is None:
            self._error(404, f"unknown path {parts.path}")
            return
        content_hash, action = match.group(1), match.group(2)
        payload = self._json_body()
        owner = payload.get("owner") if payload else None
        if not isinstance(owner, str) or not owner:
            self._error(400, "lease requests need a non-empty string 'owner'")
            return
        try:
            ttl = float(payload.get("ttl_seconds", DEFAULT_LEASE_TTL_SECONDS))
        except (TypeError, ValueError):
            self._error(400, "ttl_seconds must be a number")
            return
        # One mutex for every lease transition: the filesystem backend's
        # read-back steal arbitration is best-effort between processes, but
        # serialized here it is exact — remote workers' races end at this
        # lock, never on the disk.
        with self.server.lease_mutex:
            if action == "acquire":
                granted = store.try_acquire_lease(content_hash, owner, ttl)
                self._reply_json(200 if granted else 409, {"acquired": granted})
            elif action == "renew":
                renewed = store.renew_lease(content_hash, owner, ttl)
                self._reply_json(200 if renewed else 409, {"renewed": renewed})
            else:
                store.release_lease(content_hash, owner)
                self._reply_json(200, {"released": True})
