"""HTTP :class:`~repro.io.artifacts.RunStoreBackend` client and the store factory.

:class:`HTTPRunStore` talks to a ``repro serve-store`` server (see
:mod:`repro.io.service`) with nothing but :mod:`urllib` — the documents and
archives on the wire are the filesystem store's own artifacts, so a unit
persisted through HTTP is byte-identical to one persisted locally.

:func:`open_store` is the one entry point callers need: it turns a CLI-level
store spec — a directory path or an ``http(s)://`` URL — into the right
backend, probing remote stores for reachability up front so a typo'd URL
fails before any simulation starts.

Client behaviour on an unreliable network:

* every request has a **timeout** and **bounded retries** with linear
  backoff — but only for connection-level failures and 5xx responses;
  4xx responses are semantic answers and surface immediately;
* retried PUTs are safe because commits are **content-hash conditional**:
  the server answers ``412`` for an artifact that already exists (without
  writing), and the client treats that as success — an artifact whose hash
  is already committed is never re-uploaded or rewritten, so a retry after
  an ambiguous first attempt cannot double-commit.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.pipeline import ExperimentResult
from repro.io.artifacts import (
    DEFAULT_LEASE_TTL_SECONDS,
    ORPHAN_MIN_AGE_SECONDS,
    RunStore,
    RunStoreBackend,
    RunStoreError,
    _as_hash,
    build_document,
    encode_document,
    metrics_artifact_name,
)
from repro.particles.trajectory import EnsembleTrajectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import RunUnit

__all__ = ["HTTPRunStore", "open_store"]

_RETRYABLE_STATUS = range(500, 600)


def open_store(spec: str | Path, *, create: bool = True) -> RunStoreBackend:
    """Open the store a path-or-URL spec names.

    ``http://`` / ``https://`` specs yield an :class:`HTTPRunStore` (probed
    immediately, so an unreachable or non-store URL raises
    :class:`RunStoreError` here rather than mid-sweep); anything else is a
    filesystem path handed to :class:`~repro.io.artifacts.RunStore`, where
    ``create`` keeps its usual meaning.  Remote stores are created (or not)
    by the *server* side; ``create`` is ignored for them.
    """
    text = str(spec)
    if text.startswith(("http://", "https://")):
        store = HTTPRunStore(text)
        store.ping()
        return store
    return RunStore(spec, create=create)


class HTTPRunStore(RunStoreBackend):
    """Client for a run store served over HTTP by ``repro serve-store``.

    Parameters
    ----------
    url:
        Base URL of the service, e.g. ``http://sweep-host:8750``.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Attempts per request (connection failures and 5xx only).
    backoff_seconds:
        Sleep between attempt *k* and *k+1* is ``backoff_seconds * k``.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        retries: int = 3,
        backoff_seconds: float = 0.25,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = max(1, int(retries))
        self.backoff_seconds = float(backoff_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"HTTPRunStore({self.url!r})"

    # wire plumbing ------------------------------------------------------ #
    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        accept: tuple[int, ...] = (200,),
        allow: tuple[int, ...] = (),
    ) -> tuple[int, bytes]:
        """One HTTP round trip with bounded retries.

        ``accept`` statuses return normally; ``allow`` statuses are semantic
        non-success answers the caller wants to branch on (404 for a missing
        unit, 409 for a held lease, 412 for an already-committed artifact).
        Anything else raises :class:`RunStoreError` — after exhausting
        retries when it was a connection failure or a 5xx.
        """
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/octet-stream"} if body is not None else {},
        )
        last_error: Exception | None = None
        for attempt in range(1, self.retries + 1):
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as exc:
                status, payload = exc.code, exc.read()
                if status in accept or status in allow:
                    return status, payload
                if status in _RETRYABLE_STATUS and attempt < self.retries:
                    last_error = exc
                else:
                    raise RunStoreError(
                        f"run store {self.url} rejected {method} {path}: "
                        f"HTTP {status} {_error_detail(payload)}"
                    ) from exc
            except (urllib.error.URLError, http.client.HTTPException, ConnectionError, TimeoutError, OSError) as exc:
                if attempt >= self.retries:
                    raise RunStoreError(f"run store {self.url} unreachable: {exc}") from exc
                last_error = exc
            time.sleep(self.backoff_seconds * attempt)
        raise RunStoreError(f"run store {self.url} unreachable: {last_error}")  # pragma: no cover

    def _request_json(self, method: str, path: str, payload: dict[str, Any] | None = None, **kwargs) -> tuple[int, dict[str, Any]]:
        body = None if payload is None else json.dumps(payload).encode("utf8")
        status, raw = self._request(method, path, body, **kwargs)
        try:
            decoded = json.loads(raw.decode("utf8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RunStoreError(f"run store {self.url} sent a malformed response for {path}: {exc}") from exc
        return status, decoded if isinstance(decoded, dict) else {}

    def ping(self) -> dict[str, Any]:
        """Probe the service root; raises unless it identifies as a run store."""
        status, marker = self._request_json("GET", "/")
        if marker.get("format") != RunStore.FORMAT["format"]:
            raise RunStoreError(f"{self.url} is not a run store service (marker: {marker!r})")
        return marker

    # interrogation ------------------------------------------------------ #
    def has(self, unit_or_hash: "RunUnit | str") -> bool:
        status, _ = self._request("HEAD", f"/units/{_as_hash(unit_or_hash)}.json", allow=(404,))
        return status == 200

    def keys(self) -> list[str]:
        _, payload = self._request_json("GET", "/units")
        keys = payload.get("keys", [])
        return [key for key in keys if isinstance(key, str)]

    def load_document(self, unit_or_hash: "RunUnit | str") -> dict[str, Any]:
        content_hash = _as_hash(unit_or_hash)
        status, raw = self._request("GET", f"/units/{content_hash}.json", allow=(404,))
        if status == 404:
            raise RunStoreError(f"no persisted result for {content_hash[:12]}… in {self.url}")
        try:
            return json.loads(raw.decode("utf8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RunStoreError(f"corrupt run-store document {self._document_label(content_hash)}: {exc}") from exc

    def _document_label(self, unit_or_hash: "RunUnit | str") -> str:
        return f"{self.url}/units/{_as_hash(unit_or_hash)}.json"

    def _read_ensemble(self, unit_or_hash: "RunUnit | str", ensemble_name: str) -> EnsembleTrajectory:
        status, raw = self._request("GET", f"/units/{ensemble_name}", allow=(404,))
        if status == 404:
            raise RunStoreError(
                f"run-store document {self._document_label(unit_or_hash)} references "
                f"missing ensemble archive {ensemble_name}"
            )
        # EnsembleTrajectory's (numpy's) archive format wants a real file;
        # round-tripping through a temp file also reuses its own validation.
        with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
            handle.write(raw)
            handle.flush()
            try:
                return EnsembleTrajectory.load(handle.name)
            except Exception as exc:  # zipfile/OSError zoo from a damaged archive
                raise RunStoreError(f"corrupt run-store ensemble {ensemble_name} from {self.url}: {exc}") from exc

    # persistence -------------------------------------------------------- #
    def save(self, unit: "RunUnit", result: ExperimentResult, *, overwrite: bool = True) -> None:
        """Persist a unit's result through the service.

        Same document bytes and same commit order as the filesystem store
        (archive before the document that references it).  Without
        ``overwrite`` every PUT is conditional: the server refuses (412,
        no write) artifacts that already exist, and an ensemble archive
        already committed is not even uploaded again.
        """
        if not overwrite and self._existing_satisfies(unit, result):
            return
        content_hash = unit.content_hash
        document = build_document(unit, result)
        if result.ensemble is not None:
            archive_name = f"{content_hash}.npz"
            if overwrite or not self._artifact_exists(archive_name):
                with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
                    result.ensemble.save(handle.name)
                    handle.seek(0)
                    payload = handle.read()
                self._put(archive_name, payload, overwrite=overwrite)
            document["unit"]["ensemble"] = archive_name
        # A document that exists but does not yet reference the ensemble is
        # upgraded in place — that rewrite must not be refused with 412.
        force = overwrite or self.has(unit)
        self._put(f"{content_hash}.json", encode_document(document).encode("utf8"), overwrite=force)

    def _artifact_exists(self, name: str) -> bool:
        status, _ = self._request("HEAD", f"/units/{name}", allow=(404,))
        return status == 200

    # auxiliary metrics artifacts ---------------------------------------- #
    def save_metrics(self, unit_or_hash: "RunUnit | str", payload: str, *, overwrite: bool = True) -> None:
        """Persist a unit's live-metrics JSONL stream through the service."""
        self._put(metrics_artifact_name(unit_or_hash), payload.encode("utf8"), overwrite=overwrite)

    def load_metrics(self, unit_or_hash: "RunUnit | str") -> str:
        name = metrics_artifact_name(unit_or_hash)
        status, raw = self._request("GET", f"/units/{name}", allow=(404,))
        if status == 404:
            raise RunStoreError(
                f"no metrics artifact for {_as_hash(unit_or_hash)[:12]}… in {self.url}"
            )
        try:
            return raw.decode("utf8")
        except UnicodeDecodeError as exc:
            raise RunStoreError(
                f"corrupt metrics artifact {self.url}/units/{name}: {exc}"
            ) from exc

    def has_metrics(self, unit_or_hash: "RunUnit | str") -> bool:
        return self._artifact_exists(metrics_artifact_name(unit_or_hash))

    def _put(self, name: str, payload: bytes, *, overwrite: bool) -> None:
        query = "?overwrite=1" if overwrite else ""
        # 412 = already committed by another (or an earlier, ambiguously
        # failed) writer; deterministic artifacts make that success.
        self._request("PUT", f"/units/{name}{query}", payload, allow=(412,))

    # maintenance -------------------------------------------------------- #
    def orphaned_files(self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS) -> list[str]:
        _, payload = self._request_json("GET", f"/orphans?min_age={float(min_age_seconds)}")
        return [name for name in payload.get("orphans", []) if isinstance(name, str)]

    def sweep_orphans(self, min_age_seconds: float = ORPHAN_MIN_AGE_SECONDS) -> list[str]:
        _, payload = self._request_json(
            "POST", "/orphans/sweep", {"min_age_seconds": float(min_age_seconds)}
        )
        return [name for name in payload.get("removed", []) if isinstance(name, str)]

    # leases ------------------------------------------------------------- #
    def try_acquire_lease(
        self,
        unit_or_hash: "RunUnit | str",
        owner: str,
        ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
    ) -> bool:
        status, _ = self._request_json(
            "POST",
            f"/leases/{_as_hash(unit_or_hash)}/acquire",
            {"owner": owner, "ttl_seconds": float(ttl_seconds)},
            allow=(409,),
        )
        return status == 200

    def renew_lease(
        self,
        unit_or_hash: "RunUnit | str",
        owner: str,
        ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
    ) -> bool:
        status, _ = self._request_json(
            "POST",
            f"/leases/{_as_hash(unit_or_hash)}/renew",
            {"owner": owner, "ttl_seconds": float(ttl_seconds)},
            allow=(409,),
        )
        return status == 200

    def release_lease(self, unit_or_hash: "RunUnit | str", owner: str) -> None:
        self._request_json("POST", f"/leases/{_as_hash(unit_or_hash)}/release", {"owner": owner})


def _error_detail(payload: bytes) -> str:
    try:
        decoded = json.loads(payload.decode("utf8"))
        return str(decoded.get("error", "")) if isinstance(decoded, dict) else ""
    except (UnicodeDecodeError, json.JSONDecodeError):
        return ""
