"""Persistence of experiment results.

Ensembles are stored as compressed ``.npz`` (see
:meth:`repro.particles.trajectory.EnsembleTrajectory.save`); the experiment
summaries and measurement series produced by the pipeline are stored as JSON
documents so they remain human-readable and diff-able.

Both documents round-trip: :func:`load_measurement` restores every series a
measurement carries (including the per-step decomposition objects) and
:func:`load_experiment_summary` rebuilds a full
:class:`~repro.core.pipeline.ExperimentResult` (minus the raw ensemble, which
lives in its own ``.npz``).  The content-addressed run cache
(:mod:`repro.io.artifacts`) builds on exactly this round-trip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.pipeline import ExperimentResult
from repro.core.self_organization import AnalysisConfig, SelfOrganizationResult
from repro.particles.model import SimulationConfig

__all__ = [
    "save_measurement",
    "load_measurement",
    "save_experiment_summary",
    "load_experiment_summary",
]


def save_measurement(path: str | Path, result: SelfOrganizationResult) -> Path:
    """Write a measurement time series to JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return path


def load_measurement(path: str | Path) -> SelfOrganizationResult:
    """Load a measurement written by :func:`save_measurement`.

    Every series survives the round-trip: the optional entropy and alignment
    series come back as arrays, and the per-step
    :class:`~repro.infotheory.decomposition.DecompositionResult` objects are
    restored so ``decomposition_series()`` works on the loaded result.
    """
    payload: dict[str, Any] = json.loads(Path(path).read_text())
    result = SelfOrganizationResult.from_dict(payload)
    if result.decompositions is None and "decomposition" in payload:
        # Files written before the lossless round-trip only carry the
        # flattened per-term series; keep exposing it where the old loader
        # put it so existing consumers do not lose the data.
        result.metadata.setdefault("decomposition", payload["decomposition"])
    return result


def experiment_result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """JSON-serialisable document holding the full experiment result (no ensemble)."""
    return {
        "summary": result.summary(),
        "simulation_config": result.simulation_config.to_dict(),
        "analysis_config": result.analysis_config.to_dict(),
        "n_samples": result.n_samples,
        "seed": result.seed,
        "measurement": result.measurement.to_dict(),
        "mean_force_norm": result.mean_force_norm.tolist(),
        "fraction_at_equilibrium": result.fraction_at_equilibrium,
        "wall_time_seconds": dict(result.wall_time_seconds),
    }


def experiment_result_from_dict(payload: dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`experiment_result_to_dict` (``ensemble`` is ``None``)."""
    return ExperimentResult(
        simulation_config=SimulationConfig.from_dict(payload["simulation_config"]),
        analysis_config=AnalysisConfig.from_dict(payload["analysis_config"]),
        n_samples=int(payload["n_samples"]),
        seed=None if payload["seed"] is None else int(payload["seed"]),
        measurement=SelfOrganizationResult.from_dict(payload["measurement"]),
        mean_force_norm=np.asarray(payload["mean_force_norm"], dtype=float),
        fraction_at_equilibrium=float(payload["fraction_at_equilibrium"]),
        ensemble=None,
        wall_time_seconds=dict(payload.get("wall_time_seconds", {})),
    )


def save_experiment_summary(path: str | Path, result: ExperimentResult) -> Path:
    """Write the full experiment document (config echo + measurement) to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(experiment_result_to_dict(result), indent=2, sort_keys=True))
    return path


def load_experiment_summary(path: str | Path) -> ExperimentResult:
    """Load an experiment written by :func:`save_experiment_summary`.

    The returned :class:`~repro.core.pipeline.ExperimentResult` carries the
    full configs, the measurement (all series restored) and the diagnostics;
    only the raw ensemble trajectory — persisted separately as ``.npz`` when
    requested — is absent.
    """
    payload: dict[str, Any] = json.loads(Path(path).read_text())
    try:
        return experiment_result_from_dict(payload)
    except KeyError as exc:
        raise ValueError(
            f"{path} is not a complete experiment summary (missing {exc}); summaries "
            "written before the full config echo was added cannot be loaded back into "
            "an ExperimentResult — re-run the experiment to regenerate the file"
        ) from exc
