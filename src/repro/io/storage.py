"""Persistence of experiment results.

Ensembles are stored as compressed ``.npz`` (see
:meth:`repro.particles.trajectory.EnsembleTrajectory.save`); the experiment
summaries and measurement series produced by the pipeline are stored as JSON
documents so they remain human-readable and diff-able.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.pipeline import ExperimentResult
from repro.core.self_organization import SelfOrganizationResult

__all__ = ["save_measurement", "load_measurement", "save_experiment_summary"]


def save_measurement(path: str | Path, result: SelfOrganizationResult) -> Path:
    """Write a measurement time series to JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return path


def load_measurement(path: str | Path) -> SelfOrganizationResult:
    """Load a measurement written by :func:`save_measurement`.

    Only the array series and metadata are restored (decomposition objects
    are flattened on save and come back as plain series in ``metadata``).
    """
    payload: dict[str, Any] = json.loads(Path(path).read_text())
    metadata = dict(payload.get("metadata", {}))
    if "decomposition" in payload:
        metadata["decomposition"] = payload["decomposition"]
    return SelfOrganizationResult(
        steps=np.asarray(payload["steps"], dtype=int),
        times=np.asarray(payload["times"], dtype=float),
        multi_information=np.asarray(payload["multi_information"], dtype=float),
        marginal_entropy_sum=(
            np.asarray(payload["marginal_entropy_sum"], dtype=float)
            if "marginal_entropy_sum" in payload
            else None
        ),
        joint_entropy=(
            np.asarray(payload["joint_entropy"], dtype=float) if "joint_entropy" in payload else None
        ),
        decompositions=None,
        alignment_rmse=(
            np.asarray(payload["alignment_rmse"], dtype=float)
            if "alignment_rmse" in payload
            else None
        ),
        observer_mode=payload.get("observer_mode", "particles"),
        n_observers=int(payload.get("n_observers", 0)),
        metadata=metadata,
    )


def save_experiment_summary(path: str | Path, result: ExperimentResult) -> Path:
    """Write the compact experiment summary (config echo + headline numbers) to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "summary": result.summary(),
        "simulation_config": result.simulation_config.to_dict(),
        "measurement": result.measurement.to_dict(),
        "mean_force_norm": result.mean_force_norm.tolist(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
