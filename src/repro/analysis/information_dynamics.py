"""Per-particle information dynamics over time (the paper's §7.3 programme).

The paper's future work proposes measuring information *transfer* between
individual particles during the organization process.  This module implements
that analysis on top of :mod:`repro.infotheory.transfer`:

* :func:`particle_series` extracts a single particle's trajectory across all
  ensemble samples in the form the estimators expect — note that this uses
  the **raw** ensemble (identity of a particle preserved over time), not the
  permutation-reduced representation, exactly as §5.2 cautions.
* :func:`pairwise_transfer_entropy` estimates the directed transfer-entropy
  matrix between a set of particles.
* :func:`net_information_flow` summarises directedness (outgoing minus
  incoming transfer) per particle.
"""

from __future__ import annotations

import numpy as np

from repro.infotheory.transfer import time_lagged_mutual_information, transfer_entropy
from repro.particles.trajectory import EnsembleTrajectory

__all__ = [
    "particle_series",
    "pairwise_transfer_entropy",
    "pairwise_lagged_mutual_information",
    "net_information_flow",
]


def particle_series(ensemble: EnsembleTrajectory, particle: int) -> np.ndarray:
    """Trajectories of one particle across samples, shape ``(n_samples, n_steps, 2)``.

    The ensemble axis plays the role of independent realisations for the
    transfer-entropy estimators.
    """
    if not 0 <= particle < ensemble.n_particles:
        raise ValueError(f"particle index {particle} out of range [0, {ensemble.n_particles})")
    # positions are stored as (n_steps, n_samples, n_particles, 2)
    return np.ascontiguousarray(ensemble.positions[:, :, particle, :].transpose(1, 0, 2))


def pairwise_transfer_entropy(
    ensemble: EnsembleTrajectory,
    particles: list[int] | np.ndarray | None = None,
    *,
    history: int = 1,
    k: int = 4,
    step_stride: int = 1,
) -> np.ndarray:
    """Directed transfer-entropy matrix between the selected particles (bits).

    Entry ``[i, j]`` is ``T_{particle_j → particle_i}`` (information the past
    of ``j`` adds about the next step of ``i`` beyond ``i``'s own past).  The
    diagonal is zero by convention.  ``step_stride`` thins the trajectories to
    control cost.
    """
    if particles is None:
        particles = np.arange(ensemble.n_particles)
    particles = np.asarray(particles, dtype=int)
    series = {int(p): particle_series(ensemble, int(p))[:, ::step_stride, :] for p in particles}
    n = particles.size
    matrix = np.zeros((n, n))
    for i_index, i in enumerate(particles):
        for j_index, j in enumerate(particles):
            if i == j:
                continue
            matrix[i_index, j_index] = transfer_entropy(
                series[int(j)], series[int(i)], history=history, k=k
            )
    return matrix


def pairwise_lagged_mutual_information(
    ensemble: EnsembleTrajectory,
    particles: list[int] | np.ndarray | None = None,
    *,
    lag: int = 1,
    k: int = 4,
    step_stride: int = 1,
) -> np.ndarray:
    """Symmetric-in-construction matrix of lagged mutual informations (bits).

    Entry ``[i, j]`` is ``I(particle_j at t ; particle_i at t + lag)`` — the
    unconditioned precursor of the transfer entropy, useful as a cheaper
    screening quantity.
    """
    if particles is None:
        particles = np.arange(ensemble.n_particles)
    particles = np.asarray(particles, dtype=int)
    series = {int(p): particle_series(ensemble, int(p))[:, ::step_stride, :] for p in particles}
    n = particles.size
    matrix = np.zeros((n, n))
    for i_index, i in enumerate(particles):
        for j_index, j in enumerate(particles):
            if i == j:
                continue
            matrix[i_index, j_index] = time_lagged_mutual_information(
                series[int(j)], series[int(i)], lag=lag, k=k
            )
    return matrix


def net_information_flow(transfer_matrix: np.ndarray) -> np.ndarray:
    """Outgoing minus incoming transfer entropy per particle.

    Positive values mark particles that act predominantly as information
    sources during the organization process, negative values mark sinks.
    """
    transfer_matrix = np.asarray(transfer_matrix, dtype=float)
    if transfer_matrix.ndim != 2 or transfer_matrix.shape[0] != transfer_matrix.shape[1]:
        raise ValueError("transfer_matrix must be square")
    outgoing = transfer_matrix.sum(axis=0)  # column j: j -> others
    incoming = transfer_matrix.sum(axis=1)  # row i: others -> i
    return outgoing - incoming
