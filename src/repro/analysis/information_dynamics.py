"""Per-particle information dynamics over time (the paper's §7.3 programme).

The paper's future work proposes measuring information *transfer* between
individual particles during the organization process.  This module implements
that analysis on top of :mod:`repro.infotheory.transfer`:

* :func:`particle_series` extracts a single particle's trajectory across all
  ensemble samples in the form the estimators expect — note that this uses
  the **raw** ensemble (identity of a particle preserved over time), not the
  permutation-reduced representation, exactly as §5.2 cautions.
* :func:`pairwise_transfer_entropy` estimates the directed transfer-entropy
  matrix between a set of particles.
* :func:`pairwise_lagged_mutual_information` is its unconditioned (cheaper)
  screening counterpart.
* :func:`net_information_flow` summarises directedness (outgoing minus
  incoming transfer) per particle.

Shared-embedding plan
---------------------
A naive pairwise analysis calls :func:`~repro.infotheory.transfer
.transfer_entropy` once per ordered pair, and every call re-derives the
target's ``embed_history`` blocks and rebuilds their distance structures from
scratch — n² times what is needed.  The pairwise functions here instead
compute, **once per particle**, the flattened (future, past, aligned-source)
embeddings and, **once per matrix row**, the target-side distance structures
(the dense ``max(d_future, d_past)`` block, or the tree-backed (A, C)/(C)
count indexes), then sweep the row's sources against them.  The per-pair
arithmetic is routed through the same estimator kernels as the naive path,
so the resulting matrices are bit-identical to the per-pair loop — the plan
is pure reuse, not an approximation.

``backend="dense" | "kdtree" | "auto"`` selects the estimator backend (see
:mod:`repro.infotheory.transfer`); ``"auto"`` resolves once from the pooled
sample count and applies to every pair.  ``n_jobs`` fans the matrix rows out
through :func:`repro.parallel.pool.parallel_starmap`; row order (and hence
the result) is deterministic for any job count.  ``workers`` threads the
tree backend's cKDTree queries *inside* each row task (scipy semantics) —
the two parallelism axes compose and neither changes any value.

Payload-light fan-out
---------------------
Shipping each row task its whole embedding set (every particle's aligned
source block) makes the pickled payload O(n · m · d) *per row* — quadratic
in particle count overall.  Under the ``"fork"`` start method the parent
instead registers the embedding plan (all per-particle blocks plus the row
parameters) in a module-level cache right before the pool is created; forked
workers inherit that memory read-only (copy-on-write, no serialisation) and
rebuild each row's arguments from a ``(plan token, row index)`` payload —
two integers per row.  Row functions, ordering, and hence the matrices are
identical to the heavy-payload path, which remains the fallback on start
methods that do not inherit parent memory ("spawn"/"forkserver").
"""

from __future__ import annotations

import itertools
import multiprocessing

import numpy as np

from repro.infotheory.knn import (
    EuclideanBallCounter,
    ProductMetricTree,
    pairwise_euclidean,
    resolve_estimator_backend,
)
from repro.infotheory.ksg import KSG_VARIANTS
from repro.infotheory.transfer import (
    _cmi_from_dense_blocks,
    _cmi_kdtree,
    _ksg_from_dense_blocks,
    _ksg_kdtree,
    embed_history,
)
from repro.parallel.pool import effective_n_jobs, parallel_starmap
from repro.particles.trajectory import EnsembleTrajectory

__all__ = [
    "particle_series",
    "pairwise_transfer_entropy",
    "pairwise_lagged_mutual_information",
    "net_information_flow",
]

#: Measured dense/kdtree crossover of the *pairwise TE* plan.  The shared
#: dense path amortises its distance matrices across a whole matrix row, so
#: the tree backend overtakes it much later than in a standalone
#: ``transfer_entropy`` call (where the crossover is
#: ``repro.infotheory.knn.KDTREE_MIN_SAMPLES``).
TE_PAIRWISE_KDTREE_MIN_SAMPLES = 3072

#: Measured dense/kdtree crossover of the pairwise lagged-MI plan: the
#: amortised dense matrices push it above the standalone KSG1 crossover
#: (``repro.infotheory.transfer.KSG1_KDTREE_MIN_SAMPLES``), but the
#: list-free marginal counts keep it far below the pairwise-TE one.
MI_PAIRWISE_KDTREE_MIN_SAMPLES = 640


def particle_series(ensemble: EnsembleTrajectory, particle: int) -> np.ndarray:
    """Trajectories of one particle across samples, shape ``(n_samples, n_steps, 2)``.

    The ensemble axis plays the role of independent realisations for the
    transfer-entropy estimators.
    """
    if not 0 <= particle < ensemble.n_particles:
        raise ValueError(f"particle index {particle} out of range [0, {ensemble.n_particles})")
    # positions are stored as (n_steps, n_samples, n_particles, 2)
    return np.ascontiguousarray(ensemble.positions[:, :, particle, :].transpose(1, 0, 2))


def _selected_particles(
    ensemble: EnsembleTrajectory, particles: list[int] | np.ndarray | None
) -> np.ndarray:
    if particles is None:
        particles = np.arange(ensemble.n_particles)
    return np.asarray(particles, dtype=int)


def _validate_window_args(
    ensemble: EnsembleTrajectory, *, step_stride: int, history: int | None = None, lag: int | None = None
) -> int:
    """Validate thinning/embedding arguments; returns the thinned step count."""
    if step_stride < 1:
        raise ValueError(f"step_stride must be >= 1, got {step_stride}")
    n_thinned = len(range(0, ensemble.n_steps, step_stride))
    if history is not None:
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        if n_thinned <= history:
            raise ValueError(
                f"history={history} requires at least {history + 1} time steps, but the "
                f"trajectory keeps only {n_thinned} of {ensemble.n_steps} recorded steps "
                f"after thinning with step_stride={step_stride}"
            )
    if lag is not None:
        if lag < 0:
            raise ValueError(f"lag must be non-negative, got {lag}")
        if n_thinned <= lag:
            raise ValueError(
                f"lag={lag} requires at least {lag + 1} time steps, but the trajectory "
                f"keeps only {n_thinned} of {ensemble.n_steps} recorded steps after "
                f"thinning with step_stride={step_stride}"
            )
    return n_thinned


def _self_pair_indices(particles: np.ndarray, i_index: int) -> tuple[int, ...]:
    """Column indices whose particle id equals row ``i_index``'s particle.

    The matrix diagonal is zero by convention, and that convention is by
    particle *identity*: a selection with repeated indices must not report
    self-transfer between the duplicate entries.
    """
    return tuple(np.flatnonzero(particles == particles[i_index]))


def _te_row(
    skip_indices: tuple[int, ...],
    future_i: np.ndarray,
    past_i: np.ndarray,
    aligned_blocks: list[np.ndarray],
    k: int,
    backend: str,
    workers: int = 1,
    cross_row_cache: dict | None = None,
) -> np.ndarray:
    """One row of the transfer-entropy matrix: every source j against target i.

    The target-side structures (``max(d_future, d_past)`` dense block, or the
    conditioning-space candidate sweep of the tree backend) are built once
    and reused across the row's sources.  ``cross_row_cache`` (serial mode only)
    additionally shares the per-source aligned-embedding distance matrices
    across rows.
    """
    n = len(aligned_blocks)
    row = np.zeros(n)
    sources = [j_index for j_index in range(n) if j_index not in skip_indices]
    if not sources:
        return row
    if backend == "dense":
        d_future = pairwise_euclidean(future_i)
        d_past = pairwise_euclidean(past_i)
        d_fp = np.maximum(d_future, d_past)
        for j_index in sources:
            if cross_row_cache is None:
                d_source = pairwise_euclidean(aligned_blocks[j_index])
            else:
                d_source = cross_row_cache.get(j_index)
                if d_source is None:
                    d_source = cross_row_cache.setdefault(
                        j_index, pairwise_euclidean(aligned_blocks[j_index])
                    )
            row[j_index] = _cmi_from_dense_blocks(d_fp, d_source, d_past, k)
    else:
        # The (A, C) = (future, past) tree and the conditioning-ball counter
        # depend only on the target, so one of each serves the whole row.
        ac_tree = ProductMetricTree([future_i, past_i], workers=workers)
        c_counter = EuclideanBallCounter(past_i, workers=workers)
        for j_index in sources:
            row[j_index] = _cmi_kdtree(
                future_i,
                aligned_blocks[j_index],
                past_i,
                k,
                ac_tree=ac_tree,
                c_counter=c_counter,
                workers=workers,
            )
    return row


def _mi_row(
    skip_indices: tuple[int, ...],
    target_i: np.ndarray,
    source_blocks: list[np.ndarray],
    k: int,
    backend: str,
    variant: str = "ksg1",
    workers: int = 1,
    cross_row_cache: dict | None = None,
) -> np.ndarray:
    """One row of the lagged-MI matrix: every source j against target i."""
    n = len(source_blocks)
    row = np.zeros(n)
    sources = [j_index for j_index in range(n) if j_index not in skip_indices]
    if not sources:
        return row
    if backend == "dense":
        d_target = pairwise_euclidean(target_i)
        for j_index in sources:
            if cross_row_cache is None:
                d_source = pairwise_euclidean(source_blocks[j_index])
            else:
                d_source = cross_row_cache.get(j_index)
                if d_source is None:
                    d_source = cross_row_cache.setdefault(
                        j_index, pairwise_euclidean(source_blocks[j_index])
                    )
            row[j_index] = _ksg_from_dense_blocks([d_source, d_target], k, variant)
    else:
        # The target-side counter serves the whole row; source counters are
        # shared across rows through the cache in serial mode.  Counters
        # answer both the strict (ksg1/paper) and inclusive (ksg2) counts,
        # so one cache serves every variant.
        target_counter = EuclideanBallCounter(target_i, workers=workers)
        for j_index in sources:
            if cross_row_cache is None:
                source_counter = EuclideanBallCounter(source_blocks[j_index], workers=workers)
            else:
                source_counter = cross_row_cache.get(j_index)
                if source_counter is None:
                    source_counter = cross_row_cache.setdefault(
                        j_index, EuclideanBallCounter(source_blocks[j_index], workers=workers)
                    )
            row[j_index] = _ksg_kdtree(
                [source_blocks[j_index], target_i],
                k,
                variant,
                block_counters=[source_counter, target_counter],
                workers=workers,
            )
    return row


#: Fork-inherited embedding plans of in-flight pairwise fan-outs, keyed by a
#: per-process token.  The parent registers a plan immediately before the
#: worker pool is created, so forked children see it in their copy of the
#: module state without any per-row pickling; the parent removes it again as
#: soon as the fan-out returns.
_EMBEDDING_PLAN_CACHE: dict[int, dict] = {}
_PLAN_TOKENS = itertools.count()


def _uses_fork_start() -> bool:
    return multiprocessing.get_start_method(allow_none=False) == "fork"


def _plan_from_cache(token: int) -> dict:
    plan = _EMBEDDING_PLAN_CACHE.get(token)
    if plan is None:
        raise RuntimeError(
            f"embedding plan {token} is not present in this process; the "
            "payload-light fan-out requires the 'fork' start method (workers "
            "inherit the parent's plan cache when the pool is created)"
        )
    return plan


def _te_row_args(plan: dict, i_index: int) -> tuple:
    return (
        plan["skips"][i_index],
        plan["futures"][i_index],
        plan["pasts"][i_index],
        plan["aligneds"],
        plan["k"],
        plan["backend"],
        plan["workers"],
    )


def _mi_row_args(plan: dict, i_index: int) -> tuple:
    return (
        plan["skips"][i_index],
        plan["targets"][i_index],
        plan["sources"],
        plan["k"],
        plan["backend"],
        plan["variant"],
        plan["workers"],
    )


def _te_row_from_plan(token: int, i_index: int) -> np.ndarray:
    """Worker-side TE row task: rebuild the row arguments from the shared plan."""
    return _te_row(*_te_row_args(_plan_from_cache(token), i_index))


def _mi_row_from_plan(token: int, i_index: int) -> np.ndarray:
    """Worker-side lagged-MI row task: rebuild the row arguments from the shared plan."""
    return _mi_row(*_mi_row_args(_plan_from_cache(token), i_index))


def _fan_out_rows(row_func, plan_row_func, row_args, plan: dict, n_rows: int, *, n_jobs: int | None) -> np.ndarray:
    """Run the per-row tasks serially (with a cross-row dense cache) or pooled.

    Parallel mode prefers the payload-light path: the plan is registered in
    the module-level cache so forked workers inherit it and each row task
    pickles only ``(token, row index)``.  On non-fork start methods the rows
    fall back to carrying their full argument tuples.  Either way the row
    functions and :func:`parallel_starmap`'s deterministic ordering are
    identical, so the resulting matrix is bit-identical across modes.
    """
    if n_rows == 0:
        return np.zeros((0, 0))
    if effective_n_jobs(n_jobs) == 1 or n_rows <= 1:
        cross_row_cache: dict = {}
        rows = [row_func(*row_args(plan, i_index), cross_row_cache) for i_index in range(n_rows)]
    elif _uses_fork_start():
        token = next(_PLAN_TOKENS)
        _EMBEDDING_PLAN_CACHE[token] = plan
        try:
            rows = parallel_starmap(
                plan_row_func, [(token, i_index) for i_index in range(n_rows)], n_jobs=n_jobs
            )
        finally:
            del _EMBEDDING_PLAN_CACHE[token]
    else:
        rows = parallel_starmap(
            row_func, [row_args(plan, i_index) for i_index in range(n_rows)], n_jobs=n_jobs
        )
    return np.stack(rows)


def pairwise_transfer_entropy(
    ensemble: EnsembleTrajectory,
    particles: list[int] | np.ndarray | None = None,
    *,
    history: int = 1,
    k: int = 4,
    step_stride: int = 1,
    backend: str = "auto",
    n_jobs: int | None = None,
    workers: int = 1,
) -> np.ndarray:
    """Directed transfer-entropy matrix between the selected particles (bits).

    Entry ``[i, j]`` is ``T_{particle_j → particle_i}`` (information the past
    of ``j`` adds about the next step of ``i`` beyond ``i``'s own past).  The
    diagonal is zero by convention.  ``step_stride`` thins the trajectories to
    control cost; ``backend``, ``n_jobs`` and ``workers`` select the
    estimator backend, the row fan-out width and the per-row tree-query
    thread count (see the module docstring) — none of them changes the
    values beyond floating-point backend tolerance.
    """
    particles = _selected_particles(ensemble, particles)
    _validate_window_args(ensemble, step_stride=step_stride, history=history)
    futures, pasts, aligneds = [], [], []
    for p in particles:
        series = particle_series(ensemble, int(p))[:, ::step_stride, :]
        future, past, aligned = embed_history(series, history)
        d = series.shape[2]
        futures.append(future.reshape(-1, d))
        pasts.append(past.reshape(-1, history * d))
        aligneds.append(aligned.reshape(-1, d))
    if particles.size == 0:
        return np.zeros((0, 0))
    resolved = resolve_estimator_backend(
        backend, n_samples=futures[0].shape[0], min_samples=TE_PAIRWISE_KDTREE_MIN_SAMPLES
    )
    plan = {
        "skips": [_self_pair_indices(particles, i_index) for i_index in range(particles.size)],
        "futures": futures,
        "pasts": pasts,
        "aligneds": aligneds,
        "k": k,
        "backend": resolved,
        "workers": workers,
    }
    return _fan_out_rows(_te_row, _te_row_from_plan, _te_row_args, plan, particles.size, n_jobs=n_jobs)


def pairwise_lagged_mutual_information(
    ensemble: EnsembleTrajectory,
    particles: list[int] | np.ndarray | None = None,
    *,
    lag: int = 1,
    k: int = 4,
    step_stride: int = 1,
    backend: str = "auto",
    n_jobs: int | None = None,
    variant: str = "ksg1",
    workers: int = 1,
) -> np.ndarray:
    """Matrix of lagged mutual informations between the selected particles (bits).

    Entry ``[i, j]`` is ``I(particle_j at t ; particle_i at t + lag)`` — the
    unconditioned precursor of the transfer entropy, useful as a cheaper
    screening quantity.  ``variant`` selects the KSG estimator variant
    (default algorithm 1, the cheapest screen; ``"ksg2"`` gives the
    calibrated pipeline estimator); ``backend``/``n_jobs``/``workers`` as in
    :func:`pairwise_transfer_entropy`.
    """
    if variant not in KSG_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected 'paper', 'ksg1' or 'ksg2'")
    particles = _selected_particles(ensemble, particles)
    _validate_window_args(ensemble, step_stride=step_stride, lag=lag)
    sources, targets = [], []
    for p in particles:
        series = particle_series(ensemble, int(p))[:, ::step_stride, :]
        n_thinned = series.shape[1]
        d = series.shape[2]
        sources.append(series[:, : n_thinned - lag, :].reshape(-1, d))
        targets.append(series[:, lag:, :].reshape(-1, d))
    if particles.size == 0:
        return np.zeros((0, 0))
    resolved = resolve_estimator_backend(
        backend, n_samples=sources[0].shape[0], min_samples=MI_PAIRWISE_KDTREE_MIN_SAMPLES
    )
    plan = {
        "skips": [_self_pair_indices(particles, i_index) for i_index in range(particles.size)],
        "targets": targets,
        "sources": sources,
        "k": k,
        "backend": resolved,
        "variant": variant,
        "workers": workers,
    }
    return _fan_out_rows(_mi_row, _mi_row_from_plan, _mi_row_args, plan, particles.size, n_jobs=n_jobs)


def net_information_flow(transfer_matrix: np.ndarray) -> np.ndarray:
    """Outgoing minus incoming transfer entropy per particle.

    Positive values mark particles that act predominantly as information
    sources during the organization process, negative values mark sinks.
    """
    transfer_matrix = np.asarray(transfer_matrix, dtype=float)
    if transfer_matrix.ndim != 2 or transfer_matrix.shape[0] != transfer_matrix.shape[1]:
        raise ValueError("transfer_matrix must be square")
    outgoing = transfer_matrix.sum(axis=0)  # column j: j -> others
    incoming = transfer_matrix.sum(axis=1)  # row i: others -> i
    return outgoing - incoming
