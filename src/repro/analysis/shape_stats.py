"""Geometric shape statistics of particle configurations.

These quantities support the qualitative figures of the paper: the regular
disc/grid equilibria of Fig. 3, the shape categories of Fig. 6, the
concentric-ring structure of Figs. 5/7 and the layered/enclosed morphologies
of Fig. 12.  They are deliberately simple, deterministic descriptors so that
the benchmark harness can report numbers instead of pictures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.particles.forces import pairwise_distance_matrix

__all__ = [
    "radius_of_gyration",
    "nearest_neighbor_distances",
    "pair_correlation",
    "radial_profile",
    "detect_concentric_rings",
    "RingReport",
    "type_radial_ordering",
    "type_segregation_index",
    "per_particle_dispersion",
]


def radius_of_gyration(positions: np.ndarray) -> float | np.ndarray:
    """Root-mean-square distance of particles from their centroid.

    Accepts ``(n, 2)`` or a batch ``(..., n, 2)``; returns a scalar or an
    array over the leading axes.
    """
    positions = np.asarray(positions, dtype=float)
    centered = positions - positions.mean(axis=-2, keepdims=True)
    rg = np.sqrt(np.einsum("...ik,...ik->...i", centered, centered).mean(axis=-1))
    return float(rg) if rg.ndim == 0 else rg


def nearest_neighbor_distances(positions: np.ndarray) -> np.ndarray:
    """Distance of every particle to its nearest neighbour, shape ``(n,)``."""
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must have shape (n, 2)")
    if positions.shape[0] < 2:
        raise ValueError("need at least two particles")
    dist = pairwise_distance_matrix(positions)
    np.fill_diagonal(dist, np.inf)
    return dist.min(axis=1)


def pair_correlation(
    positions: np.ndarray,
    *,
    n_bins: int = 30,
    r_max: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Radial pair-correlation histogram ``g(r)`` (unnormalised density version).

    Returns ``(bin_centers, g)`` where ``g`` is the pair-count density per
    unit area relative to the mean density — the standard diagnostic for
    crystalline vs liquid-like order (peaks at lattice spacings for the
    regular F2 grids of Fig. 3).
    """
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    if n < 2:
        raise ValueError("need at least two particles")
    dist = pairwise_distance_matrix(positions)
    iu = np.triu_indices(n, k=1)
    pair_dists = dist[iu]
    if r_max is None:
        r_max = float(pair_dists.max())
    edges = np.linspace(0.0, r_max, n_bins + 1)
    counts, _ = np.histogram(pair_dists, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_areas = np.pi * (edges[1:] ** 2 - edges[:-1] ** 2)
    area = np.pi * r_max**2
    density = n * (n - 1) / 2.0 / area
    with np.errstate(divide="ignore", invalid="ignore"):
        g = counts / (shell_areas * density)
    return centers, np.nan_to_num(g)


def radial_profile(positions: np.ndarray) -> np.ndarray:
    """Sorted distances of the particles from the collective centroid."""
    positions = np.asarray(positions, dtype=float)
    centered = positions - positions.mean(axis=0)
    return np.sort(np.sqrt(np.einsum("ik,ik->i", centered, centered)))


@dataclass(frozen=True)
class RingReport:
    """Result of :func:`detect_concentric_rings`.

    Attributes
    ----------
    n_rings:
        Number of detected concentric rings (radial clusters).
    ring_radii:
        Mean radius of each ring, ascending.
    ring_sizes:
        Number of particles per ring.
    separation_score:
        Gap between rings relative to the within-ring radial spread (larger
        = cleaner ring structure).  Zero when only one ring is found.
    """

    n_rings: int
    ring_radii: tuple[float, ...]
    ring_sizes: tuple[int, ...]
    separation_score: float


def detect_concentric_rings(
    positions: np.ndarray,
    *,
    max_rings: int = 3,
    min_gap_ratio: float = 1.5,
) -> RingReport:
    """Detect concentric-ring structure (Fig. 7's double polygon) from radial gaps.

    The sorted radial profile is split at gaps that exceed ``min_gap_ratio``
    times the median radial increment; each resulting segment is one ring.
    """
    radii = radial_profile(positions)
    n = radii.size
    if n < 4:
        return RingReport(1, (float(radii.mean()),), (n,), 0.0)
    increments = np.diff(radii)
    median_inc = max(float(np.median(increments)), 1e-12)
    split_points = np.nonzero(increments > min_gap_ratio * median_inc)[0]
    # Keep the largest gaps only, bounded by max_rings - 1 splits.
    if split_points.size > max_rings - 1:
        largest = np.argsort(increments[split_points])[::-1][: max_rings - 1]
        split_points = np.sort(split_points[largest])
    segments = np.split(radii, split_points + 1)
    segments = [seg for seg in segments if seg.size > 0]
    ring_radii = tuple(float(seg.mean()) for seg in segments)
    ring_sizes = tuple(int(seg.size) for seg in segments)
    if len(segments) < 2:
        return RingReport(1, ring_radii, ring_sizes, 0.0)
    within = max(float(np.mean([seg.std() for seg in segments])), 1e-12)
    gaps = np.diff([seg.mean() for seg in segments])
    score = float(np.min(gaps) / within)
    return RingReport(len(segments), ring_radii, ring_sizes, score)


def type_radial_ordering(positions: np.ndarray, types: np.ndarray) -> dict[int, float]:
    """Mean distance from the centroid per type — detects layered (onion) structures.

    A strongly layered configuration (Fig. 12) has clearly separated per-type
    mean radii; a mixed configuration has similar values for all types.
    """
    positions = np.asarray(positions, dtype=float)
    types = np.asarray(types, dtype=int)
    centered = positions - positions.mean(axis=0)
    radii = np.sqrt(np.einsum("ik,ik->i", centered, centered))
    return {int(t): float(radii[types == t].mean()) for t in np.unique(types)}


def type_segregation_index(positions: np.ndarray, types: np.ndarray, *, k: int = 3) -> float:
    """Fraction of same-type particles among each particle's k nearest neighbours.

    1.0 means perfectly sorted (each particle surrounded by its own type),
    while the expected value for a random mixture equals the type frequency.
    Used to quantify the differential-adhesion sorting of Figs. 1/12.
    """
    positions = np.asarray(positions, dtype=float)
    types = np.asarray(types, dtype=int)
    n = positions.shape[0]
    if n <= k:
        raise ValueError("need more particles than neighbours k")
    dist = pairwise_distance_matrix(positions)
    np.fill_diagonal(dist, np.inf)
    neighbor_idx = np.argpartition(dist, kth=k - 1, axis=1)[:, :k]
    same = types[neighbor_idx] == types[:, None]
    return float(same.mean())


def per_particle_dispersion(aligned_snapshot: np.ndarray) -> np.ndarray:
    """Across-sample positional spread of each aligned particle slot (Fig. 7).

    ``aligned_snapshot`` is the symmetry-reduced ensemble snapshot
    ``(n_samples, n_particles, 2)``; the result is the per-slot RMS deviation
    from the slot's mean position.  Tight outer-ring slots have small values,
    the rotationally-free inner ring has large ones.
    """
    aligned = np.asarray(aligned_snapshot, dtype=float)
    if aligned.ndim != 3 or aligned.shape[-1] != 2:
        raise ValueError("aligned_snapshot must have shape (n_samples, n_particles, 2)")
    mean = aligned.mean(axis=0, keepdims=True)
    delta = aligned - mean
    return np.sqrt(np.einsum("mik,mik->mi", delta, delta).mean(axis=0))
