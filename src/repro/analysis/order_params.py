"""Orientational and clustering order parameters (extension / ablation support).

The paper argues qualitatively that single-type F2 collectives form "regular
grids" while multi-type collectives form clusters and layers.  The order
parameters here make those statements quantitative:

* the hexatic bond-orientational order ``ψ6`` distinguishes a hexagonal grid
  from a disordered blob,
* the connected-component cluster count (on the contact graph) counts the
  emergent clusters the discussion in §6.1/§7.2 refers to.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.particles.forces import pairwise_distance_matrix

__all__ = ["hexatic_order", "contact_graph", "cluster_sizes", "n_clusters"]


def hexatic_order(positions: np.ndarray, *, n_neighbors: int = 6) -> float:
    """Global hexatic order parameter ``|⟨ψ6⟩|`` in ``[0, 1]``.

    ``ψ6(i) = (1/N_i) Σ_j exp(6 i θ_ij)`` over the ``n_neighbors`` nearest
    neighbours of particle ``i``; 1 for a perfect triangular lattice, ≈ 0 for
    a random gas.
    """
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    if n <= n_neighbors:
        raise ValueError("need more particles than n_neighbors")
    dist = pairwise_distance_matrix(positions)
    np.fill_diagonal(dist, np.inf)
    neighbor_idx = np.argpartition(dist, kth=n_neighbors - 1, axis=1)[:, :n_neighbors]
    delta = positions[neighbor_idx] - positions[:, None, :]
    angles = np.arctan2(delta[..., 1], delta[..., 0])
    psi6 = np.exp(1j * 6.0 * angles).mean(axis=1)
    return float(np.abs(psi6.mean()))


def contact_graph(
    positions: np.ndarray,
    *,
    contact_scale: float = 1.4,
) -> nx.Graph:
    """Graph connecting particles closer than ``contact_scale`` × median NN distance."""
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n < 2:
        return graph
    dist = pairwise_distance_matrix(positions)
    np.fill_diagonal(dist, np.inf)
    threshold = contact_scale * float(np.median(dist.min(axis=1)))
    i_idx, j_idx = np.nonzero(np.triu(dist <= threshold, k=1))
    graph.add_edges_from(zip(i_idx.tolist(), j_idx.tolist()))
    return graph


def cluster_sizes(positions: np.ndarray, *, contact_scale: float = 1.4) -> list[int]:
    """Sizes of the connected components of the contact graph, descending."""
    graph = contact_graph(positions, contact_scale=contact_scale)
    return sorted((len(c) for c in nx.connected_components(graph)), reverse=True)


def n_clusters(positions: np.ndarray, *, contact_scale: float = 1.4) -> int:
    """Number of connected components of the contact graph."""
    return len(cluster_sizes(positions, contact_scale=contact_scale))
