"""Shape, order and dispersion statistics supporting the qualitative figures."""

from repro.analysis.shape_stats import (
    RingReport,
    detect_concentric_rings,
    nearest_neighbor_distances,
    pair_correlation,
    per_particle_dispersion,
    radial_profile,
    radius_of_gyration,
    type_radial_ordering,
    type_segregation_index,
)
from repro.analysis.order_params import cluster_sizes, contact_graph, hexatic_order, n_clusters
from repro.analysis.information_dynamics import (
    net_information_flow,
    pairwise_lagged_mutual_information,
    pairwise_transfer_entropy,
    particle_series,
)

__all__ = [
    "radius_of_gyration",
    "nearest_neighbor_distances",
    "pair_correlation",
    "radial_profile",
    "detect_concentric_rings",
    "RingReport",
    "type_radial_ordering",
    "type_segregation_index",
    "per_particle_dispersion",
    "hexatic_order",
    "contact_graph",
    "cluster_sizes",
    "n_clusters",
    "particle_series",
    "pairwise_transfer_entropy",
    "pairwise_lagged_mutual_information",
    "net_information_flow",
]
