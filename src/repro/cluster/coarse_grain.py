"""Cluster-mean coarse-graining of particle observers (§5.3.1).

For collectives larger than ~60 particles the paper replaces the ``n``
per-particle observers with ``l · k`` cluster-mean observers: the particles of
each type are clustered with k-means and the cluster means
``Ŵ_1, …, Ŵ_{l·k}`` become the observer variables.  The multi-information of
these derived variables approximates (from below, modulo clustering
artefacts) the multi-information of the full observer set.

The subtlety is correspondence *across samples*: "cluster 2 of type 1" has to
denote comparable parts of the shape in every ensemble sample, otherwise the
estimator sees permutation noise.  Samples are assumed to be symmetry-reduced
(aligned) already; within each type, every sample's cluster centres are then
matched one-to-one to the centres of a reference sample with the assignment
correspondence, exactly as individual particles are matched during the
permutation reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.cluster.kmeans import kmeans
from repro.parallel.rng import as_generator

__all__ = ["CoarseGrainedObservers", "coarse_grain_snapshot", "clusters_per_type"]


def clusters_per_type(n_particles_of_type: int, requested: int) -> int:
    """Clamp the requested cluster count to the number of particles available."""
    if requested <= 0:
        raise ValueError("requested cluster count must be positive")
    return int(min(requested, n_particles_of_type))


@dataclass(frozen=True)
class CoarseGrainedObservers:
    """Cluster-mean observer variables derived from one ensemble snapshot.

    Attributes
    ----------
    means:
        ``(n_samples, n_observers, 2)`` cluster-mean coordinates; the observer
        axis enumerates (type 0 cluster 0, type 0 cluster 1, …, type 1
        cluster 0, …).
    observer_types:
        ``(n_observers,)`` type of each coarse observer.
    n_clusters_per_type:
        How many clusters each type contributed.
    """

    means: np.ndarray
    observer_types: np.ndarray
    n_clusters_per_type: tuple[int, ...]

    @property
    def n_observers(self) -> int:
        return int(self.means.shape[1])

    def as_variable_array(self) -> np.ndarray:
        """The ``(m, n_observers, 2)`` array the estimators consume."""
        return self.means


def _match_to_reference(centers: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Permutation aligning ``centers`` to ``reference`` (minimal squared distance)."""
    delta = centers[:, None, :] - reference[None, :, :]
    cost = np.einsum("ijk,ijk->ij", delta, delta)
    rows, cols = linear_sum_assignment(cost)
    perm = np.empty(centers.shape[0], dtype=int)
    perm[cols] = rows
    return perm


def coarse_grain_snapshot(
    snapshot: np.ndarray,
    types: np.ndarray,
    n_clusters: int,
    *,
    rng: np.random.Generator | int | None = None,
    reference_sample: int = 0,
    n_init: int = 2,
) -> CoarseGrainedObservers:
    """Compute cluster-mean observers for an aligned ensemble snapshot.

    Parameters
    ----------
    snapshot:
        ``(n_samples, n_particles, 2)`` symmetry-reduced configurations.
    types:
        ``(n_particles,)`` type assignment shared by all samples.
    n_clusters:
        Requested clusters per type (clamped to the type's particle count).
    reference_sample:
        Sample whose cluster centres define the canonical observer ordering.
    """
    snapshot = np.asarray(snapshot, dtype=float)
    types = np.asarray(types, dtype=int)
    if snapshot.ndim != 3 or snapshot.shape[-1] != 2:
        raise ValueError("snapshot must have shape (n_samples, n_particles, 2)")
    if types.shape != (snapshot.shape[1],):
        raise ValueError("types must have shape (n_particles,)")
    if not 0 <= reference_sample < snapshot.shape[0]:
        raise ValueError("reference_sample out of range")
    rng = as_generator(rng)

    unique_types = np.unique(types)
    per_type_counts: list[int] = []
    observer_types: list[int] = []
    blocks: list[np.ndarray] = []  # each (n_samples, k_t, 2)

    for type_id in unique_types:
        idx = np.nonzero(types == type_id)[0]
        k_t = clusters_per_type(idx.size, n_clusters)
        per_type_counts.append(k_t)
        observer_types.extend([int(type_id)] * k_t)

        centers_per_sample = np.empty((snapshot.shape[0], k_t, 2))
        for m in range(snapshot.shape[0]):
            result = kmeans(snapshot[m, idx], k_t, rng=rng, n_init=n_init)
            centers_per_sample[m] = result.centers
        reference_centers = centers_per_sample[reference_sample]
        for m in range(snapshot.shape[0]):
            if m == reference_sample:
                continue
            perm = _match_to_reference(centers_per_sample[m], reference_centers)
            centers_per_sample[m] = centers_per_sample[m][perm]
        blocks.append(centers_per_sample)

    means = np.concatenate(blocks, axis=1)
    return CoarseGrainedObservers(
        means=means,
        observer_types=np.asarray(observer_types, dtype=int),
        n_clusters_per_type=tuple(per_type_counts),
    )
