"""k-means clustering (Lloyd's algorithm with k-means++ seeding), from scratch.

The paper reduces the dimensionality of large collectives (> 60 particles)
before estimating multi-information by clustering the particles of each type
with k-means and using the cluster means as coarse observer variables
(§5.3.1).  The implementation here is self-contained (no scikit-learn
offline) and deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.rng import as_generator

__all__ = ["KMeansResult", "kmeans", "kmeans_plus_plus_init"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means fit.

    Attributes
    ----------
    centers:
        ``(k, d)`` cluster centres, ordered canonically (see :func:`kmeans`).
    labels:
        ``(n,)`` index of the centre assigned to each point.
    inertia:
        Summed squared distance of points to their assigned centre.
    n_iterations:
        Lloyd iterations of the best restart.
    converged:
        Whether assignments stopped changing before the iteration cap.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool


def kmeans_plus_plus_init(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-means++ seeding: spread the initial centres proportionally to squared distance."""
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    centers = np.empty((n_clusters, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = np.einsum("ij,ij->i", points - centers[0], points - centers[0])
    for c in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centre; fall back
            # to uniform choice to keep the centre count.
            idx = int(rng.integers(n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centers[c] = points[idx]
        delta = points - centers[c]
        closest_sq = np.minimum(closest_sq, np.einsum("ij,ij->i", delta, delta))
    return centers


def _assign(points: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    delta = points[:, None, :] - centers[None, :, :]
    dist_sq = np.einsum("nkd,nkd->nk", delta, delta)
    labels = dist_sq.argmin(axis=1)
    return labels, dist_sq[np.arange(points.shape[0]), labels]


def _canonical_order(centers: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Order centres lexicographically so the labelling is deterministic.

    Without a canonical order, "cluster 0" would be an arbitrary function of
    the seeding, which would break the cross-sample correspondence of the
    coarse-grained observers.
    """
    order = np.lexsort((centers[:, 1], centers[:, 0]))
    remap = np.empty_like(order)
    remap[order] = np.arange(order.size)
    return centers[order], remap[labels]


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    *,
    rng: np.random.Generator | int | None = None,
    n_init: int = 4,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> KMeansResult:
    """Cluster ``points`` (``(n, d)``) into ``n_clusters`` groups.

    Runs ``n_init`` independent k-means++ restarts and keeps the fit with the
    lowest inertia.  Raises if there are fewer points than clusters.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = points.shape[0]
    if n_clusters <= 0:
        raise ValueError("n_clusters must be positive")
    if n < n_clusters:
        raise ValueError(f"need at least n_clusters={n_clusters} points, got {n}")
    if n_init <= 0:
        raise ValueError("n_init must be positive")
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")
    rng = as_generator(rng)

    best: KMeansResult | None = None
    for _restart in range(n_init):
        centers = kmeans_plus_plus_init(points, n_clusters, rng)
        labels = np.full(n, -1)
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            new_labels, sq_dist = _assign(points, centers)
            new_centers = centers.copy()
            for c in range(n_clusters):
                members = points[new_labels == c]
                if members.shape[0]:
                    new_centers[c] = members.mean(axis=0)
                else:
                    # Re-seed empty clusters at the worst-served point.
                    new_centers[c] = points[sq_dist.argmax()]
            center_shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if np.array_equal(new_labels, labels) and center_shift < tolerance:
                labels = new_labels
                converged = True
                break
            labels = new_labels
        labels, sq_dist = _assign(points, centers)
        inertia = float(sq_dist.sum())
        if best is None or inertia < best.inertia:
            ordered_centers, ordered_labels = _canonical_order(centers, labels)
            best = KMeansResult(
                centers=ordered_centers,
                labels=ordered_labels,
                inertia=inertia,
                n_iterations=iterations,
                converged=converged,
            )
    assert best is not None
    return best
