"""Clustering substrate: k-means and the cluster-mean observer reduction (§5.3.1)."""

from repro.cluster.kmeans import KMeansResult, kmeans, kmeans_plus_plus_init
from repro.cluster.coarse_grain import (
    CoarseGrainedObservers,
    clusters_per_type,
    coarse_grain_snapshot,
)

__all__ = [
    "KMeansResult",
    "kmeans",
    "kmeans_plus_plus_init",
    "CoarseGrainedObservers",
    "coarse_grain_snapshot",
    "clusters_per_type",
]
