"""repro — reproduction of Harder & Polani (2012), "Self-organizing particle systems".

The package implements, from scratch on top of NumPy/SciPy:

* the adhesion-like interacting particle model (Eqs. 6–8) and its ensemble
  simulation (:mod:`repro.particles`),
* the shape-symmetry reduction — translation, rotation and same-type
  permutation removal via a type-aware ICP (:mod:`repro.alignment`),
* the information-theoretic estimators, most importantly the KSG
  multi-information estimator of Eqs. 18–20, plus KDE/binned baselines and
  the coarse-grained decomposition (:mod:`repro.infotheory`),
* the k-means cluster-mean observer reduction for large collectives
  (:mod:`repro.cluster`),
* the measurement pipeline and the registry of every figure experiment
  (:mod:`repro.core`), and
* shape statistics, text visualisation and persistence helpers
  (:mod:`repro.analysis`, :mod:`repro.viz`, :mod:`repro.io`).

Quickstart
----------
>>> from repro import (
...     SimulationConfig, InteractionParams, run_experiment, AnalysisConfig,
... )
>>> params = InteractionParams.clustering(2, self_distance=1.0, cross_distance=2.5)
>>> config = SimulationConfig(type_counts=(10, 10), params=params, force="F1",
...                           n_steps=40, dt=0.02, init_radius=3.0)
>>> result = run_experiment(config, n_samples=32, seed=0)
>>> result.delta_multi_information  # doctest: +SKIP
2.1
"""

from repro.version import __version__

from repro.particles import (
    ChannelDomain,
    Domain,
    EnsembleSimulator,
    EnsembleTrajectory,
    FreeDomain,
    InteractionParams,
    ParticleSystem,
    PeriodicDomain,
    ReflectingDomain,
    SimulationConfig,
    Trajectory,
    get_domain,
    simulate_ensemble,
)
from repro.alignment import TypeAwareICP, align_snapshot, reduce_ensemble
from repro.infotheory import (
    decompose_multi_information,
    kde_multi_information,
    histogram_multi_information,
    ksg_multi_information,
)
from repro.cluster import kmeans, coarse_grain_snapshot
from repro.core import (
    AnalysisConfig,
    ExperimentPlan,
    ExperimentResult,
    ExperimentSpec,
    RunUnit,
    SelfOrganizationAnalysis,
    SelfOrganizationResult,
    all_figure_plans,
    all_figure_specs,
    chain,
    figure_plan,
    grid,
    measure_self_organization,
    run_experiment,
    single,
    zip_,
)
from repro.io import RunStore, open_store

__all__ = [
    "__version__",
    "InteractionParams",
    "SimulationConfig",
    "ChannelDomain",
    "Domain",
    "FreeDomain",
    "PeriodicDomain",
    "ReflectingDomain",
    "get_domain",
    "ParticleSystem",
    "Trajectory",
    "EnsembleTrajectory",
    "EnsembleSimulator",
    "simulate_ensemble",
    "TypeAwareICP",
    "align_snapshot",
    "reduce_ensemble",
    "ksg_multi_information",
    "kde_multi_information",
    "histogram_multi_information",
    "decompose_multi_information",
    "kmeans",
    "coarse_grain_snapshot",
    "AnalysisConfig",
    "SelfOrganizationAnalysis",
    "SelfOrganizationResult",
    "measure_self_organization",
    "ExperimentResult",
    "ExperimentSpec",
    "run_experiment",
    "all_figure_specs",
    "ExperimentPlan",
    "RunUnit",
    "RunStore",
    "open_store",
    "single",
    "chain",
    "grid",
    "zip_",
    "figure_plan",
    "all_figure_plans",
]
