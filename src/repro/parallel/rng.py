"""Reproducible random-number streams.

All stochastic components of the library accept an integer ``seed`` (or an
already-constructed :class:`numpy.random.Generator`).  Ensembles of
simulations need *independent* streams per sample so that results do not
depend on whether samples are run vectorised in one process or scattered
across a pool.  NumPy's :class:`numpy.random.SeedSequence` spawning mechanism
provides exactly that guarantee and is wrapped here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["seed_streams", "spawn_generator", "derive_seed", "as_generator"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_streams(seed: int | None, n_streams: int) -> list[np.random.Generator]:
    """Create ``n_streams`` statistically independent generators.

    The streams are derived from a single :class:`~numpy.random.SeedSequence`
    so the same ``seed`` always produces the same family of streams,
    regardless of how they are later distributed over processes.
    """
    if n_streams < 0:
        raise ValueError(f"n_streams must be non-negative, got {n_streams}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n_streams)]


def spawn_generator(seed: int | None, index: int) -> np.random.Generator:
    """Return the ``index``-th stream of the family defined by ``seed``.

    Equivalent to ``seed_streams(seed, index + 1)[index]`` but only
    materialises the requested stream.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    seq = np.random.SeedSequence(seed)
    child = seq.spawn(index + 1)[index]
    return np.random.default_rng(child)


def derive_seed(seed: int | None, *keys: int | str) -> int:
    """Derive a deterministic child seed from ``seed`` and a key path.

    Useful when a high-level experiment wants reproducible but distinct seeds
    for sub-tasks ("fig9", radius index 3, repeat 7) without manually
    tracking offsets.  String keys are hashed with a stable (non-salted)
    scheme so results are identical across interpreter runs.
    """
    material: list[int] = [0 if seed is None else int(seed) & 0xFFFFFFFF]
    for key in keys:
        if isinstance(key, str):
            acc = 2166136261
            for byte in key.encode("utf8"):
                acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
            material.append(acc)
        else:
            material.append(int(key) & 0xFFFFFFFF)
    seq = np.random.SeedSequence(material)
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def _check_sequence(values: Sequence[int]) -> None:
    for v in values:
        if v < 0:
            raise ValueError("seed material must be non-negative")
