"""Parallel and reproducible-randomness utilities.

The heavy numerical work in :mod:`repro` is vectorised over the ensemble axis
(first optimisation lever, per the scientific-Python guidance: vectorise
before you parallelise).  The helpers in this subpackage cover the second
lever: independent random streams for ensemble members and a chunked
process-pool map for embarrassingly parallel sweeps (parameter scans, repeated
experiments).
"""

from repro.parallel.rng import seed_streams, spawn_generator, derive_seed
from repro.parallel.pool import available_cpu_count, parallel_map, chunk_indices
from repro.parallel.batch import batch_slices, split_batches

__all__ = [
    "seed_streams",
    "spawn_generator",
    "derive_seed",
    "available_cpu_count",
    "parallel_map",
    "chunk_indices",
    "batch_slices",
    "split_batches",
]
