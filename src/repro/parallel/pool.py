"""Chunked process-pool map for embarrassingly parallel sweeps.

The particle ensembles themselves are vectorised with NumPy (see
:mod:`repro.particles.ensemble`); the pool here is for the *outer* loops of
the evaluation harness — independent parameter draws, radius sweeps, repeated
experiments — where each task is seconds of work and the pickling overhead is
negligible.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "parallel_map",
    "parallel_starmap",
    "parallel_starmap_iter",
    "parallel_starmap_unordered",
    "chunk_indices",
    "available_cpu_count",
    "effective_n_jobs",
]

T = TypeVar("T")
R = TypeVar("R")


def available_cpu_count() -> int:
    """CPUs actually available to *this process*, not merely present.

    ``os.cpu_count()`` reports the machine's cores even when a cgroup quota
    or a CPU-affinity mask (containerised CI, ``taskset``, SLURM cpusets)
    grants the process far fewer — sizing a pool from it oversubscribes the
    real allocation.  The scheduler affinity mask reflects those limits, so
    it wins wherever the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platform quirk
            pass
    return os.cpu_count() or 1


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` request against the available CPU count.

    ``None`` or ``1`` → serial execution (1).  ``-1`` → all *available*
    cores (affinity/cgroup aware, see :func:`available_cpu_count`).
    Positive values are clipped to the number of available cores.
    """
    cpus = available_cpu_count()
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return cpus
    if n_jobs <= 0:
        raise ValueError(f"n_jobs must be positive, -1, or None; got {n_jobs}")
    return min(n_jobs, cpus)


def chunk_indices(n_items: int, n_chunks: int) -> list[range]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous ranges.

    Chunks differ in length by at most one element, and empty chunks are
    never returned.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    n_chunks = min(n_chunks, n_items) if n_items > 0 else 0
    ranges: list[range] = []
    start = 0
    for i in range(n_chunks):
        size = n_items // n_chunks + (1 if i < n_items % n_chunks else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    n_jobs: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across a process pool.

    Serial execution (``n_jobs in (None, 1)``) avoids the pool entirely so the
    function also works with non-picklable closures during interactive use and
    inside tests.
    """
    items = list(items)
    jobs = effective_n_jobs(n_jobs)
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(func, items, chunksize=max(1, chunksize)))


def parallel_starmap(
    func: Callable[..., R],
    items: Sequence[tuple] | Iterable[tuple],
    *,
    n_jobs: int | None = None,
) -> list[R]:
    """Map ``func(*item)`` over an iterable of argument tuples, in input order.

    The parallel variant submits every task individually and collects the
    results in submission order, so the output is deterministic regardless of
    worker scheduling — the property the pairwise information-dynamics
    fan-out relies on.  Serial execution (``n_jobs in (None, 1)``) unpacks in
    a plain loop and therefore also works with non-picklable arguments.
    """
    return list(parallel_starmap_iter(func, items, n_jobs=n_jobs))


def parallel_starmap_iter(
    func: Callable[..., R],
    items: Sequence[tuple] | Iterable[tuple],
    *,
    n_jobs: int | None = None,
) -> Iterable[R]:
    """Like :func:`parallel_starmap`, but *yield* results in submission order.

    Results become available to the caller as soon as their (in-order) task
    finishes instead of after the whole batch, while keeping the
    deterministic input ordering; see :func:`parallel_starmap_unordered` for
    the completion-order variant checkpointing workloads want.  Ordering and
    results are identical to :func:`parallel_starmap`.
    """
    items = [tuple(item) for item in items]
    jobs = effective_n_jobs(n_jobs)
    if jobs == 1 or len(items) <= 1:
        for item in items:
            yield func(*item)
        return
    # Manual pool lifecycle: the `with` form's __exit__ calls
    # shutdown(wait=True), which blocks until *running* tasks finish even
    # after pending futures are cancelled — so one failed row would wait out
    # every in-flight row before the exception reaches the caller.
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        futures = [pool.submit(func, *item) for item in items]
        for future in futures:
            yield future.result()
    except BaseException:
        # A task error (or the consumer abandoning the generator) must not
        # wait for the whole queue to drain: drop what hasn't started and
        # propagate immediately.  Already-running tasks cannot be
        # interrupted; they finish in the background while the caller
        # already has the exception.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        pool.shutdown(wait=True)


def parallel_starmap_unordered(
    func: Callable[..., R],
    items: Sequence[tuple] | Iterable[tuple],
    *,
    n_jobs: int | None = None,
) -> Iterable[tuple[int, R]]:
    """Yield ``(index, result)`` pairs as tasks *complete*, in completion order.

    Unlike :func:`parallel_starmap_iter`, a slow early task does not hold
    back the results of later tasks — each pair is surfaced the moment its
    worker finishes, which is what incremental checkpointing needs to lose
    only genuinely in-flight work on interruption.  The index identifies the
    input item, so callers needing deterministic output reassemble by index.
    Serial execution (``n_jobs in (None, 1)``) yields in input order.
    """
    items = [tuple(item) for item in items]
    jobs = effective_n_jobs(n_jobs)
    if jobs == 1 or len(items) <= 1:
        for index, item in enumerate(items):
            yield index, func(*item)
        return
    # Manual pool lifecycle for the same reason as parallel_starmap_iter: the
    # `with` form would block in shutdown(wait=True) on in-flight tasks.
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        future_to_index = {pool.submit(func, *item): index for index, item in enumerate(items)}
        for future in as_completed(future_to_index):
            yield future_to_index[future], future.result()
    except BaseException:
        # Same early-exit discipline as parallel_starmap_iter: an error
        # (e.g. a failed checkpoint write in the consumer) surfaces
        # immediately instead of after every queued and running task has run.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        pool.shutdown(wait=True)
