"""Helpers for splitting large ensembles into memory-bounded batches.

The batched drift evaluation materialises an ``(m, n, n, 2)`` displacement
array per step.  For large ensembles this can exceed memory, so the ensemble
simulator processes samples in batches whose pairwise buffers stay below a
configurable byte budget.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batch_slices", "split_batches", "max_batch_for_budget"]


def max_batch_for_budget(
    n_particles: int,
    *,
    bytes_budget: int = 256 * 1024 * 1024,
    itemsize: int = 8,
    buffers_per_sample: int = 4,
) -> int:
    """Largest number of samples whose pairwise buffers fit the budget.

    The dominant temporary is the displacement tensor ``(batch, n, n, 2)``
    plus a handful of ``(batch, n, n)`` scalars; ``buffers_per_sample``
    approximates that constant factor.  Always returns at least 1 so a single
    sample is never refused.
    """
    if n_particles <= 0:
        raise ValueError("n_particles must be positive")
    per_sample = buffers_per_sample * n_particles * n_particles * 2 * itemsize
    return max(1, int(bytes_budget // max(per_sample, 1)))


def batch_slices(n_items: int, batch_size: int) -> list[slice]:
    """Contiguous slices covering ``range(n_items)`` with the given batch size."""
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return [slice(start, min(start + batch_size, n_items)) for start in range(0, n_items, batch_size)]


def split_batches(array: np.ndarray, batch_size: int, axis: int = 0) -> list[np.ndarray]:
    """Split ``array`` into views of at most ``batch_size`` along ``axis``."""
    n_items = array.shape[axis]
    return [np.take(array, range(sl.start, sl.stop), axis=axis) for sl in batch_slices(n_items, batch_size)]
