"""Terminal-friendly plots (no plotting library is available offline).

The benchmark harness and the examples use these to show the same series the
paper's figures plot: multi-information curves over time, ΔI bar summaries
and particle-configuration scatters.  The functions return plain strings so
they compose with logging and file output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_plot", "scatter_plot", "bar_chart", "series_table", "sparkline"]

_TYPE_GLYPHS = "ox+*#@%&"
_SPARK_GLYPHS = " .:-=+*#%@"


def sparkline(
    values: Sequence[float] | np.ndarray,
    *,
    width: int | None = None,
    glyphs: str = _SPARK_GLYPHS,
) -> str:
    """One-line ASCII sparkline of a series (used by ``repro watch``).

    Values are binned onto the glyph ramp between the series' finite min and
    max; non-finite values render as a space.  When ``width`` is given and
    the series is longer, only the trailing ``width`` values are shown — the
    natural view for a live metric stream.
    """
    if len(glyphs) < 2:
        raise ValueError("glyphs needs at least two levels")
    arr = np.asarray(values, dtype=float).ravel()
    if width is not None:
        if width < 1:
            raise ValueError("width must be >= 1")
        arr = arr[-width:]
    if arr.size == 0:
        return ""
    finite = arr[np.isfinite(arr)]
    low = float(finite.min()) if finite.size else 0.0
    high = float(finite.max()) if finite.size else 1.0
    span = high - low
    chars = []
    for value in arr:
        if not np.isfinite(value):
            chars.append(" ")
            continue
        if span <= 0.0:
            level = 0
        else:
            level = int((value - low) / span * (len(glyphs) - 1))
        chars.append(glyphs[min(level, len(glyphs) - 1)])
    return "".join(chars)


def line_plot(
    series: Mapping[str, Sequence[float] | np.ndarray],
    *,
    x: Sequence[float] | np.ndarray | None = None,
    width: int = 72,
    height: int = 18,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more series as an ASCII line plot.

    Each series gets its own marker character; series are drawn in the order
    given, later ones overwriting earlier ones where they collide.
    """
    if not series:
        raise ValueError("at least one series is required")
    arrays = {name: np.asarray(values, dtype=float) for name, values in series.items()}
    lengths = {arr.size for arr in arrays.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    n_points = lengths.pop()
    if n_points == 0:
        raise ValueError("series must be non-empty")
    if x is None:
        x_values = np.arange(n_points, dtype=float)
    else:
        x_values = np.asarray(x, dtype=float)
        if x_values.size != n_points:
            raise ValueError("x must have the same length as the series")

    all_y = np.concatenate(list(arrays.values()))
    finite = all_y[np.isfinite(all_y)]
    y_min = float(finite.min()) if finite.size else 0.0
    y_max = float(finite.max()) if finite.size else 1.0
    if np.isclose(y_min, y_max):
        y_max = y_min + 1.0
    x_min, x_max = float(x_values.min()), float(x_values.max())
    if np.isclose(x_min, x_max):
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for index, (name, values) in enumerate(arrays.items()):
        marker = _TYPE_GLYPHS[index % len(_TYPE_GLYPHS)]
        markers[name] = marker
        for xv, yv in zip(x_values, values):
            if not np.isfinite(yv):
                continue
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:10.3f} |"
    bottom_label = f"{y_min:10.3f} |"
    pad = " " * 11 + "|"
    for row_index, row in enumerate(grid):
        prefix = top_label if row_index == 0 else (bottom_label if row_index == height - 1 else pad)
        lines.append(prefix + "".join(row))
    lines.append(" " * 12 + "-" * width)
    lines.append(" " * 12 + f"{x_min:<12.3f}{'':^{max(width - 24, 0)}}{x_max:>12.3f}")
    legend = "  ".join(f"{marker}={name}" for name, marker in markers.items())
    lines.append(f"legend: {legend}")
    if y_label:
        lines.append(f"y: {y_label}")
    return "\n".join(lines)


def scatter_plot(
    positions: np.ndarray,
    types: np.ndarray | None = None,
    *,
    width: int = 60,
    height: int = 26,
    title: str = "",
) -> str:
    """Render a particle configuration as an ASCII scatter (one glyph per type)."""
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must have shape (n, 2)")
    n = positions.shape[0]
    if types is None:
        types = np.zeros(n, dtype=int)
    types = np.asarray(types, dtype=int)
    if types.shape != (n,):
        raise ValueError("types must have shape (n,)")

    mins = positions.min(axis=0)
    maxs = positions.max(axis=0)
    span = np.where(np.isclose(maxs - mins, 0.0), 1.0, maxs - mins)
    grid = [[" "] * width for _ in range(height)]
    for point, type_id in zip(positions, types):
        col = int(round((point[0] - mins[0]) / span[0] * (width - 1)))
        row = int(round((point[1] - mins[1]) / span[1] * (height - 1)))
        grid[height - 1 - row][col] = _TYPE_GLYPHS[type_id % len(_TYPE_GLYPHS)]
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal ASCII bar chart (used for ΔI summaries like Fig. 8)."""
    if not values:
        raise ValueError("values must be non-empty")
    numeric = {name: float(v) for name, v in values.items()}
    max_abs = max(abs(v) for v in numeric.values()) or 1.0
    label_width = max(len(name) for name in numeric)
    lines = [title] if title else []
    for name, value in numeric.items():
        bar_len = int(round(abs(value) / max_abs * width))
        bar = "#" * bar_len
        lines.append(f"{name:>{label_width}} | {bar} {value:.3f}")
    return "\n".join(lines)


def series_table(
    columns: Mapping[str, Sequence[float] | np.ndarray],
    *,
    float_format: str = "{:.4f}",
    max_rows: int | None = None,
) -> str:
    """Fixed-width text table of aligned series (what the figures tabulate)."""
    if not columns:
        raise ValueError("columns must be non-empty")
    arrays = {name: np.asarray(values) for name, values in columns.items()}
    lengths = {arr.shape[0] for arr in arrays.values()}
    if len(lengths) != 1:
        raise ValueError("all columns must have the same length")
    n_rows = lengths.pop()
    if max_rows is not None and n_rows > max_rows:
        idx = np.linspace(0, n_rows - 1, max_rows).astype(int)
    else:
        idx = np.arange(n_rows)

    headers = list(arrays)
    col_width = max(12, max(len(h) for h in headers) + 2)
    lines = ["".join(f"{h:>{col_width}}" for h in headers)]
    lines.append("-" * (col_width * len(headers)))
    for i in idx:
        cells = []
        for name in headers:
            value = arrays[name][i]
            if isinstance(value, (float, np.floating)):
                cells.append(f"{float_format.format(float(value)):>{col_width}}")
            else:
                cells.append(f"{str(value):>{col_width}}")
        lines.append("".join(cells))
    return "\n".join(lines)
