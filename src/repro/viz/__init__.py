"""Text-based visualisation and series export (no plotting backend required)."""

from repro.viz.ascii_plots import bar_chart, line_plot, scatter_plot, series_table, sparkline
from repro.viz.export import load_series_csv, save_json, save_series_csv

__all__ = [
    "line_plot",
    "scatter_plot",
    "bar_chart",
    "series_table",
    "sparkline",
    "save_series_csv",
    "load_series_csv",
    "save_json",
]
