"""Export of figure series to CSV / JSON.

Every benchmark writes the series it prints to ``benchmarks/output/`` so the
numbers behind a figure can be re-plotted with any external tool.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["save_series_csv", "save_json", "load_series_csv"]


def _to_builtin(value: Any) -> Any:
    """Convert NumPy scalars/arrays to plain Python for JSON serialisation."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {key: _to_builtin(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_builtin(v) for v in value]
    return value


def save_series_csv(path: str | Path, columns: Mapping[str, Sequence[float] | np.ndarray]) -> Path:
    """Write aligned columns to a CSV file; returns the path written."""
    if not columns:
        raise ValueError("columns must be non-empty")
    arrays = {name: np.asarray(values) for name, values in columns.items()}
    lengths = {arr.shape[0] for arr in arrays.values()}
    if len(lengths) != 1:
        raise ValueError("all columns must have the same length")
    n_rows = lengths.pop()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(arrays))
        for i in range(n_rows):
            writer.writerow([arrays[name][i] for name in arrays])
    return path


def load_series_csv(path: str | Path) -> dict[str, np.ndarray]:
    """Read a CSV written by :func:`save_series_csv` back into float arrays."""
    path = Path(path)
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [row for row in reader if row]
    columns = {name: [] for name in header}
    for row in rows:
        for name, cell in zip(header, row):
            columns[name].append(float(cell))
    return {name: np.asarray(values) for name, values in columns.items()}


def save_json(path: str | Path, payload: Any) -> Path:
    """Write a JSON document (NumPy types converted); returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_to_builtin(payload), indent=2, sort_keys=True))
    return path
