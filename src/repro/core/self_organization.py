"""Measuring self-organization of particle ensembles.

Self-organization is defined (§3.1) as an increase over time of the
multi-information between observer variables.  The full measurement pipeline
for one experiment is:

1. simulate an ensemble of ``m`` independent runs
   (:class:`repro.particles.ensemble.EnsembleSimulator`),
2. at each analysed time step, factor out translations, rotations and
   same-type permutations (:func:`repro.alignment.symmetry.align_snapshot`),
3. extract observer variables — per-particle positions, or k-means cluster
   means for large collectives (:func:`repro.core.observers.build_observers`),
4. estimate the multi-information with the KSG estimator
   (:func:`repro.infotheory.ksg.ksg_multi_information`), and optionally the
   joint/marginal entropies and the per-type decomposition.

:class:`SelfOrganizationAnalysis` performs steps 2–4 on an existing ensemble;
:func:`measure_self_organization` is the one-call convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.alignment.icp import TypeAwareICP
from repro.alignment.symmetry import align_snapshot
from repro.core.observers import ObserverMode, ObserverSet, build_observers
from repro.infotheory.decomposition import DecompositionResult, decompose_multi_information
from repro.infotheory.knn import kozachenko_leonenko_entropy
from repro.infotheory.ksg import ksg_multi_information
from repro.parallel.rng import spawn_generator
from repro.particles.trajectory import EnsembleTrajectory

__all__ = [
    "AnalysisConfig",
    "SelfOrganizationResult",
    "SelfOrganizationAnalysis",
    "measure_self_organization",
]


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration of the measurement pipeline (independent of the dynamics).

    Parameters
    ----------
    k_neighbors:
        Neighbour order of the KSG estimator (paper: 5 in methods, 4 in the
        experiment section).
    estimator_variant:
        ``"ksg2"`` (default, the calibrated KSG algorithm 2), ``"ksg1"``, or
        ``"paper"`` (the literal Eq. 18/20 transcription, which carries a
        positive offset); see :mod:`repro.infotheory.ksg`.
    observer_mode:
        Per-particle observers, cluster-mean observers, or automatic choice
        based on collective size.
    n_clusters:
        Clusters per type in the cluster-mean mode.
    step_stride:
        Analyse every ``step_stride``-th recorded frame (the first and last
        frames are always included).  Alignment + estimation dominate the
        cost, so this is the main runtime lever.
    reference_strategy:
        Reference-sample choice for the per-step alignment ("medoid"/"first").
    compute_entropies:
        Also estimate the joint entropy and the sum of marginal entropies
        (Kozachenko–Leonenko), used for the entropy-evolution discussion.
    compute_decomposition:
        Also compute the per-type decomposition (Fig. 11) at every analysed
        step.  Ignored when the collective has a single type.
    icp_max_iterations / icp_tolerance:
        Parameters of the type-aware ICP registration.
    seed:
        Seed for the (small) stochastic parts of the analysis, i.e. k-means
        restarts in the cluster-mean mode.
    estimator_backend:
        ``"dense"`` (default), ``"kdtree"`` or ``"auto"`` — the estimator
        backend forwarded to every KSG / entropy call (see
        :mod:`repro.infotheory.ksg`).  The default stays dense so existing
        stored results keep their exact values; non-default backends change
        values within the backends' float-tolerance contract and therefore
        *do* enter the run-unit content hash.
    workers:
        Thread count for the tree backend's cKDTree queries (scipy
        semantics: ``-1`` = all cores).  Pure throughput knob — it never
        changes any result and is excluded from the content hash.
    """

    k_neighbors: int = 4
    estimator_variant: str = "ksg2"
    observer_mode: ObserverMode | str = ObserverMode.AUTO
    n_clusters: int = 4
    step_stride: int = 1
    reference_strategy: str = "medoid"
    compute_entropies: bool = False
    compute_decomposition: bool = False
    icp_max_iterations: int = 30
    icp_tolerance: float = 1e-5
    seed: int = 0
    estimator_backend: str = "dense"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        if self.step_stride < 1:
            raise ValueError("step_stride must be >= 1")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if self.estimator_backend not in ("dense", "kdtree", "auto"):
            raise ValueError(
                f"estimator_backend must be 'dense', 'kdtree' or 'auto', "
                f"got {self.estimator_backend!r}"
            )
        if self.workers == 0 or self.workers < -1:
            raise ValueError(f"workers must be a positive int or -1 (all cores), got {self.workers}")
        object.__setattr__(self, "observer_mode", ObserverMode(self.observer_mode))

    def icp(self) -> TypeAwareICP:
        """Construct the ICP engine described by this config."""
        return TypeAwareICP(max_iterations=self.icp_max_iterations, tolerance=self.icp_tolerance)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (used by the run-unit content hash).

        The two post-PR-4 fields are omitted at their defaults so every
        pre-existing document (and its content hash) round-trips byte-for-byte:
        ``estimator_backend`` only appears when it can change values, and
        ``workers`` — serialised for config fidelity — is additionally
        stripped by the content hash itself (cosmetic field).
        """
        data: dict[str, Any] = {
            "k_neighbors": self.k_neighbors,
            "estimator_variant": self.estimator_variant,
            "observer_mode": ObserverMode(self.observer_mode).value,
            "n_clusters": self.n_clusters,
            "step_stride": self.step_stride,
            "reference_strategy": self.reference_strategy,
            "compute_entropies": self.compute_entropies,
            "compute_decomposition": self.compute_decomposition,
            "icp_max_iterations": self.icp_max_iterations,
            "icp_tolerance": self.icp_tolerance,
            "seed": self.seed,
        }
        if self.estimator_backend != "dense":
            data["estimator_backend"] = self.estimator_backend
        if self.workers != 1:
            data["workers"] = self.workers
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AnalysisConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**dict(data))


@dataclass
class SelfOrganizationResult:
    """Time series produced by the measurement pipeline.

    All information quantities are in bits.  ``steps`` holds the indices of
    the analysed frames (0 = initial state); companion arrays are aligned
    with it.
    """

    steps: np.ndarray
    times: np.ndarray
    multi_information: np.ndarray
    marginal_entropy_sum: np.ndarray | None = None
    joint_entropy: np.ndarray | None = None
    decompositions: list[DecompositionResult] | None = None
    alignment_rmse: np.ndarray | None = None
    observer_mode: str = ObserverMode.PARTICLES.value
    n_observers: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def initial_multi_information(self) -> float:
        """Estimate at the initial (random disc) state."""
        return float(self.multi_information[0])

    @property
    def final_multi_information(self) -> float:
        """Estimate at the last analysed step."""
        return float(self.multi_information[-1])

    @property
    def delta_multi_information(self) -> float:
        """Increase of multi-information over the run (the paper's ΔI, Fig. 8)."""
        return self.final_multi_information - self.initial_multi_information

    def is_self_organizing(self, threshold: float = 0.0) -> bool:
        """Whether the multi-information increased by more than ``threshold`` bits."""
        return self.delta_multi_information > threshold

    def decomposition_series(self) -> dict[str, np.ndarray]:
        """Per-term decomposition time series (raw bits), keyed like Fig. 11's legend."""
        if not self.decompositions:
            raise ValueError("decomposition was not computed; set compute_decomposition=True")
        n_groups = len(self.decompositions[0].within_groups)
        series: dict[str, list[float]] = {"between": []}
        for j in range(n_groups):
            series[f"within_{j}"] = []
        for dec in self.decompositions:
            series["between"].append(dec.between_groups)
            for j in range(n_groups):
                series[f"within_{j}"].append(dec.within_groups[j])
        return {key: np.asarray(vals) for key, vals in series.items()}

    def normalized_decomposition_series(self) -> dict[str, np.ndarray]:
        """Decomposition terms normalised by the total at each step (Fig. 11)."""
        if not self.decompositions:
            raise ValueError("decomposition was not computed; set compute_decomposition=True")
        keys = list(self.decompositions[0].normalized_contributions().keys())
        out: dict[str, list[float]] = {key: [] for key in keys}
        for dec in self.decompositions:
            contributions = dec.normalized_contributions()
            for key in keys:
                out[key].append(contributions[key])
        return {key: np.asarray(vals) for key, vals in out.items()}

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary (series included, decompositions flattened)."""
        payload: dict[str, Any] = {
            "steps": self.steps.tolist(),
            "times": self.times.tolist(),
            "multi_information": self.multi_information.tolist(),
            "observer_mode": self.observer_mode,
            "n_observers": self.n_observers,
            "delta_multi_information": self.delta_multi_information,
            "metadata": dict(self.metadata),
        }
        if self.marginal_entropy_sum is not None:
            payload["marginal_entropy_sum"] = self.marginal_entropy_sum.tolist()
        if self.joint_entropy is not None:
            payload["joint_entropy"] = self.joint_entropy.tolist()
        if self.alignment_rmse is not None:
            payload["alignment_rmse"] = self.alignment_rmse.tolist()
        if self.decompositions:
            payload["decomposition"] = {
                key: values.tolist() for key, values in self.decomposition_series().items()
            }
            # Full per-step decomposition objects, so save -> load round-trips
            # losslessly (the flattened "decomposition" series above is kept
            # for plotting consumers).
            payload["decompositions"] = [dec.to_dict() for dec in self.decompositions]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SelfOrganizationResult":
        """Inverse of :meth:`to_dict`: restore every series, including decompositions."""
        from repro.infotheory.decomposition import DecompositionResult

        def optional(name: str) -> np.ndarray | None:
            return np.asarray(payload[name], dtype=float) if name in payload else None

        decompositions = None
        if payload.get("decompositions"):
            decompositions = [DecompositionResult.from_dict(d) for d in payload["decompositions"]]
        return cls(
            steps=np.asarray(payload["steps"], dtype=int),
            times=np.asarray(payload["times"], dtype=float),
            multi_information=np.asarray(payload["multi_information"], dtype=float),
            marginal_entropy_sum=optional("marginal_entropy_sum"),
            joint_entropy=optional("joint_entropy"),
            decompositions=decompositions,
            alignment_rmse=optional("alignment_rmse"),
            observer_mode=payload.get("observer_mode", ObserverMode.PARTICLES.value),
            n_observers=int(payload.get("n_observers", 0)),
            metadata=dict(payload.get("metadata", {})),
        )


class SelfOrganizationAnalysis:
    """Applies the alignment + estimation pipeline to ensemble trajectories."""

    def __init__(self, config: AnalysisConfig | None = None) -> None:
        self.config = config or AnalysisConfig()

    def analysis_steps(self, n_steps: int) -> np.ndarray:
        """Frame indices that will be analysed for a trajectory with ``n_steps`` frames."""
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        stride = self.config.step_stride
        steps = list(range(0, n_steps, stride))
        if steps[-1] != n_steps - 1:
            steps.append(n_steps - 1)
        return np.asarray(steps, dtype=int)

    def observers_at_step(
        self, ensemble: EnsembleTrajectory, step: int, *, domain=None
    ) -> tuple[ObserverSet, np.ndarray]:
        """Symmetry-reduce one frame and build its observers.

        Returns the observer set and the per-sample alignment residuals.
        When ``domain`` names a bounded domain with periodic axes, the
        reduction uses the torus-aware aligner instead of free-space ICP.
        """
        config = self.config
        alignment = align_snapshot(
            ensemble.snapshot(step),
            ensemble.types,
            icp=config.icp(),
            reference_strategy=config.reference_strategy,
            domain=domain,
        )
        observers = build_observers(
            alignment.reduced,
            ensemble.types,
            mode=config.observer_mode,
            n_clusters=config.n_clusters,
            rng=spawn_generator(config.seed, step),
        )
        return observers, alignment.rmse

    def analyze(self, ensemble: EnsembleTrajectory, *, domain=None) -> SelfOrganizationResult:
        """Run the measurement pipeline over an ensemble trajectory.

        ``domain`` (a :class:`~repro.particles.domain.Domain` or spec string)
        selects the symmetry group for the reduction step: wrapped domains
        align under translations mod L and per-axis flips rather than the
        free-plane ``ISO+(2)``.
        """
        config = self.config
        steps = self.analysis_steps(ensemble.n_steps)
        n_analysis = steps.size

        multi_information = np.empty(n_analysis)
        marginal_entropy = np.full(n_analysis, np.nan) if config.compute_entropies else None
        joint_entropy = np.full(n_analysis, np.nan) if config.compute_entropies else None
        rmse = np.empty(n_analysis)
        decompositions: list[DecompositionResult] | None = (
            [] if config.compute_decomposition and ensemble.n_types > 1 else None
        )
        observer_mode = ObserverMode.PARTICLES
        n_observers = 0

        for index, step in enumerate(steps):
            observers, step_rmse = self.observers_at_step(ensemble, int(step), domain=domain)
            observer_mode = observers.mode
            n_observers = observers.n_observers
            rmse[index] = float(step_rmse.mean())
            values = observers.values

            multi_information[index] = ksg_multi_information(
                values,
                k=config.k_neighbors,
                variant=config.estimator_variant,
                backend=config.estimator_backend,
                workers=config.workers,
            )
            if config.compute_entropies:
                joint = values.reshape(values.shape[0], -1)
                joint_entropy[index] = kozachenko_leonenko_entropy(
                    joint,
                    k=config.k_neighbors,
                    backend=config.estimator_backend,
                    workers=config.workers,
                )
                marginal_entropy[index] = float(
                    sum(
                        kozachenko_leonenko_entropy(
                            values[:, i, :],
                            k=config.k_neighbors,
                            backend=config.estimator_backend,
                            workers=config.workers,
                        )
                        for i in range(values.shape[1])
                    )
                )
            if decompositions is not None:
                decompositions.append(
                    decompose_multi_information(
                        values,
                        observers.type_groups(),
                        estimator=lambda vs: ksg_multi_information(
                            vs,
                            k=config.k_neighbors,
                            variant=config.estimator_variant,
                            backend=config.estimator_backend,
                            workers=config.workers,
                        ),
                    )
                )

        return SelfOrganizationResult(
            steps=steps,
            times=steps * ensemble.dt,
            multi_information=multi_information,
            marginal_entropy_sum=marginal_entropy,
            joint_entropy=joint_entropy,
            decompositions=decompositions,
            alignment_rmse=rmse,
            observer_mode=observer_mode.value,
            n_observers=n_observers,
            metadata={
                "n_samples": ensemble.n_samples,
                "n_particles": ensemble.n_particles,
                "n_types": ensemble.n_types,
                "k_neighbors": config.k_neighbors,
                "estimator_variant": config.estimator_variant,
            },
        )


def measure_self_organization(
    ensemble: EnsembleTrajectory,
    *,
    config: AnalysisConfig | None = None,
    domain=None,
    **config_overrides: Any,
) -> SelfOrganizationResult:
    """Convenience wrapper: analyse an ensemble with (optionally tweaked) defaults."""
    if config is None:
        config = AnalysisConfig(**config_overrides)
    elif config_overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")
    return SelfOrganizationAnalysis(config).analyze(ensemble, domain=domain)
