"""Canonical experiment definitions for every figure of the paper.

Each ``figNN_*`` function returns an :class:`ExperimentSpec` (or a list of
them, for the parameter sweeps) holding the simulation configuration, the
ensemble size and the measurement configuration of that figure.  The
benchmark harness (`benchmarks/`) and the examples consume these specs, so
the mapping "figure → parameters → code" lives in exactly one place.

Two scales are provided:

* ``full=False`` (default) — laptop-scale: smaller ensembles and fewer time
  steps, preserving the qualitative shape of every curve.  This is what the
  test-suite and the default benchmark run use.
* ``full=True`` — the paper's scale (m = 500–1000 samples, t_max = 250),
  reachable by passing ``full=True`` or setting the environment variable
  ``REPRO_FULL=1``.

Parameter notes
---------------
The paper specifies preferred-distance matrices ``r_αβ`` for both force
scalings.  For ``F1`` the matrix enters the force directly (Eq. 7).  For
``F2`` (Eq. 8) with the paper's ``σ = 1`` the force has no explicit ``r``;
the repulsion *range* is set by ``τ``.  We map a preferred distance ``r`` to
``τ = r²`` so that the repulsion decays on the length scale ``r`` (the
Gaussian ``e^{-x²/(2τ)}`` has standard width ``√τ = r``).  This substitution
is recorded in DESIGN.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np

from repro.core.plan import ExperimentPlan, chain, grid, single
from repro.core.self_organization import AnalysisConfig
from repro.parallel.rng import as_generator, derive_seed, spawn_generator
from repro.particles.model import SimulationConfig
from repro.particles.types import InteractionParams, random_symmetric_matrix

__all__ = [
    "ExperimentSpec",
    "ExperimentScale",
    "default_scale",
    "params_from_preferred_distances",
    "random_preferred_distance_params",
    "fig2_force_curves",
    "fig3_equilibria",
    "fig4_multi_information",
    "fig5_single_type_f1",
    "fig6_shape_variety",
    "fig7_ring_alignment",
    "fig8_type_sweep",
    "fig9_radius_sweep",
    "fig10_types_and_radius",
    "fig11_decomposition",
    "fig12_emergent_structures",
    "all_figure_specs",
    "fig3_equilibria_plan",
    "fig4_multi_information_plan",
    "fig5_single_type_f1_plan",
    "fig6_shape_variety_plan",
    "fig7_ring_alignment_plan",
    "fig8_type_sweep_plan",
    "fig9_radius_sweep_plan",
    "fig10_types_and_radius_plan",
    "fig11_decomposition_plan",
    "fig12_emergent_structures_plan",
    "figure_plan",
    "all_figure_plans",
]


# --------------------------------------------------------------------------- #
# scale handling
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime without changing the physics."""

    n_samples: int
    n_steps: int
    step_stride: int
    sweep_repeats: int

    @classmethod
    def reduced(cls) -> "ExperimentScale":
        """Laptop-scale defaults used by tests and the default benchmark run."""
        return cls(n_samples=64, n_steps=60, step_stride=10, sweep_repeats=3)

    @classmethod
    def full(cls) -> "ExperimentScale":
        """The paper's scale (§6): m = 500, t_max = 250, 10 repeats per sweep point."""
        return cls(n_samples=500, n_steps=250, step_stride=5, sweep_repeats=10)


def default_scale(full: bool | None = None) -> ExperimentScale:
    """Resolve the requested scale (explicit flag beats the ``REPRO_FULL`` env var)."""
    if full is None:
        full = os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")
    return ExperimentScale.full() if full else ExperimentScale.reduced()


@dataclass(frozen=True)
class ExperimentSpec:
    """A fully specified experiment: simulate ``n_samples`` runs and measure them."""

    name: str
    description: str
    simulation: SimulationConfig
    n_samples: int
    analysis: AnalysisConfig
    seed: int = 0
    expectation: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)

    def with_updates(self, **changes) -> "ExperimentSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


# --------------------------------------------------------------------------- #
# parameter construction helpers
# --------------------------------------------------------------------------- #
def params_from_preferred_distances(
    r: np.ndarray | list[list[float]],
    *,
    force: str,
    k: np.ndarray | float = 1.0,
    tau_floor: float = 1.0,
) -> InteractionParams:
    """Build interaction matrices from a preferred-distance matrix.

    For ``F1`` the matrix is used as ``r_αβ`` directly.  For ``F2`` the
    repulsion width is set to ``τ = max(r², tau_floor)`` (σ stays at 1, as in
    the paper), so the repulsion acts on the length scale ``r``.
    """
    r = np.atleast_2d(np.asarray(r, dtype=float))
    l = r.shape[0]
    if np.isscalar(k):
        k_matrix = np.full((l, l), float(k))
    else:
        k_matrix = np.atleast_2d(np.asarray(k, dtype=float))
    force = force.upper()
    if force == "F1":
        tau = np.full((l, l), 2.0)
        return InteractionParams(k=k_matrix, r=r, sigma=np.ones((l, l)), tau=tau)
    if force == "F2":
        tau = np.maximum(r * r, tau_floor)
        return InteractionParams(k=k_matrix, r=r, sigma=np.ones((l, l)), tau=tau)
    raise ValueError(f"unknown force scaling {force!r}")


def random_preferred_distance_params(
    n_types: int,
    *,
    force: str,
    r_range: tuple[float, float],
    k_value: float | None = None,
    k_range: tuple[float, float] = (1.0, 10.0),
    rng: np.random.Generator | int | None = None,
) -> InteractionParams:
    """Random symmetric preferred-distance matrix mapped to interaction parameters."""
    rng = as_generator(rng)
    r = random_symmetric_matrix(n_types, *r_range, rng)
    if k_value is None:
        k = random_symmetric_matrix(n_types, *k_range, rng)
    else:
        k = float(k_value)
    return params_from_preferred_distances(r, force=force, k=k)


# --------------------------------------------------------------------------- #
# Fig. 2 — force-scaling curves (no simulation involved)
# --------------------------------------------------------------------------- #
def fig2_force_curves(
    *,
    k: float = 1.0,
    r: float = 2.0,
    sigma: float = 2.0,
    tau: float = 1.0,
    cutoff: float = 6.0,
    n_points: int = 200,
) -> dict[str, np.ndarray]:
    """Distance grid and both force-scaling curves, as plotted in Fig. 2.

    The defaults pick a parameter set for which both curves show the
    repulsion-then-attraction shape of the figure (``F2`` needs ``σ > τ`` for
    a sign change; the experiments elsewhere keep the paper's ``σ = 1``).
    """
    from repro.particles.forces import FORCE_SCALINGS

    x = np.linspace(1e-3, cutoff, n_points)
    f1 = FORCE_SCALINGS["F1"](x, k, r, sigma, tau)
    f2 = FORCE_SCALINGS["F2"](x, k, r, sigma, tau)
    return {"distance": x, "F1": np.asarray(f1), "F2": np.asarray(f2), "r": np.asarray([r])}


# --------------------------------------------------------------------------- #
# Fig. 3 — equilibrium states for 1–3 types
# --------------------------------------------------------------------------- #
def fig3_equilibria(n_types: int, *, full: bool | None = None, seed: int = 3) -> ExperimentSpec:
    """Equilibrium shapes of small collectives with 1, 2 or 3 types (Fig. 3)."""
    if not 1 <= n_types <= 3:
        raise ValueError("Fig. 3 shows collectives with 1 to 3 types")
    scale = default_scale(full)
    if n_types == 1:
        params = params_from_preferred_distances([[1.5]], force="F2", k=3.0)
        counts = (40,)
    elif n_types == 2:
        r = [[1.2, 2.5], [2.5, 1.2]]
        params = params_from_preferred_distances(r, force="F2", k=3.0)
        counts = (20, 20)
    else:
        r = [[1.2, 2.5, 3.0], [2.5, 1.2, 2.0], [3.0, 2.0, 1.2]]
        params = params_from_preferred_distances(r, force="F2", k=3.0)
        counts = (14, 13, 13)
    simulation = SimulationConfig(
        type_counts=counts,
        params=params,
        force="F2",
        cutoff=None,
        dt=0.02,
        substeps=5,
        n_steps=scale.n_steps,
        init_radius=4.0,
    )
    return ExperimentSpec(
        name=f"fig3_l{n_types}",
        description=f"Fig. 3 equilibrium state, {n_types} type(s), F2",
        simulation=simulation,
        n_samples=max(8, scale.n_samples // 8),
        analysis=AnalysisConfig(step_stride=scale.step_stride),
        seed=derive_seed(seed, "fig3", n_types),
        expectation="single-type collectives settle into a regular disc-shaped grid",
        tags=("fig3", "equilibrium"),
    )


# --------------------------------------------------------------------------- #
# Fig. 4 / Fig. 6 — three-type collective, multi-information over time
# --------------------------------------------------------------------------- #
_FIG4_R = np.array(
    [
        [2.5, 5.0, 4.0],
        [5.0, 2.5, 2.0],
        [4.0, 2.0, 3.5],
    ]
)


def fig4_multi_information(*, full: bool | None = None, seed: int = 4) -> ExperimentSpec:
    """Fig. 4: n = 50, l = 3, r_c = 5.0 and the explicit r_αβ matrix of the caption."""
    scale = default_scale(full)
    params = params_from_preferred_distances(_FIG4_R, force="F1", k=1.0)
    simulation = SimulationConfig(
        type_counts=(17, 17, 16),
        params=params,
        force="F1",
        cutoff=5.0,
        dt=0.02,
        substeps=5,
        n_steps=scale.n_steps,
        init_radius=3.0,
    )
    full_scale = scale.n_samples >= 300
    return ExperimentSpec(
        name="fig4_multi_information",
        description="Fig. 4: multi-information vs time for a 50-particle, 3-type collective",
        simulation=simulation,
        n_samples=scale.n_samples,
        analysis=AnalysisConfig(
            step_stride=scale.step_stride,
            compute_entropies=True,
            k_neighbors=4,
            # The per-particle estimate for n = 50 needs the paper's 500-sample
            # ensembles; at reduced scale the cluster-mean observers (§5.3.1)
            # keep the estimate well-conditioned.
            observer_mode="particles" if full_scale else "clusters",
        ),
        seed=derive_seed(seed, "fig4"),
        expectation="multi-information increases markedly over the run",
        tags=("fig4", "fig6", "timeseries"),
    )


def fig6_shape_variety(*, full: bool | None = None, seed: int = 4) -> ExperimentSpec:
    """Fig. 6 uses the same experiment as Fig. 4; final shapes fall into a few categories."""
    spec = fig4_multi_information(full=full, seed=seed)
    return spec.with_updates(
        name="fig6_shape_variety",
        description="Fig. 6: variety of final shapes of the Fig. 4 experiment",
        expectation="final configurations cluster into a small number of shape categories",
        tags=("fig6", "shapes"),
    )


# --------------------------------------------------------------------------- #
# Fig. 5 / Fig. 7 — single type, F1, concentric rings
# --------------------------------------------------------------------------- #
def fig5_single_type_f1(*, full: bool | None = None, seed: int = 5) -> ExperimentSpec:
    """Fig. 5: 20 particles of a single type under F1 with r_c > 2 r_αα."""
    scale = default_scale(full)
    r_self = 2.5
    params = params_from_preferred_distances([[r_self]], force="F1", k=1.0)
    simulation = SimulationConfig(
        type_counts=(20,),
        params=params,
        force="F1",
        cutoff=None,  # unconstrained interactions satisfy r_c > 2 r_αα trivially
        dt=0.02,
        substeps=5,
        n_steps=scale.n_steps,
        init_radius=3.0,
    )
    return ExperimentSpec(
        name="fig5_single_type_f1",
        description="Fig. 5: single-type F1 collective forming two concentric polygons",
        simulation=simulation,
        n_samples=max(scale.n_samples, 100),
        analysis=AnalysisConfig(step_stride=scale.step_stride, k_neighbors=4),
        seed=derive_seed(seed, "fig5"),
        expectation="clearly positive self-organization despite a single type",
        tags=("fig5", "fig7", "single-type"),
    )


def fig7_ring_alignment(*, full: bool | None = None, seed: int = 5) -> ExperimentSpec:
    """Fig. 7 overlays the aligned samples of the Fig. 5 experiment at the final step."""
    spec = fig5_single_type_f1(full=full, seed=seed)
    return spec.with_updates(
        name="fig7_ring_alignment",
        description="Fig. 7: per-particle dispersion of aligned samples (outer ring tight, inner loose)",
        expectation="outer-ring particles align tightly across samples; inner-ring particles do not",
        tags=("fig7", "alignment"),
    )


# --------------------------------------------------------------------------- #
# Fig. 8 — ΔI vs number of types (F2, random matrices)
# --------------------------------------------------------------------------- #
def fig8_type_sweep(
    *,
    full: bool | None = None,
    n_types_values: Iterable[int] = range(1, 11),
    n_particles: int = 20,
    seed: int = 8,
) -> list[ExperimentSpec]:
    """Fig. 8: increase of multi-information between t=0 and t_max vs number of types.

    Each sweep point is repeated with several random preferred-distance
    matrices (r_αβ ∈ [1, 5], as in the caption) and the benchmark averages
    the ΔI values.
    """
    scale = default_scale(full)
    specs: list[ExperimentSpec] = []
    for n_types in n_types_values:
        counts = _spread_counts(n_particles, n_types)
        for repeat in range(scale.sweep_repeats):
            rng = spawn_generator(derive_seed(seed, "fig8", n_types, repeat), 0)
            params = random_preferred_distance_params(
                n_types, force="F2", r_range=(1.0, 5.0), k_value=5.0, rng=rng
            )
            simulation = SimulationConfig(
                type_counts=counts,
                params=params,
                force="F2",
                cutoff=None,
                dt=0.02,
                substeps=5,
                n_steps=scale.n_steps,
                init_radius=3.0,
            )
            specs.append(
                ExperimentSpec(
                    name=f"fig8_l{n_types}_rep{repeat}",
                    description=f"Fig. 8 sweep point: {n_types} types, repeat {repeat}",
                    simulation=simulation,
                    n_samples=scale.n_samples,
                    analysis=AnalysisConfig(step_stride=scale.step_stride, k_neighbors=4),
                    seed=derive_seed(seed, "fig8-sim", n_types, repeat),
                    expectation="ΔI decreases as the number of types grows (F2)",
                    tags=("fig8", "sweep"),
                )
            )
    return specs


# --------------------------------------------------------------------------- #
# Fig. 9 / Fig. 10 — cut-off radius and type-count sweeps (F1)
# --------------------------------------------------------------------------- #
_FIG9_CUTOFFS: tuple[float | None, ...] = (2.5, 5.0, 7.5, 10.0, 15.0, None)


def fig9_radius_sweep(
    *,
    full: bool | None = None,
    cutoffs: Iterable[float | None] = _FIG9_CUTOFFS,
    n_particles: int = 20,
    seed: int = 9,
) -> list[ExperimentSpec]:
    """Fig. 9: 20 particles, 20 distinct types, F1, varying cut-off radius r_c."""
    scale = default_scale(full)
    specs: list[ExperimentSpec] = []
    for cutoff in cutoffs:
        for repeat in range(scale.sweep_repeats):
            rng = spawn_generator(derive_seed(seed, "fig9", repeat), 0)
            params = random_preferred_distance_params(
                n_particles, force="F1", r_range=(2.0, 8.0), k_value=1.0, rng=rng
            )
            simulation = SimulationConfig(
                type_counts=tuple([1] * n_particles),
                params=params,
                force="F1",
                cutoff=cutoff,
                dt=0.02,
                substeps=5,
                n_steps=scale.n_steps,
                init_radius=4.0,
            )
            cutoff_label = "inf" if cutoff is None else f"{cutoff:g}"
            specs.append(
                ExperimentSpec(
                    name=f"fig9_rc{cutoff_label}_rep{repeat}",
                    description=f"Fig. 9 sweep point: r_c = {cutoff_label}, repeat {repeat}",
                    simulation=simulation,
                    n_samples=scale.n_samples,
                    analysis=AnalysisConfig(step_stride=scale.step_stride, k_neighbors=4),
                    seed=derive_seed(seed, "fig9-sim", repeat),
                    expectation="multi-information increases with the cut-off radius",
                    tags=("fig9", "sweep"),
                )
            )
    return specs


def fig10_types_and_radius(
    *,
    full: bool | None = None,
    type_counts: Iterable[int] = (5, 20),
    cutoffs: Iterable[float | None] = (10.0, 15.0, None),
    n_particles: int = 20,
    seed: int = 10,
) -> list[ExperimentSpec]:
    """Fig. 10: same sweep as Fig. 9 but comparing l = 20 against l = 5 types."""
    scale = default_scale(full)
    specs: list[ExperimentSpec] = []
    for n_types in type_counts:
        counts = _spread_counts(n_particles, n_types)
        for cutoff in cutoffs:
            for repeat in range(scale.sweep_repeats):
                rng = spawn_generator(derive_seed(seed, "fig10", n_types, repeat), 0)
                params = random_preferred_distance_params(
                    n_types, force="F1", r_range=(2.0, 8.0), k_value=1.0, rng=rng
                )
                simulation = SimulationConfig(
                    type_counts=counts,
                    params=params,
                    force="F1",
                    cutoff=cutoff,
                    dt=0.02,
                    substeps=5,
                    n_steps=scale.n_steps,
                    init_radius=4.0,
                )
                cutoff_label = "inf" if cutoff is None else f"{cutoff:g}"
                specs.append(
                    ExperimentSpec(
                        name=f"fig10_l{n_types}_rc{cutoff_label}_rep{repeat}",
                        description=(
                            f"Fig. 10 sweep point: l = {n_types}, r_c = {cutoff_label}, repeat {repeat}"
                        ),
                        simulation=simulation,
                        n_samples=scale.n_samples,
                        analysis=AnalysisConfig(step_stride=scale.step_stride, k_neighbors=4),
                        seed=derive_seed(seed, "fig10-sim", n_types, repeat),
                        expectation=(
                            "with local interactions, fewer types self-organize more than l = n types"
                        ),
                        tags=("fig10", "sweep"),
                    )
                )
    return specs


# --------------------------------------------------------------------------- #
# Fig. 11 — decomposition of the multi-information
# --------------------------------------------------------------------------- #
def fig11_decomposition(*, full: bool | None = None, seed: int = 11) -> ExperimentSpec:
    """Fig. 11: per-type decomposition of one l = 5, r_c = 15 experiment from Fig. 10."""
    scale = default_scale(full)
    rng = spawn_generator(derive_seed(seed, "fig11"), 0)
    params = random_preferred_distance_params(
        5, force="F1", r_range=(2.0, 8.0), k_value=1.0, rng=rng
    )
    simulation = SimulationConfig(
        type_counts=_spread_counts(20, 5),
        params=params,
        force="F1",
        cutoff=15.0,
        dt=0.02,
        substeps=5,
        n_steps=scale.n_steps,
        init_radius=4.0,
    )
    return ExperimentSpec(
        name="fig11_decomposition",
        description="Fig. 11: normalised decomposition of the multi-information over time",
        simulation=simulation,
        n_samples=scale.n_samples,
        analysis=AnalysisConfig(
            step_stride=scale.step_stride, compute_decomposition=True, k_neighbors=4
        ),
        seed=derive_seed(seed, "fig11-sim"),
        expectation="relative contributions fluctuate early, then settle while I keeps growing",
        tags=("fig11", "decomposition"),
    )


# --------------------------------------------------------------------------- #
# Fig. 12 — emergent structures with local interactions and few types
# --------------------------------------------------------------------------- #
def fig12_emergent_structures(*, full: bool | None = None, seed: int = 12) -> ExperimentSpec:
    """Fig. 12: small r_c, few types — layered / enclosed emergent structures."""
    scale = default_scale(full)
    # Same-type particles prefer to sit close, different types further apart:
    # the classic differential-adhesion sorting regime.
    r = [
        [1.2, 2.2, 3.5],
        [2.2, 1.2, 2.2],
        [3.5, 2.2, 1.2],
    ]
    params = params_from_preferred_distances(r, force="F1", k=1.0)
    simulation = SimulationConfig(
        type_counts=(14, 13, 13),
        params=params,
        force="F1",
        cutoff=6.0,
        dt=0.02,
        substeps=5,
        n_steps=scale.n_steps,
        init_radius=4.0,
    )
    return ExperimentSpec(
        name="fig12_emergent_structures",
        description="Fig. 12: emergent layered/enclosed structures with local interactions",
        simulation=simulation,
        n_samples=max(16, default_scale(full).n_samples // 4),
        analysis=AnalysisConfig(step_stride=scale.step_stride, k_neighbors=4),
        seed=derive_seed(seed, "fig12"),
        expectation="types segregate into layered or enclosed clusters",
        tags=("fig12", "shapes"),
    )


# --------------------------------------------------------------------------- #
# plan-returning counterparts
# --------------------------------------------------------------------------- #
# Every simulation-backed figure factory above has a plan-returning
# counterpart so sweeps run through the declarative, cache-aware layer
# (:mod:`repro.core.plan`).  The plans lower to exactly the same simulation /
# analysis configurations (and hence the same content hashes) as the spec
# lists — only the unit *names* differ for grid-generated sweep points.
# Fig. 2 is analytic (no simulation), so it has no plan counterpart.
def fig3_equilibria_plan(*, full: bool | None = None, seed: int = 3) -> ExperimentPlan:
    """Fig. 3 as a plan: the three type-count equilibria chained."""
    return chain(*(single(fig3_equilibria(l, full=full, seed=seed)) for l in (1, 2, 3)))


def fig4_multi_information_plan(*, full: bool | None = None, seed: int = 4) -> ExperimentPlan:
    """Fig. 4 as a one-unit plan."""
    return single(fig4_multi_information(full=full, seed=seed))


def fig5_single_type_f1_plan(*, full: bool | None = None, seed: int = 5) -> ExperimentPlan:
    """Fig. 5 as a one-unit plan."""
    return single(fig5_single_type_f1(full=full, seed=seed))


def fig6_shape_variety_plan(*, full: bool | None = None, seed: int = 4) -> ExperimentPlan:
    """Fig. 6 as a one-unit plan."""
    return single(fig6_shape_variety(full=full, seed=seed))


def fig7_ring_alignment_plan(*, full: bool | None = None, seed: int = 5) -> ExperimentPlan:
    """Fig. 7 as a one-unit plan."""
    return single(fig7_ring_alignment(full=full, seed=seed))


def fig8_type_sweep_plan(
    *,
    full: bool | None = None,
    n_types_values: Iterable[int] = range(1, 11),
    n_particles: int = 20,
    seed: int = 8,
) -> ExperimentPlan:
    """Fig. 8 as a plan.

    Every sweep point draws its own random preferred-distance matrix, so the
    interaction parameters are not a sweepable *field* — the plan chains the
    factory's specs rather than expressing the sweep as a :func:`grid`.
    """
    return ExperimentPlan.from_specs(
        fig8_type_sweep(full=full, n_types_values=n_types_values, n_particles=n_particles, seed=seed)
    )


def fig9_radius_sweep_plan(
    *,
    full: bool | None = None,
    cutoffs: Iterable[float | None] = _FIG9_CUTOFFS,
    n_particles: int = 20,
    seed: int = 9,
) -> ExperimentPlan:
    """Fig. 9 as a plan: a cut-off :func:`grid` per random-matrix repeat.

    The random preferred distances depend only on the repeat index, so the
    cut-off radius is a pure field sweep — expressed as a grid axis over
    ``simulation.cutoff`` — and the repeats are chained.  The lowered units
    carry the same content hashes as :func:`fig9_radius_sweep`'s specs.
    """
    scale = default_scale(full)
    per_repeat: list[ExperimentPlan] = []
    for repeat in range(scale.sweep_repeats):
        rng = spawn_generator(derive_seed(seed, "fig9", repeat), 0)
        params = random_preferred_distance_params(
            n_particles, force="F1", r_range=(2.0, 8.0), k_value=1.0, rng=rng
        )
        base = ExperimentSpec(
            name=f"fig9_rep{repeat}",
            description=f"Fig. 9 sweep, repeat {repeat} (cut-off radius swept by the plan)",
            simulation=SimulationConfig(
                type_counts=tuple([1] * n_particles),
                params=params,
                force="F1",
                cutoff=None,
                dt=0.02,
                substeps=5,
                n_steps=scale.n_steps,
                init_radius=4.0,
            ),
            n_samples=scale.n_samples,
            analysis=AnalysisConfig(step_stride=scale.step_stride, k_neighbors=4),
            seed=derive_seed(seed, "fig9-sim", repeat),
            expectation="multi-information increases with the cut-off radius",
            tags=("fig9", "sweep"),
        )
        per_repeat.append(grid(base, **{"simulation.cutoff": list(cutoffs)}))
    return chain(*per_repeat)


def fig10_types_and_radius_plan(
    *,
    full: bool | None = None,
    type_counts: Iterable[int] = (5, 20),
    cutoffs: Iterable[float | None] = (10.0, 15.0, None),
    n_particles: int = 20,
    seed: int = 10,
) -> ExperimentPlan:
    """Fig. 10 as a plan: a cut-off grid per (type count, repeat) base spec."""
    scale = default_scale(full)
    parts: list[ExperimentPlan] = []
    for n_types in type_counts:
        counts = _spread_counts(n_particles, n_types)
        for repeat in range(scale.sweep_repeats):
            rng = spawn_generator(derive_seed(seed, "fig10", n_types, repeat), 0)
            params = random_preferred_distance_params(
                n_types, force="F1", r_range=(2.0, 8.0), k_value=1.0, rng=rng
            )
            base = ExperimentSpec(
                name=f"fig10_l{n_types}_rep{repeat}",
                description=(
                    f"Fig. 10 sweep, l = {n_types}, repeat {repeat} (cut-off swept by the plan)"
                ),
                simulation=SimulationConfig(
                    type_counts=counts,
                    params=params,
                    force="F1",
                    cutoff=None,
                    dt=0.02,
                    substeps=5,
                    n_steps=scale.n_steps,
                    init_radius=4.0,
                ),
                n_samples=scale.n_samples,
                analysis=AnalysisConfig(step_stride=scale.step_stride, k_neighbors=4),
                seed=derive_seed(seed, "fig10-sim", n_types, repeat),
                expectation=(
                    "with local interactions, fewer types self-organize more than l = n types"
                ),
                tags=("fig10", "sweep"),
            )
            parts.append(grid(base, **{"simulation.cutoff": list(cutoffs)}))
    return chain(*parts)


def fig11_decomposition_plan(*, full: bool | None = None, seed: int = 11) -> ExperimentPlan:
    """Fig. 11 as a one-unit plan."""
    return single(fig11_decomposition(full=full, seed=seed))


def fig12_emergent_structures_plan(*, full: bool | None = None, seed: int = 12) -> ExperimentPlan:
    """Fig. 12 as a one-unit plan."""
    return single(fig12_emergent_structures(full=full, seed=seed))


def all_figure_plans(*, full: bool | None = None) -> dict[str, ExperimentPlan]:
    """Every simulation-backed figure experiment as a plan, keyed by figure id."""
    return {
        "fig3": fig3_equilibria_plan(full=full),
        "fig4": fig4_multi_information_plan(full=full),
        "fig5": fig5_single_type_f1_plan(full=full),
        "fig6": fig6_shape_variety_plan(full=full),
        "fig7": fig7_ring_alignment_plan(full=full),
        "fig8": fig8_type_sweep_plan(full=full),
        "fig9": fig9_radius_sweep_plan(full=full),
        "fig10": fig10_types_and_radius_plan(full=full),
        "fig11": fig11_decomposition_plan(full=full),
        "fig12": fig12_emergent_structures_plan(full=full),
    }


def figure_plan(figure: str, *, full: bool | None = None) -> ExperimentPlan:
    """Plan of one figure by id (e.g. ``"fig9"``); raises ``KeyError`` if unknown."""
    plans = all_figure_plans(full=full)
    key = figure.lower()
    if key not in plans:
        raise KeyError(
            f"unknown figure {figure!r}; simulation-backed figures: {', '.join(plans)}"
        )
    return plans[key]


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def all_figure_specs(*, full: bool | None = None) -> dict[str, list[ExperimentSpec]]:
    """Every simulation-backed figure experiment, keyed by figure id.

    Fig. 2 is analytic (no simulation) and therefore not included here; use
    :func:`fig2_force_curves` directly.
    """
    return {
        "fig3": [fig3_equilibria(l, full=full) for l in (1, 2, 3)],
        "fig4": [fig4_multi_information(full=full)],
        "fig5": [fig5_single_type_f1(full=full)],
        "fig6": [fig6_shape_variety(full=full)],
        "fig7": [fig7_ring_alignment(full=full)],
        "fig8": fig8_type_sweep(full=full),
        "fig9": fig9_radius_sweep(full=full),
        "fig10": fig10_types_and_radius(full=full),
        "fig11": [fig11_decomposition(full=full)],
        "fig12": [fig12_emergent_structures(full=full)],
    }


def _spread_counts(n_particles: int, n_types: int) -> tuple[int, ...]:
    """Distribute ``n_particles`` as evenly as possible over ``n_types`` types."""
    if n_types <= 0:
        raise ValueError("n_types must be positive")
    if n_particles < n_types:
        raise ValueError("need at least one particle per type")
    base = n_particles // n_types
    remainder = n_particles % n_types
    return tuple(base + (1 if i < remainder else 0) for i in range(n_types))
