"""Declarative experiment plans: composable sweeps, content-addressed caching.

The one-shot entry point :func:`repro.core.pipeline.run_experiment` recomputes
everything on every call.  This module turns experiment orchestration into a
*data structure*:

1. an :class:`ExperimentPlan` is a composable tree of sweep nodes —
   :func:`single` specs, :func:`chain` concatenation, :func:`grid` cartesian
   products and :func:`zip_` aligned sweeps over spec fields;
2. the tree *lowers* to a flat list of :class:`RunUnit`\\ s, each carrying a
   stable content hash derived from the unit's full
   :class:`~repro.particles.model.SimulationConfig`,
   :class:`~repro.core.self_organization.AnalysisConfig`, seed and ensemble
   size (cosmetic fields — name, description, tags — do not enter the hash);
3. :meth:`ExperimentPlan.execute` fans the units out through
   :func:`repro.parallel.pool.parallel_starmap`, skips units whose hash is
   already present in a :class:`~repro.io.artifacts.RunStore`, and persists
   every freshly computed result under its hash.

Because a unit's hash is a pure function of its specification, re-executing a
plan against the same store after an interruption runs *only* the missing
units and returns results bit-identical to an uninterrupted run — the store
documents are deterministic (volatile wall-time diagnostics are stripped).
Progress is observable through the pluggable :class:`PlanObserver` hook.

Sweep axes are dotted paths into the spec: top-level
:class:`~repro.core.experiments.ExperimentSpec` fields (``"n_samples"``,
``"seed"``), or nested ``"simulation.<field>"`` / ``"analysis.<field>"``
updates (``__`` may be used instead of ``.`` so axes can be passed as plain
keyword arguments)::

    plan = grid(base_spec, **{"simulation.cutoff": [2.5, 7.5, None]})
    execution = plan.execute(store=RunStore("results/store"), n_jobs=4)
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import secrets
import socket
import threading
import time
from dataclasses import dataclass, replace
from functools import cached_property
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.pipeline import ExperimentResult, run_experiment
from repro.io.artifacts import DEFAULT_LEASE_TTL_SECONDS
from repro.parallel.pool import parallel_starmap_unordered

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.core.experiments import ExperimentSpec
    from repro.io.artifacts import RunStoreBackend

__all__ = [
    "RunUnit",
    "ExperimentPlan",
    "PlanExecution",
    "PlanStatus",
    "PlanObserver",
    "ConsoleObserver",
    "single",
    "chain",
    "grid",
    "zip_",
    "unit_content_hash",
]


# --------------------------------------------------------------------------- #
# run units and content hashing
# --------------------------------------------------------------------------- #
def unit_content_hash(spec: "ExperimentSpec") -> str:
    """Stable content hash of a fully specified experiment.

    The hash covers everything that determines the numbers an execution
    produces — the full simulation config (including performance knobs such
    as ``engine``, which never change results but are hashed conservatively),
    the full analysis config, the seed and the ensemble size.  Cosmetic
    fields (name, description, expectation, tags) are excluded, so renaming a
    sweep point never invalidates its cache entry — and so is the analysis
    ``workers`` thread count, a pure throughput knob that never changes any
    result (``estimator_backend`` stays hashed: backends agree only to
    float tolerance).
    """
    analysis = spec.analysis.to_dict()
    analysis.pop("workers", None)
    payload = {
        "simulation": spec.simulation.to_dict(),
        "analysis": analysis,
        "n_samples": int(spec.n_samples),
        "seed": int(spec.seed),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf8")).hexdigest()


@dataclass(frozen=True)
class RunUnit:
    """One executable cell of a plan: a spec plus its content hash."""

    spec: "ExperimentSpec"

    @cached_property
    def content_hash(self) -> str:
        """Content hash of the unit (see :func:`unit_content_hash`)."""
        return unit_content_hash(self.spec)

    @property
    def name(self) -> str:
        return self.spec.name

    def execute(self, *, n_jobs: int | None = None, keep_ensemble: bool = False) -> ExperimentResult:
        """Run the unit through the standard pipeline (no caching involved)."""
        return _execute_spec(self.spec, keep_ensemble, n_jobs)


def _execute_spec(
    spec: "ExperimentSpec", keep_ensemble: bool = False, n_jobs: int | None = None
) -> ExperimentResult:
    """Top-level worker so plan execution can fan units out across processes."""
    return run_experiment(
        spec.simulation,
        spec.n_samples,
        analysis_config=spec.analysis,
        seed=spec.seed,
        n_jobs=n_jobs,
        keep_ensemble=keep_ensemble,
    )


# --------------------------------------------------------------------------- #
# sweep axes
# --------------------------------------------------------------------------- #
def _normalise_axis(path: str) -> str:
    """Allow ``simulation__cutoff`` as a keyword-friendly alias of ``simulation.cutoff``."""
    return path.replace("__", ".")


def _apply_axis(spec: "ExperimentSpec", path: str, value: Any) -> "ExperimentSpec":
    """Return a copy of ``spec`` with the dotted-path field replaced."""
    head, dot, leaf = path.partition(".")
    try:
        if not dot:
            return spec.with_updates(**{head: value})
        if head == "simulation":
            return spec.with_updates(simulation=spec.simulation.with_updates(**{leaf: value}))
        if head == "analysis":
            return spec.with_updates(analysis=replace(spec.analysis, **{leaf: value}))
    except TypeError as exc:
        raise ValueError(f"unknown sweep axis {path!r}: {exc}") from exc
    raise ValueError(
        f"unknown sweep axis {path!r}; use a top-level ExperimentSpec field, "
        f"'simulation.<field>' or 'analysis.<field>'"
    )


def _axis_token(path: str, value: Any) -> str:
    """Compact ``<leaf><value>`` token used to derive swept spec names."""
    leaf = path.rpartition(".")[2]
    if value is None:
        text = "none"
    elif isinstance(value, float):
        text = f"{value:g}"
    else:
        text = str(value)
    return f"{leaf}{text.replace(' ', '')}"


def _apply_combination(
    spec: "ExperimentSpec", paths: Sequence[str], values: Sequence[Any]
) -> "ExperimentSpec":
    out = spec
    for path, value in zip(paths, values):
        out = _apply_axis(out, path, value)
    tokens = "_".join(_axis_token(path, value) for path, value in zip(paths, values))
    return out.with_updates(name=f"{spec.name}__{tokens}")


# --------------------------------------------------------------------------- #
# plan tree nodes
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _PlanNode:
    """Base node; subclasses lower themselves to a flat spec list."""

    def specs(self) -> list["ExperimentSpec"]:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class _Single(_PlanNode):
    spec: "ExperimentSpec"

    def specs(self) -> list["ExperimentSpec"]:
        return [self.spec]


@dataclass(frozen=True)
class _Chain(_PlanNode):
    children: tuple[_PlanNode, ...]

    def specs(self) -> list["ExperimentSpec"]:
        out: list["ExperimentSpec"] = []
        for child in self.children:
            out.extend(child.specs())
        return out


@dataclass(frozen=True)
class _Sweep(_PlanNode):
    base: _PlanNode
    paths: tuple[str, ...]
    values: tuple[tuple[Any, ...], ...]  # one tuple of axis values per combination

    def specs(self) -> list["ExperimentSpec"]:
        out: list["ExperimentSpec"] = []
        for spec in self.base.specs():
            for combination in self.values:
                out.append(_apply_combination(spec, self.paths, combination))
        return out


def _as_node(plan_or_spec: "ExperimentPlan | ExperimentSpec") -> _PlanNode:
    if isinstance(plan_or_spec, ExperimentPlan):
        return plan_or_spec._root
    return _Single(plan_or_spec)


def _combinations(axes: dict[str, Any], mode: str) -> tuple[tuple[str, ...], tuple[tuple[Any, ...], ...]]:
    if not axes:
        raise ValueError("a sweep needs at least one axis")
    paths = tuple(_normalise_axis(path) for path in axes)
    value_lists = [list(values) for values in axes.values()]
    if any(len(values) == 0 for values in value_lists):
        raise ValueError("sweep axes must be non-empty")
    if mode == "zip":
        lengths = {len(values) for values in value_lists}
        if len(lengths) != 1:
            raise ValueError(
                f"zip_ axes must have equal lengths, got {[len(v) for v in value_lists]}"
            )
        combos = tuple(zip(*value_lists))
    else:
        combos = tuple(itertools.product(*value_lists))
    return paths, combos


# --------------------------------------------------------------------------- #
# observers
# --------------------------------------------------------------------------- #
class PlanObserver:
    """Pluggable progress hook for plan execution (all methods are no-ops).

    ``on_unit_start`` fires before a unit is (or a batch of units are)
    submitted; ``on_unit_complete`` fires once its result is available, with
    ``cached=True`` when the result was served from the store without
    recomputation.  Under a process pool the start hooks for one batch fire
    before the completion hooks, and completions arrive in *completion*
    order (nondeterministic across workers); serial execution completes in
    plan order.  :class:`PlanExecution` results are always in plan order.
    """

    def on_plan_start(self, units: list[RunUnit], missing: list[RunUnit]) -> None:
        """Called once, with the deduplicated units and the subset to be computed."""

    def on_unit_start(self, unit: RunUnit, index: int, total: int) -> None:
        """Called before unit ``index`` (0-based, of ``total`` to compute) runs."""

    def on_unit_complete(self, unit: RunUnit, result: ExperimentResult, cached: bool) -> None:
        """Called when a unit's result is available (freshly computed or cached)."""

    def on_plan_complete(self, execution: "PlanExecution") -> None:
        """Called once with the finished execution."""


class ConsoleObserver(PlanObserver):
    """Writes one progress line per unit to a stream (the CLI's observer)."""

    def __init__(self, stream) -> None:
        self.stream = stream

    def on_plan_start(self, units: list[RunUnit], missing: list[RunUnit]) -> None:
        cached = len(units) - len(missing)
        self.stream.write(
            f"plan: {len(units)} unit(s), {cached} cached, {len(missing)} to compute\n"
        )

    def on_unit_complete(self, unit: RunUnit, result: ExperimentResult, cached: bool) -> None:
        origin = "cached  " if cached else "computed"
        self.stream.write(
            f"  [{origin}] {unit.name} ({unit.content_hash[:12]}): "
            f"delta I = {result.delta_multi_information:+.3f} bits\n"
        )


# --------------------------------------------------------------------------- #
# execution results
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlanStatus:
    """Cache status of a plan against a store (nothing is executed)."""

    units: tuple[RunUnit, ...]
    cached: tuple[RunUnit, ...]
    missing: tuple[RunUnit, ...]

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def n_cached(self) -> int:
        return len(self.cached)

    @property
    def n_missing(self) -> int:
        return len(self.missing)

    @property
    def complete(self) -> bool:
        return not self.missing


@dataclass(frozen=True)
class PlanExecution:
    """Results of one :meth:`ExperimentPlan.execute` call.

    ``results`` is aligned with the plan's unit order (duplicated units share
    one result object).  ``computed`` / ``cached`` hold the content hashes
    that were freshly run vs. served from the store; ``external`` holds units
    that a *concurrent* worker on the same store computed while this
    execution ran — they were missing at the start, another worker's lease
    covered them, and their results were loaded once that worker committed.
    """

    units: tuple[RunUnit, ...]
    results: tuple[ExperimentResult, ...]
    computed: tuple[str, ...]
    cached: tuple[str, ...]
    wall_time_seconds: float = 0.0
    external: tuple[str, ...] = ()

    @property
    def n_computed(self) -> int:
        return len(self.computed)

    @property
    def n_cached(self) -> int:
        return len(self.cached)

    @property
    def n_external(self) -> int:
        return len(self.external)

    def summaries(self) -> list[dict[str, Any]]:
        """Compact per-unit summaries (see :meth:`ExperimentResult.summary`)."""
        return [result.summary() for result in self.results]

    def mean_delta_multi_information(self) -> float:
        """Mean ΔI over the plan's units — the quantity the sweep figures average."""
        return float(np.mean([r.delta_multi_information for r in self.results]))


# --------------------------------------------------------------------------- #
# the plan
# --------------------------------------------------------------------------- #
class ExperimentPlan:
    """A composable tree of experiment sweeps that lowers to run units.

    Construct plans with :func:`single`, :func:`grid`, :func:`zip_` and
    :func:`chain` (or the equivalent classmethods/operators: ``plan + plan``
    chains).  Plans are immutable; every combinator returns a new plan.
    """

    def __init__(self, root: _PlanNode) -> None:
        self._root = root

    # construction ------------------------------------------------------- #
    @classmethod
    def single(cls, spec: "ExperimentSpec") -> "ExperimentPlan":
        """A one-unit plan."""
        return cls(_Single(spec))

    @classmethod
    def from_specs(cls, specs: Iterable["ExperimentSpec"]) -> "ExperimentPlan":
        """Chain a flat list of specs into a plan (one unit per spec)."""
        return cls(_Chain(tuple(_Single(spec) for spec in specs)))

    def grid(self, **axes: Iterable[Any]) -> "ExperimentPlan":
        """Cartesian-product sweep of the given axes over every spec of this plan."""
        paths, combos = _combinations(axes, "grid")
        return ExperimentPlan(_Sweep(self._root, paths, combos))

    def zip_(self, **axes: Iterable[Any]) -> "ExperimentPlan":
        """Aligned (position-wise) sweep of equal-length axes over this plan."""
        paths, combos = _combinations(axes, "zip")
        return ExperimentPlan(_Sweep(self._root, paths, combos))

    def chain(self, *others: "ExperimentPlan") -> "ExperimentPlan":
        """Concatenate this plan with others (units run in order)."""
        return ExperimentPlan(_Chain((self._root, *(o._root for o in others))))

    def __add__(self, other: "ExperimentPlan") -> "ExperimentPlan":
        return self.chain(other)

    def map_specs(self, fn: Callable[["ExperimentSpec"], "ExperimentSpec"]) -> "ExperimentPlan":
        """Apply ``fn`` to every lowered spec (e.g. engine overrides); returns a new plan."""
        return ExperimentPlan.from_specs(fn(spec) for spec in self.specs())

    def limit(self, n_units: int) -> "ExperimentPlan":
        """Keep only the first ``n_units`` units (useful for smoke runs)."""
        if n_units < 1:
            raise ValueError("n_units must be >= 1")
        return ExperimentPlan.from_specs(self.specs()[:n_units])

    # lowering ----------------------------------------------------------- #
    def specs(self) -> list["ExperimentSpec"]:
        """Lower the tree to the flat spec list (plan order)."""
        return self._root.specs()

    def units(self) -> list[RunUnit]:
        """Lower the tree to the flat list of content-hashed run units."""
        return [RunUnit(spec) for spec in self.specs()]

    def __len__(self) -> int:
        return len(self.specs())

    def __iter__(self) -> Iterator[RunUnit]:
        return iter(self.units())

    # cache interrogation ------------------------------------------------ #
    def status(self, store: "RunStoreBackend | None") -> PlanStatus:
        """Which units are already in the store, without executing anything."""
        units = self._unique_units()
        if store is None:
            return PlanStatus(units=tuple(units), cached=(), missing=tuple(units))
        cached = tuple(u for u in units if store.has(u.content_hash))
        missing = tuple(u for u in units if not store.has(u.content_hash))
        return PlanStatus(units=tuple(units), cached=cached, missing=missing)

    def _unique_units(self, units: list[RunUnit] | None = None) -> list[RunUnit]:
        seen: dict[str, RunUnit] = {}
        for unit in self.units() if units is None else units:
            seen.setdefault(unit.content_hash, unit)
        return list(seen.values())

    # execution ---------------------------------------------------------- #
    def execute(
        self,
        store: "RunStoreBackend | None" = None,
        *,
        n_jobs: int | None = None,
        observer: PlanObserver | None = None,
        recompute: bool = False,
        keep_ensembles: bool = False,
        lease_ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
        lease_poll_seconds: float = 0.5,
    ) -> PlanExecution:
        """Execute the plan, skipping units already present in ``store``.

        Parameters
        ----------
        store:
            Content-addressed result cache — any
            :class:`~repro.io.artifacts.RunStoreBackend` (a local filesystem
            :class:`~repro.io.artifacts.RunStore`, or an
            :class:`~repro.io.remote.HTTPRunStore` for a store shared
            between hosts).  Units whose hash is present are *not*
            recomputed — their persisted results are loaded bit-identically.
            Freshly computed units are persisted as their results arrive
            (not after the whole batch), so an interrupted execution loses
            at most the in-flight units and resumes where it stopped.
            ``None`` disables caching entirely (every unit runs).

            With a store, missing units are **leased** before computing:
            any number of concurrent executions of the same plan against
            one store partition the sweep between them — each worker
            computes the units it leases, waits on (and then loads) units
            another live worker holds, and steals leases whose holders
            crashed.  Saves are write-once, so even a duplicated compute
            (possible only across a lease expiry) never rewrites a
            committed document.
        n_jobs:
            Process-pool width for the unit fan-out (``None``/1 = serial).
            Each unit's own simulation runs serially inside its worker; the
            per-sample RNG streams make results independent of this knob.
        observer:
            Progress hook; defaults to the silent :class:`PlanObserver`.
            Units computed by a *concurrent* worker surface through
            ``on_unit_complete(..., cached=True)`` once loaded.
        recompute:
            Ignore cache hits and recompute (and re-persist) every unit.
            Concurrent workers still lease, so a recompute sweep shared
            between workers recomputes every unit exactly once overall.
        keep_ensembles:
            Attach raw trajectories to results and persist them as ``.npz``
            next to the JSON documents (memory- and disk-heavy).  A cached
            unit counts as a hit only when its *document references* a
            persisted ensemble — a bare sibling ``.npz`` may be an orphan
            from a crashed save — otherwise it is recomputed (its document
            is rewritten with the ensemble reference).
        lease_ttl_seconds:
            Lease lifetime; held leases are renewed at a third of this, so
            the TTL only bounds how long a crashed worker's units stay
            blocked for other workers.
        lease_poll_seconds:
            How often to re-check the store while every remaining unit is
            leased by other workers.
        """
        observer = observer or PlanObserver()
        t0 = time.perf_counter()
        all_units = self.units()
        unique_units = self._unique_units(all_units)

        def is_cached(unit: RunUnit) -> bool:
            if store is None or recompute or not store.has(unit.content_hash):
                return False
            # A cache hit must satisfy the *whole* request: when ensembles
            # are asked for, the document itself must reference a persisted
            # archive.  (Checking for a sibling .npz file is NOT enough — an
            # orphaned archive from a crashed save sits beside a document
            # with no ensemble reference, and loading that "hit" would
            # silently return ensemble=None.)
            return not keep_ensembles or store.provides_ensemble(unit.content_hash)

        cache_flags = {unit.content_hash: is_cached(unit) for unit in unique_units}
        cached_units = [u for u in unique_units if cache_flags[u.content_hash]]
        missing_units = [u for u in unique_units if not cache_flags[u.content_hash]]
        observer.on_plan_start(unique_units, missing_units)

        results_by_hash: dict[str, ExperimentResult] = {}
        for unit in cached_units:
            # Skip the (potentially huge) raw-ensemble .npz unless this
            # execution actually asked for ensembles.
            result = store.load(unit.content_hash, with_ensemble=keep_ensembles)
            results_by_hash[unit.content_hash] = result
            observer.on_unit_complete(unit, result, cached=True)

        computed_hashes: list[str] = []
        external_hashes: list[str] = []
        if missing_units:
            if store is None:
                for index, unit in enumerate(missing_units):
                    observer.on_unit_start(unit, index, len(missing_units))
                for index, result in _compute_batch(missing_units, keep_ensembles, n_jobs):
                    unit = missing_units[index]
                    results_by_hash[unit.content_hash] = result
                    computed_hashes.append(unit.content_hash)
                    observer.on_unit_complete(unit, result, cached=False)
            else:
                computed_hashes, external_hashes = self._execute_shared(
                    store,
                    missing_units,
                    results_by_hash,
                    observer,
                    n_jobs=n_jobs,
                    recompute=recompute,
                    keep_ensembles=keep_ensembles,
                    lease_ttl_seconds=lease_ttl_seconds,
                    lease_poll_seconds=lease_poll_seconds,
                )

        execution = PlanExecution(
            units=tuple(all_units),
            results=tuple(results_by_hash[u.content_hash] for u in all_units),
            computed=tuple(computed_hashes),
            cached=tuple(u.content_hash for u in cached_units),
            wall_time_seconds=time.perf_counter() - t0,
            external=tuple(external_hashes),
        )
        observer.on_plan_complete(execution)
        return execution

    def _execute_shared(
        self,
        store: "RunStoreBackend",
        missing_units: list[RunUnit],
        results_by_hash: dict[str, ExperimentResult],
        observer: PlanObserver,
        *,
        n_jobs: int | None,
        recompute: bool,
        keep_ensembles: bool,
        lease_ttl_seconds: float,
        lease_poll_seconds: float,
    ) -> tuple[list[str], list[str]]:
        """Drain missing units against a (possibly shared) store via leases.

        Each pass leases whatever it can and computes that batch; units held
        by other live workers are waited on and their committed results
        loaded (``external``).  A lease whose holder stopped renewing (a
        crash) expires and is stolen on a later pass — the only window in
        which a unit can be computed twice, and the write-once save makes
        even that window persistence-safe.
        """
        owner = f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(4)}"
        keeper = _LeaseKeeper(store, owner, lease_ttl_seconds)
        keeper.start()
        computed_hashes: list[str] = []
        external_hashes: list[str] = []
        total = len(missing_units)
        started = 0
        pending = list(missing_units)
        try:
            while pending:
                # Adopt whatever a concurrent worker committed since the last
                # pass *before* trying to lease — a finished worker releases
                # its lease right after saving, and leasing first would grab
                # that freed lease and recompute a unit whose result is
                # already sitting in the store.  Under ``recompute`` nothing
                # is ever adopted — this worker insists on computing, so it
                # waits its turn for the lease instead.
                remaining: list[RunUnit] = []
                for unit in pending:
                    committed = (
                        not recompute
                        and store.has(unit.content_hash)
                        and (not keep_ensembles or store.provides_ensemble(unit.content_hash))
                    )
                    if committed:
                        result = store.load(unit.content_hash, with_ensemble=keep_ensembles)
                        results_by_hash[unit.content_hash] = result
                        external_hashes.append(unit.content_hash)
                        observer.on_unit_complete(unit, result, cached=True)
                    else:
                        remaining.append(unit)
                mine: list[RunUnit] = []
                held_elsewhere: list[RunUnit] = []
                for unit in remaining:
                    if store.try_acquire_lease(unit.content_hash, owner, lease_ttl_seconds):
                        keeper.track(unit.content_hash)
                        mine.append(unit)
                    else:
                        held_elsewhere.append(unit)
                if mine:
                    for unit in mine:
                        observer.on_unit_start(unit, started, total)
                        started += 1
                    # Results surface in *completion* order and every unit is
                    # persisted the moment its result arrives — a slow early
                    # unit never holds finished ones hostage, so an
                    # interruption loses only the genuinely in-flight units.
                    for index, result in _compute_batch(mine, keep_ensembles, n_jobs):
                        unit = mine[index]
                        # Write-once unless the caller explicitly asked to
                        # recompute: if a lease expired and another worker
                        # committed this unit first, the save is a no-op.
                        store.save(unit, result, overwrite=recompute)
                        keeper.untrack(unit.content_hash)
                        store.release_lease(unit.content_hash, owner)
                        results_by_hash[unit.content_hash] = result
                        computed_hashes.append(unit.content_hash)
                        observer.on_unit_complete(unit, result, cached=False)
                    pending = held_elsewhere
                    continue
                # Every remaining unit is leased by another live worker:
                # poll until a result lands (adopted by the next pass) or a
                # dead worker's lease expires (stolen by the next pass).
                if held_elsewhere:
                    time.sleep(lease_poll_seconds)
                pending = held_elsewhere
        finally:
            # Always drop every lease still held — a failed save (or an
            # observer raising) must not block other workers (or a later
            # execution in this very process) until the TTL runs out.
            keeper.stop()
            for content_hash in keeper.tracked():
                try:
                    store.release_lease(content_hash, owner)
                except Exception:  # pragma: no cover - store died mid-teardown
                    pass
        return computed_hashes, external_hashes


def _compute_batch(
    units: list[RunUnit], keep_ensembles: bool, n_jobs: int | None
) -> Iterator[tuple[int, ExperimentResult]]:
    """Compute a batch of units, yielding ``(index, result)`` in completion order."""
    if len(units) == 1:
        # A lone unit gets the whole budget as *inner* (simulation batch)
        # parallelism instead of a pointless one-task pool — this keeps
        # `run --n-jobs` behaving as before the plan layer.
        return iter([(0, _execute_spec(units[0].spec, keep_ensembles, n_jobs))])
    return parallel_starmap_unordered(
        _execute_spec,
        [(unit.spec, keep_ensembles) for unit in units],
        n_jobs=n_jobs,
    )


class _LeaseKeeper(threading.Thread):
    """Daemon thread renewing the leases one plan execution currently holds.

    Renewal at a third of the TTL keeps live computations' leases from
    expiring no matter how long a unit takes; renewals are best-effort — a
    missed one only widens the (already persistence-safe) duplicate-compute
    window.
    """

    def __init__(self, store: "RunStoreBackend", owner: str, ttl_seconds: float) -> None:
        super().__init__(name="plan-lease-keeper", daemon=True)
        self._store = store
        self._owner = owner
        self._ttl = float(ttl_seconds)
        self._held: set[str] = set()
        self._lock = threading.Lock()
        self._stopped = threading.Event()

    def track(self, content_hash: str) -> None:
        with self._lock:
            self._held.add(content_hash)

    def untrack(self, content_hash: str) -> None:
        with self._lock:
            self._held.discard(content_hash)

    def tracked(self) -> list[str]:
        with self._lock:
            return sorted(self._held)

    def stop(self) -> None:
        self._stopped.set()

    def run(self) -> None:
        interval = max(0.05, self._ttl / 3.0)
        while not self._stopped.wait(interval):
            for content_hash in self.tracked():
                try:
                    self._store.renew_lease(content_hash, self._owner, self._ttl)
                except Exception:  # noqa: BLE001 - keep renewing the rest
                    continue


# --------------------------------------------------------------------------- #
# combinator functions (the public construction vocabulary)
# --------------------------------------------------------------------------- #
def single(spec: "ExperimentSpec") -> ExperimentPlan:
    """Plan with exactly one unit."""
    return ExperimentPlan.single(spec)


def chain(*plans: "ExperimentPlan | ExperimentSpec") -> ExperimentPlan:
    """Concatenate plans (or bare specs) into one plan; units run in order."""
    if not plans:
        raise ValueError("chain needs at least one plan")
    return ExperimentPlan(_Chain(tuple(_as_node(p) for p in plans)))


def grid(base: "ExperimentPlan | ExperimentSpec", **axes: Iterable[Any]) -> ExperimentPlan:
    """Cartesian-product sweep: every combination of axis values applied to ``base``.

    Axes are dotted paths (``"simulation.cutoff"``; ``simulation__cutoff``
    works as a plain keyword).  ``base`` may itself be a plan, in which case
    the product is taken over *each* of its specs.
    """
    paths, combos = _combinations(axes, "grid")
    return ExperimentPlan(_Sweep(_as_node(base), paths, combos))


def zip_(base: "ExperimentPlan | ExperimentSpec", **axes: Iterable[Any]) -> ExperimentPlan:
    """Aligned sweep: axis value lists of equal length are applied position-wise."""
    paths, combos = _combinations(axes, "zip")
    return ExperimentPlan(_Sweep(_as_node(base), paths, combos))
