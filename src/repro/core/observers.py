"""Observer variables over particle collectives (§3.1).

A collection of random variables ``X_1, …, X_n`` are *observers* of a system
``X`` when they jointly determine it and each depends only on it.  For the
particle collective the natural observers are the (symmetry-reduced)
positions of the individual particles; coarser choices group particles by
type or replace them by cluster means (§5.3.1).

:func:`build_observers` turns one symmetry-reduced ensemble snapshot into the
``(m, n_observers, 2)`` array the estimators consume, together with the type
label of each observer (needed for the per-type decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.cluster.coarse_grain import coarse_grain_snapshot
from repro.infotheory.decomposition import groups_from_labels
from repro.parallel.rng import as_generator

__all__ = ["ObserverMode", "ObserverSet", "build_observers", "AUTO_CLUSTER_THRESHOLD"]

#: Collective size above which the paper switches to the k-means approximation.
AUTO_CLUSTER_THRESHOLD = 60


class ObserverMode(str, Enum):
    """How observer variables are derived from a reduced snapshot."""

    #: One observer per particle (the paper's default for n ≤ 60).
    PARTICLES = "particles"
    #: ``l · k`` cluster-mean observers (the paper's approximation for n > 60).
    CLUSTERS = "clusters"
    #: Choose between the two based on :data:`AUTO_CLUSTER_THRESHOLD`.
    AUTO = "auto"


@dataclass(frozen=True)
class ObserverSet:
    """Observer samples extracted from one ensemble snapshot.

    Attributes
    ----------
    values:
        ``(n_samples, n_observers, 2)`` observer samples.
    observer_types:
        ``(n_observers,)`` particle type associated with each observer.
    mode:
        Which extraction mode actually produced the observers (AUTO resolves
        to PARTICLES or CLUSTERS).
    """

    values: np.ndarray
    observer_types: np.ndarray
    mode: ObserverMode

    @property
    def n_samples(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_observers(self) -> int:
        return int(self.values.shape[1])

    def type_groups(self) -> list[list[int]]:
        """Observer index groups, one per particle type (for the decomposition)."""
        return groups_from_labels(self.observer_types)


def build_observers(
    snapshot: np.ndarray,
    types: np.ndarray,
    *,
    mode: ObserverMode | str = ObserverMode.AUTO,
    n_clusters: int = 4,
    rng: np.random.Generator | int | None = None,
) -> ObserverSet:
    """Extract observer variables from a symmetry-reduced ensemble snapshot.

    Parameters
    ----------
    snapshot:
        ``(n_samples, n_particles, 2)`` reduced configurations at one step.
    types:
        ``(n_particles,)`` type assignment.
    mode:
        Observer extraction mode; see :class:`ObserverMode`.
    n_clusters:
        Clusters per type when the cluster mode is used.
    """
    snapshot = np.asarray(snapshot, dtype=float)
    types = np.asarray(types, dtype=int)
    if snapshot.ndim != 3 or snapshot.shape[-1] != 2:
        raise ValueError("snapshot must have shape (n_samples, n_particles, 2)")
    if types.shape != (snapshot.shape[1],):
        raise ValueError("types must have shape (n_particles,)")
    mode = ObserverMode(mode)

    resolved = mode
    if mode is ObserverMode.AUTO:
        resolved = (
            ObserverMode.CLUSTERS if snapshot.shape[1] > AUTO_CLUSTER_THRESHOLD else ObserverMode.PARTICLES
        )

    if resolved is ObserverMode.PARTICLES:
        return ObserverSet(values=snapshot.copy(), observer_types=types.copy(), mode=resolved)

    coarse = coarse_grain_snapshot(
        snapshot, types, n_clusters, rng=as_generator(rng)
    )
    return ObserverSet(
        values=coarse.means,
        observer_types=coarse.observer_types,
        mode=resolved,
    )
