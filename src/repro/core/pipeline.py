"""End-to-end experiment runner: simulate an ensemble, measure self-organization.

This is the entry point the examples and the benchmark harness use.  One call
to :func:`run_experiment` corresponds to one curve of the paper's figures:
a particle model specification (:class:`~repro.particles.model.SimulationConfig`),
an ensemble size, and a measurement configuration
(:class:`~repro.core.self_organization.AnalysisConfig`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.self_organization import (
    AnalysisConfig,
    SelfOrganizationAnalysis,
    SelfOrganizationResult,
)
from repro.particles.ensemble import EnsembleSimulator
from repro.particles.model import SimulationConfig
from repro.particles.trajectory import EnsembleTrajectory

__all__ = ["ExperimentResult", "run_experiment", "run_simulation_only"]


@dataclass
class ExperimentResult:
    """Everything produced by one experiment run.

    Attributes
    ----------
    simulation_config / analysis_config / n_samples / seed:
        The full specification needed to re-run the experiment.
    measurement:
        The multi-information (and optional entropy / decomposition) series.
    mean_force_norm:
        Ensemble-mean summed force norm per recorded step (equilibration
        diagnostic).
    fraction_at_equilibrium:
        Fraction of samples satisfying the force criterion at the final step.
    ensemble:
        The raw trajectory, kept only when requested (large).
    wall_time_seconds:
        Breakdown of simulation vs measurement runtime.
    """

    simulation_config: SimulationConfig
    analysis_config: AnalysisConfig
    n_samples: int
    seed: int | None
    measurement: SelfOrganizationResult
    mean_force_norm: np.ndarray
    fraction_at_equilibrium: float
    ensemble: EnsembleTrajectory | None = None
    wall_time_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def delta_multi_information(self) -> float:
        """Increase of multi-information over the run (ΔI)."""
        return self.measurement.delta_multi_information

    def summary(self) -> dict[str, Any]:
        """Compact JSON-serialisable summary used by the benchmark harness."""
        return {
            "n_samples": self.n_samples,
            "n_particles": self.simulation_config.n_particles,
            "n_types": self.simulation_config.n_types,
            "force": self.simulation_config.force,
            "cutoff": self.simulation_config.cutoff,
            "engine": self.simulation_config.engine,
            "resolved_engine": self.simulation_config.resolved_engine,
            "auto_reresolve_every": self.simulation_config.auto_reresolve_every,
            "neighbor_backend": self.simulation_config.neighbor_backend,
            "n_steps": self.simulation_config.n_steps,
            "seed": self.seed,
            "initial_multi_information": self.measurement.initial_multi_information,
            "final_multi_information": self.measurement.final_multi_information,
            "delta_multi_information": self.delta_multi_information,
            "fraction_at_equilibrium": self.fraction_at_equilibrium,
            "observer_mode": self.measurement.observer_mode,
            "n_observers": self.measurement.n_observers,
            "wall_time_seconds": dict(self.wall_time_seconds),
        }


def run_simulation_only(
    simulation_config: SimulationConfig,
    n_samples: int,
    *,
    seed: int | None = None,
    n_jobs: int | None = None,
) -> tuple[EnsembleTrajectory, EnsembleSimulator]:
    """Simulate an ensemble without measuring it (used by shape-only figures)."""
    simulator = EnsembleSimulator(simulation_config, n_samples, seed=seed)
    ensemble = simulator.run(n_jobs=n_jobs)
    return ensemble, simulator


def run_experiment(
    simulation_config: SimulationConfig,
    n_samples: int,
    *,
    analysis_config: AnalysisConfig | None = None,
    seed: int | None = None,
    n_jobs: int | None = None,
    keep_ensemble: bool = False,
) -> ExperimentResult:
    """Simulate an ensemble and measure its self-organization.

    Parameters
    ----------
    simulation_config:
        The particle model and run length.
    n_samples:
        Ensemble size ``m`` (paper: 500–1000).
    analysis_config:
        Measurement configuration; defaults to :class:`AnalysisConfig()`.
    seed:
        Seed of the simulation's random streams (the analysis has its own
        seed inside ``analysis_config``).
    n_jobs:
        Process-pool width for the simulation batches (``None`` = serial).
    keep_ensemble:
        Attach the raw trajectory to the result (memory-heavy; off by default).
    """
    analysis_config = analysis_config or AnalysisConfig()

    t0 = time.perf_counter()
    ensemble, simulator = run_simulation_only(
        simulation_config, n_samples, seed=seed, n_jobs=n_jobs
    )
    t1 = time.perf_counter()
    measurement = SelfOrganizationAnalysis(analysis_config).analyze(
        ensemble, domain=simulation_config.resolved_domain
    )
    t2 = time.perf_counter()

    stats = simulator.last_stats
    assert stats is not None
    return ExperimentResult(
        simulation_config=simulation_config,
        analysis_config=analysis_config,
        n_samples=n_samples,
        seed=seed,
        measurement=measurement,
        mean_force_norm=stats.mean_force_norm,
        fraction_at_equilibrium=stats.fraction_at_equilibrium,
        ensemble=ensemble if keep_ensemble else None,
        wall_time_seconds={
            "simulation": t1 - t0,
            "measurement": t2 - t1,
            "total": t2 - t0,
        },
    )
