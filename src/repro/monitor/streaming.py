"""Sliding-window streaming estimators over ensemble snapshots.

Each estimator evaluates one information-dynamics quantity on the current
window — an array of shape ``(window, n_samples, n_particles, 2)`` as
produced by :meth:`~repro.monitor.window.WindowBuffer.view` (chronological,
oldest frame first).

The equivalence contract: :meth:`StreamingEstimator.compute` routes the
window through the *same* public estimator entry points the post-hoc
analysis uses (:func:`repro.infotheory.ksg.ksg_multi_information`,
:func:`repro.infotheory.transfer.transfer_entropy`), with observables
constructed exactly the way :mod:`repro.analysis.information_dynamics`
constructs them.  A streamed value therefore equals the post-hoc estimator
applied to the same window slice of the recorded trajectory — bitwise on the
dense backend, within float tolerance on kdtree (pinned in
``tests/test_monitor.py``).  Trees (and dense distance blocks) are only
built at emission time, i.e. every ``stride`` steps of the driving monitor.
"""

from __future__ import annotations

import numpy as np

from repro.infotheory.ksg import ksg_multi_information
from repro.infotheory.transfer import transfer_entropy

__all__ = [
    "StreamingEstimator",
    "StreamingMultiInformation",
    "StreamingTransferEntropy",
]


class StreamingEstimator:
    """One named metric evaluated on a window of ensemble snapshots."""

    name: str = "metric"

    def compute(self, window: np.ndarray) -> float:  # pragma: no cover - abstract
        """Value of the metric on ``window`` of shape ``(w, m, n, 2)``."""
        raise NotImplementedError

    @staticmethod
    def _validate(window: np.ndarray) -> np.ndarray:
        window = np.asarray(window, dtype=float)
        if window.ndim != 4 or window.shape[-1] != 2:
            raise ValueError(
                f"window must have shape (window, n_samples, n_particles, 2), "
                f"got {window.shape}"
            )
        return window


class StreamingMultiInformation(StreamingEstimator):
    """KSG multi-information between particles, pooled over the window.

    Each particle contributes one observer block of all its ``(sample, step)``
    positions in the window (``window × n_samples`` points in 2D) — the same
    pooled-cloud construction as the benchmark's ``multi_ksg2`` row.  Rising
    values mean the particles' positions are becoming mutually informative,
    the streaming counterpart of the paper's ΔI diagnostic.
    """

    def __init__(
        self,
        particles: tuple[int, ...] | list[int] | None = None,
        *,
        k: int = 4,
        variant: str = "ksg2",
        backend: str = "dense",
        workers: int = 1,
        name: str = "multi_information",
    ) -> None:
        self.particles = None if particles is None else tuple(int(p) for p in particles)
        self.k = int(k)
        self.variant = variant
        self.backend = backend
        self.workers = workers
        self.name = name

    def compute(self, window: np.ndarray) -> float:
        window = self._validate(window)
        particles = (
            range(window.shape[2]) if self.particles is None else self.particles
        )
        blocks = [window[:, :, p, :].reshape(-1, 2) for p in particles]
        return float(
            ksg_multi_information(
                blocks,
                k=self.k,
                variant=self.variant,
                backend=self.backend,
                workers=self.workers,
            )
        )


class StreamingTransferEntropy(StreamingEstimator):
    """Transfer entropy source → target over the window's step sequence.

    The window is reshaped into the per-particle ``(n_samples, window, 2)``
    series the post-hoc pairwise pipeline uses
    (:func:`repro.analysis.information_dynamics.particle_series`) and handed
    to :func:`repro.infotheory.transfer.transfer_entropy` — pooled
    ``n_samples × (window - history)`` realisations per emission.
    """

    def __init__(
        self,
        source: int = 0,
        target: int = 1,
        *,
        history: int = 1,
        k: int = 4,
        backend: str = "dense",
        workers: int = 1,
        name: str | None = None,
    ) -> None:
        if source == target:
            raise ValueError("source and target particles must differ")
        self.source = int(source)
        self.target = int(target)
        self.history = int(history)
        self.k = int(k)
        self.backend = backend
        self.workers = workers
        self.name = name if name is not None else "transfer_entropy"

    def _series(self, window: np.ndarray, particle: int) -> np.ndarray:
        # Same layout as particle_series: (n_samples, n_steps, 2), contiguous.
        return np.ascontiguousarray(window[:, :, particle, :].transpose(1, 0, 2))

    def compute(self, window: np.ndarray) -> float:
        window = self._validate(window)
        if window.shape[0] <= self.history:
            raise ValueError(
                f"window of {window.shape[0]} step(s) is too short for "
                f"history={self.history}; use window >= history + 1"
            )
        return float(
            transfer_entropy(
                self._series(window, self.source),
                self._series(window, self.target),
                history=self.history,
                k=self.k,
                backend=self.backend,
                workers=self.workers,
            )
        )
