"""The monitor: a step observer that streams windowed metrics as a run evolves.

:class:`InformationMonitor` implements the engines'
:class:`~repro.monitor.observer.StepObserver` hook: every recorded ensemble
snapshot is pushed into a shared :class:`~repro.monitor.window.WindowBuffer`,
and once the window has filled, every attached streaming estimator is
evaluated every ``stride`` steps.  Each emission lands in a
:class:`~repro.monitor.metrics.MetricsStream` (in-memory + optional JSONL)
and is forwarded to an optional ``on_emit`` callback — the CLI's live
metric-line/sparkline printer.

:func:`replay_ensemble` drives the same machinery over an already recorded
:class:`~repro.particles.trajectory.EnsembleTrajectory` (for benchmarks and
offline re-analysis); :func:`posthoc_window_value` is the buffer-free
reference the equivalence tests and the smoke script compare emissions
against.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.monitor.metrics import MetricRow, MetricsStream
from repro.monitor.streaming import StreamingEstimator
from repro.monitor.window import WindowBuffer

__all__ = ["InformationMonitor", "replay_ensemble", "posthoc_window_value"]


class InformationMonitor:
    """Streams windowed information metrics from a running simulation.

    Parameters
    ----------
    estimators:
        The :class:`~repro.monitor.streaming.StreamingEstimator` instances to
        evaluate per emission (their ``name``s key the metric rows).
    window:
        Window width in recorded steps; the first emission happens at the
        first step for which a full window exists (step ``window - 1`` of a
        run observed from its initial frame).
    stride:
        Emission cadence: after the first emission, one emission every
        ``stride`` further recorded steps.  Distance structures (kd-trees,
        dense blocks) are only rebuilt at emissions, so ``stride`` directly
        rations the estimator cost.
    stream:
        Metrics sink; a fresh in-memory :class:`MetricsStream` by default.
    on_emit:
        Optional callback invoked with every emitted :class:`MetricRow`.
    """

    def __init__(
        self,
        estimators: Sequence[StreamingEstimator],
        *,
        window: int,
        stride: int = 1,
        stream: MetricsStream | None = None,
        on_emit: Callable[[MetricRow], None] | None = None,
    ) -> None:
        estimators = list(estimators)
        if not estimators:
            raise ValueError("the monitor needs at least one streaming estimator")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.estimators = estimators
        self.window = int(window)
        self.stride = int(stride)
        self.buffer = WindowBuffer(window)
        self.stream = stream if stream is not None else MetricsStream()
        self.on_emit = on_emit

    @property
    def n_emissions(self) -> int:
        """Number of emission points so far (each evaluates every estimator)."""
        if self.buffer.n_seen < self.window:
            return 0
        return (self.buffer.n_seen - self.window) // self.stride + 1

    # StepObserver ------------------------------------------------------- #
    def on_step(self, step: int, positions: np.ndarray) -> None:
        """Engine hook: buffer the frame and emit when the cadence says so."""
        self.buffer.push(positions)
        if not self.buffer.full:
            return
        if (self.buffer.n_seen - self.window) % self.stride != 0:
            return
        window = self.buffer.view()
        for estimator in self.estimators:
            t0 = time.perf_counter()
            value = estimator.compute(window)
            wall_ms = (time.perf_counter() - t0) * 1e3
            row = self.stream.record(
                step=step,
                window=self.window,
                metric=estimator.name,
                value=value,
                wall_ms=wall_ms,
            )
            if self.on_emit is not None:
                self.on_emit(row)


def replay_ensemble(
    ensemble,
    estimators: Sequence[StreamingEstimator],
    *,
    window: int,
    stride: int = 1,
    stream: MetricsStream | None = None,
    on_emit: Callable[[MetricRow], None] | None = None,
) -> MetricsStream:
    """Drive a monitor over a recorded ensemble trajectory, frame by frame.

    Produces exactly the rows a live run with the same parameters would have
    emitted (same steps, same values) — useful for offline re-analysis and
    for timing the streaming path in benchmarks.
    """
    monitor = InformationMonitor(
        estimators, window=window, stride=stride, stream=stream, on_emit=on_emit
    )
    for step in range(ensemble.n_steps):
        monitor.on_step(step, ensemble.positions[step])
    return monitor.stream


def posthoc_window_value(
    estimator: StreamingEstimator, positions: np.ndarray, step: int, window: int
) -> float:
    """The post-hoc reference value for an emission at ``step``.

    Slices the recorded positions array ``(n_steps, m, n, 2)`` to the window
    ending at ``step`` and applies the estimator directly — no buffer, no
    streaming machinery.  The streaming emission must equal this (bitwise on
    the dense backend).
    """
    start = step - window + 1
    if start < 0:
        raise ValueError(f"step {step} has no complete window of {window} step(s)")
    return estimator.compute(np.asarray(positions[start : step + 1], dtype=float))
