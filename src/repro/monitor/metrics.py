"""Metric rows and the in-memory / JSONL metrics sink.

A :class:`MetricsStream` is the landing zone for everything the monitor
emits: each emission is one :class:`MetricRow` appended to an in-memory list
and — when a path is given — one JSON line appended (and flushed) to an
append-only JSONL file, so a crash mid-run loses at most the in-flight row.

The JSONL rows are self-describing dictionaries, so the file round-trips
through :meth:`MetricsStream.load` and is the exact payload ``repro watch``
persists into a run store as the ``<hash>.metrics.jsonl`` auxiliary
artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Any, Iterable

__all__ = ["MetricRow", "MetricsStream"]


@dataclass(frozen=True)
class MetricRow:
    """One emitted metric value.

    ``step`` is the recorded step the window ends at, ``window`` the window
    width in recorded steps, ``wall_ms`` the wall time the streaming
    estimator spent on this emission (volatile — excluded from equality
    checks against post-hoc recomputes).
    """

    step: int
    window: int
    metric: str
    value: float
    wall_ms: float

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricRow":
        return cls(
            step=int(data["step"]),
            window=int(data["window"]),
            metric=str(data["metric"]),
            value=float(data["value"]),
            wall_ms=float(data["wall_ms"]),
        )


class MetricsStream:
    """Append-only sink for metric rows: in-memory always, JSONL optionally."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.rows: list[MetricRow] = []
        self.path = Path(path) if path is not None else None
        self._handle: IO[str] | None = None

    def record(
        self, *, step: int, window: int, metric: str, value: float, wall_ms: float
    ) -> MetricRow:
        """Append one row (and flush it to the JSONL file, if any)."""
        row = MetricRow(
            step=int(step),
            window=int(window),
            metric=str(metric),
            value=float(value),
            wall_ms=float(wall_ms),
        )
        self.rows.append(row)
        if self.path is not None:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf8")
            self._handle.write(row.to_json() + "\n")
            self._handle.flush()
        return row

    def values(self, metric: str) -> list[float]:
        """All recorded values of one metric, in emission order."""
        return [row.value for row in self.rows if row.metric == metric]

    def metrics(self) -> list[str]:
        """Distinct metric names, in first-emission order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.metric, None)
        return list(seen)

    def to_jsonl(self) -> str:
        """The whole stream as JSONL text (the store-artifact payload)."""
        return "".join(row.to_json() + "\n" for row in self.rows)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MetricsStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.rows)

    @staticmethod
    def parse(text: str) -> list[MetricRow]:
        """Parse JSONL text (one row per non-empty line) into metric rows."""
        rows = []
        for line in text.splitlines():
            line = line.strip()
            if line:
                rows.append(MetricRow.from_dict(json.loads(line)))
        return rows

    @classmethod
    def load(cls, path: str | Path) -> list[MetricRow]:
        """Read the rows a previous stream appended to ``path``."""
        return cls.parse(Path(path).read_text(encoding="utf8"))

    @classmethod
    def from_rows(cls, rows: Iterable[MetricRow]) -> "MetricsStream":
        """An in-memory stream pre-populated with existing rows."""
        stream = cls()
        stream.rows.extend(rows)
        return stream
