"""Sliding-window ring buffer over per-step simulation snapshots.

The buffer backs the streaming estimators: every recorded step pushes one
frame, and once ``window`` frames have arrived, :meth:`WindowBuffer.view`
exposes the current window as one contiguous chronological array.

The storage is the classic amortised sliding layout — a block of
``2 × window`` slots written left to right.  While the write position moves
through the block, a slide reuses the unchanged window prefix *in place*
(zero copies; only the new frame is written); only when the block runs out
is the live window compacted back to the front, i.e. each frame is copied at
most once over its whole lifetime.  ``view`` is therefore always a zero-copy
slice, which is what lets the streaming estimators hand the exact window
bytes to the post-hoc estimator kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WindowBuffer"]


class WindowBuffer:
    """Fixed-width sliding window of equally shaped snapshot arrays."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._storage: np.ndarray | None = None
        self._pos = 0  # one past the most recent frame in storage
        self._count = 0  # total frames ever pushed

    @property
    def n_seen(self) -> int:
        """Total number of frames pushed so far."""
        return self._count

    @property
    def full(self) -> bool:
        """Whether a complete window is available."""
        return self._count >= self.window

    def push(self, frame: np.ndarray) -> None:
        """Append one snapshot (any fixed shape; float64 storage)."""
        frame = np.asarray(frame, dtype=float)
        if self._storage is None:
            self._storage = np.empty((2 * self.window, *frame.shape))
        elif frame.shape != self._storage.shape[1:]:
            raise ValueError(
                f"frame shape {frame.shape} does not match the buffer's "
                f"{self._storage.shape[1:]}"
            )
        if self._pos == self._storage.shape[0]:
            # Out of slots: compact the live window's trailing frames to the
            # front (the single copy a frame ever experiences).
            keep = self.window - 1
            self._storage[:keep] = self._storage[self._pos - keep : self._pos]
            self._pos = keep
        self._storage[self._pos] = frame
        self._pos += 1
        self._count += 1

    def view(self) -> np.ndarray:
        """The current window, oldest frame first — a zero-copy slice.

        The returned array is only valid until the next :meth:`push`.  Before
        the buffer is full it holds the frames seen so far.
        """
        if self._storage is None:
            raise ValueError("the buffer is empty")
        size = min(self._count, self.window)
        return self._storage[self._pos - size : self._pos]
