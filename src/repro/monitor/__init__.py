"""Live information-dynamics monitoring for running simulations.

Everything the analysis layer measures post-hoc — multi-information, transfer
entropy — this subsystem streams *while the simulation runs*:

* :class:`StepObserver` is the step-hook protocol the particle engines call
  for every recorded step (attach with
  :meth:`~repro.particles.ensemble.EnsembleSimulator.add_observer`);
* :class:`WindowBuffer` maintains a sliding window of per-step ensemble
  snapshots with an amortised in-place layout (the unchanged window prefix is
  reused, never recopied per step);
* :class:`StreamingMultiInformation` / :class:`StreamingTransferEntropy`
  evaluate the existing KSG/TE estimators over the current window — each
  emitted value equals the post-hoc estimator applied to the same window
  slice (bitwise on the dense backend, float tolerance on kdtree);
* :class:`MetricsStream` records ``(step, window, metric, value, wall_ms)``
  rows in memory and (optionally) as append-only JSONL;
* :class:`InformationMonitor` ties the pieces together into one observer
  that emits every ``stride`` steps once the window has filled.

See the README's "Live monitoring" section and ``repro watch`` for the CLI
entry point.
"""

from repro.monitor.live import InformationMonitor, posthoc_window_value, replay_ensemble
from repro.monitor.metrics import MetricRow, MetricsStream
from repro.monitor.observer import StepObserver
from repro.monitor.streaming import (
    StreamingEstimator,
    StreamingMultiInformation,
    StreamingTransferEntropy,
)
from repro.monitor.window import WindowBuffer

__all__ = [
    "StepObserver",
    "WindowBuffer",
    "StreamingEstimator",
    "StreamingMultiInformation",
    "StreamingTransferEntropy",
    "MetricRow",
    "MetricsStream",
    "InformationMonitor",
    "replay_ensemble",
    "posthoc_window_value",
]
