"""The step-hook protocol the particle engines call for every recorded step.

The engines duck-type against this protocol (they never import it), so any
object with a matching ``on_step`` works — :class:`~repro.monitor.live
.InformationMonitor` is the canonical implementation.

Contract for implementations:

* ``positions`` is a **read-only view** of the frame the engine just
  recorded — ``(n, 2)`` for a :class:`~repro.particles.model.ParticleSystem`,
  ``(m, n, 2)`` for an :class:`~repro.particles.ensemble.EnsembleSimulator`
  batch.  Copy it if you need to keep it beyond the call.
* Observers must not touch the engine's RNG or mutate any simulation state:
  an attached observer leaves the engine's trajectories bit-identical to an
  unobserved run (pinned in ``tests/test_monitor.py``).
* ``step`` counts recorded steps; the initial configuration arrives as
  step 0.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["StepObserver"]


@runtime_checkable
class StepObserver(Protocol):
    """Anything the simulation engines can notify about recorded steps."""

    def on_step(self, step: int, positions: np.ndarray) -> None:
        """Called after the engine records step ``step`` with its frame."""
        ...  # pragma: no cover - protocol body
