"""Simulation domains: the geometry pairwise displacements live in.

The paper's particle model (§4–5) runs in the free plane, but the same
dynamics are well defined on wrapped and bounded domains — the regime of
lattice-style interacting particle systems, where a fixed box size turns
particle count into a *density* control that free-space collectives cannot
express.  Four domains are provided:

* :class:`FreeDomain` — the unbounded plane (the paper's setting, and the
  default everywhere).  Displacements are plain differences and positions are
  never touched.
* :class:`PeriodicDomain` — the torus ``[0, Lx) × [0, Ly)``.  Displacements
  use the minimum-image convention per axis (each particle interacts with the
  *nearest* periodic image of its neighbour), and positions are wrapped back
  into the box after every integration step.
* :class:`ReflectingDomain` — the closed box ``[0, Lx] × [0, Ly]`` with
  reflecting (billiard) walls.  Displacements are the free-space ones;
  positions that leave the box after a step are folded back by reflection.
* :class:`ChannelDomain` — the mixed-boundary channel, periodic in ``x`` and
  reflecting in ``y``: minimum-image displacements along ``x`` only, billiard
  walls along ``y``.

Every bounded domain is **per-axis**: its geometry is a pair of extents
:attr:`Domain.extents` ``= (Lx, Ly)`` plus a boolean mask
:attr:`Domain.periodic_axes` saying which axes wrap.  Square boxes are the
special case ``Lx == Ly``, and their spec strings canonicalise to the
historical scalar form (``"periodic:8.0"``) so pre-existing content hashes —
and every warm ``RunStore`` — stay byte-for-byte valid.

Every layer of the particle stack consumes the same two primitives:
:meth:`Domain.displacement` feeds the force kernels and the exact distance
filters of all neighbour backends (so dense and sparse drift stay
bit-identical on every domain), and :meth:`Domain.wrap` is applied by the
integrators after each step.  :class:`FreeDomain` implements both as exact
identities of the existing free-space arithmetic, and the square-box domains
keep the exact full-array arithmetic of the scalar-box era, which is what
keeps existing trajectories bit-identical through this generalisation.

Domains are configured on :class:`~repro.particles.model.SimulationConfig`
via a compact spec string (``"free"``, ``"periodic:8.0"``,
``"periodic:8.0,4.0"``, ``"reflecting:5.0"``, ``"channel:12.0,3.0"``; the
CLI exposes the same syntax as ``--domain``) and resolved with
:func:`get_domain`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Domain",
    "FreeDomain",
    "PeriodicDomain",
    "ReflectingDomain",
    "ChannelDomain",
    "DOMAINS",
    "get_domain",
]


class Domain(abc.ABC):
    """Geometry of the simulation: displacement convention plus position wrapping."""

    name: str = ""

    #: Box geometry for bounded domains: the scalar side for square boxes
    #: (the historical representation), the ``(Lx, Ly)`` tuple for anisotropic
    #: ones, ``None`` on the free plane.  Use :attr:`extents` for uniform
    #: per-axis access.
    box: "float | tuple[float, float] | None" = None

    #: Which axes wrap periodically (minimum-image convention); reflecting
    #: and free axes are ``False``.
    periodic_axes: tuple[bool, bool] = (False, False)

    @property
    def extents(self) -> "tuple[float, float] | None":
        """Per-axis box sides ``(Lx, Ly)``, or ``None`` on the free plane."""
        return None

    @property
    def bounded(self) -> bool:
        """Whether positions are confined to a fixed box (any non-free domain)."""
        return self.extents is not None

    @abc.abstractmethod
    def displacement(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Displacement ``a - b`` under this domain's convention.

        Broadcasts like plain subtraction; every force kernel and every
        neighbour backend's exact distance filter goes through this one
        function, which is what makes backend and engine choice a pure
        performance decision on every domain.
        """

    @abc.abstractmethod
    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions onto the domain's canonical coordinates.

        Applied by the integrators after every step (and to externally
        supplied initial conditions).  The free domain returns its input
        unchanged — not merely equal — so free-space trajectories stay
        bit-identical to the domain-unaware code path.
        """

    @property
    def spec(self) -> str:
        """Canonical spec string (``"free"``, ``"periodic:8.0"``, ``"channel:8.0,2.0"``).

        Square boxes canonicalise to the scalar single-side form — byte
        identical to the spec the scalar-box era produced, which keeps every
        pre-existing content hash (and warm ``RunStore``) valid.
        """
        extents = self.extents
        if extents is None:
            return self.name
        if extents[0] == extents[1]:
            return f"{self.name}:{extents[0]!r}"
        return f"{self.name}:{extents[0]!r},{extents[1]!r}"

    def validate_cutoff(self, cutoff: float | None) -> None:
        """Raise if an interaction cut-off is incompatible with this domain."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.spec!r})"


@dataclass(frozen=True)
class FreeDomain(Domain):
    """The unbounded plane — the paper's setting and the default."""

    name = "free"
    box = None

    def displacement(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a, dtype=float) - np.asarray(b, dtype=float)

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        return np.asarray(positions, dtype=float)


def _check_extents(box) -> tuple[float, float]:
    """Normalise a scalar side or ``(Lx, Ly)`` pair to a validated tuple."""
    if isinstance(box, (tuple, list, np.ndarray)):
        if len(box) != 2:
            raise ValueError(
                f"domain extents must be a scalar side or an (Lx, Ly) pair, got {box!r}"
            )
        values = (float(box[0]), float(box[1]))
    else:
        side = float(box)
        values = (side, side)
    for value in values:
        if not np.isfinite(value) or value <= 0:
            raise ValueError(f"domain box side must be a positive finite float, got {value}")
    return values


def _wrap_periodic(values: np.ndarray, side: float) -> np.ndarray:
    wrapped = np.mod(values, side)
    # np.mod can round up to the modulus itself for tiny negative inputs;
    # canonical coordinates must stay strictly inside [0, side).
    return np.where(wrapped >= side, 0.0, wrapped)


def _fold_reflecting(values: np.ndarray, side: float) -> np.ndarray:
    # Fold along the triangle wave of period 2L: arbitrary excursions
    # (several box lengths in one step) reflect back into [0, L].
    folded = np.mod(values, 2.0 * side)
    return np.where(folded > side, 2.0 * side - folded, folded)


@dataclass(frozen=True)
class _BoxedDomain(Domain):
    """Shared per-axis geometry of the bounded domains.

    Subclasses declare :attr:`periodic_axes`; ``wrap``/``displacement``/
    ``validate_cutoff`` are derived per axis.  Square boxes with uniform
    boundary conditions take the exact full-array arithmetic of the
    scalar-box era, so their trajectories stay bit-identical.
    """

    box: "float | tuple[float, float]"

    def __post_init__(self) -> None:
        extents = _check_extents(self.box)
        object.__setattr__(self, "_extents", extents)
        # Canonical field value: the historical scalar for square boxes (so
        # PeriodicDomain(8.0) == PeriodicDomain((8.0, 8.0)) and legacy
        # `domain.box / 2` call sites keep working), the tuple otherwise.
        object.__setattr__(self, "box", extents[0] if extents[0] == extents[1] else extents)

    @property
    def extents(self) -> tuple[float, float]:
        return self._extents

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        (side_x, side_y) = self.extents
        (per_x, per_y) = self.periodic_axes
        wrappers = (_wrap_periodic if per_x else _fold_reflecting,
                    _wrap_periodic if per_y else _fold_reflecting)
        if side_x == side_y and per_x == per_y:
            return wrappers[0](positions, side_x)
        out = np.empty_like(positions)
        out[..., 0] = wrappers[0](positions[..., 0], side_x)
        out[..., 1] = wrappers[1](positions[..., 1], side_y)
        return out

    def displacement(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        (per_x, per_y) = self.periodic_axes
        if not (per_x or per_y):
            # No wrapping axis: billiard walls never alias images, the
            # displacement is the free-space one.
            return np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        # Wrapping both ends first keeps far-from-origin inputs from losing
        # precision in the image subtraction, and because every neighbour
        # backend and both drift kernels call this one function on the same
        # raw positions, they all filter on the same floats.
        delta = self.wrap(a) - self.wrap(b)
        (side_x, side_y) = self.extents
        if per_x and per_y and side_x == side_y:
            return delta - side_x * np.round(delta / side_x)
        if per_x:
            delta[..., 0] -= side_x * np.round(delta[..., 0] / side_x)
        if per_y:
            delta[..., 1] -= side_y * np.round(delta[..., 1] / side_y)
        return delta

    def validate_cutoff(self, cutoff: float | None) -> None:
        # The minimum-image convention pairs each particle with the nearest
        # image only; a finite cut-off beyond L/2 on a periodic axis would
        # have to see further images, which no backend models.  (None/inf
        # means "all pairs via their nearest image", which stays well
        # defined; reflecting axes impose no constraint.)
        if cutoff is None or not np.isfinite(cutoff):
            return
        limits = [
            side / 2.0
            for side, periodic in zip(self.extents, self.periodic_axes)
            if periodic
        ]
        if limits and cutoff > min(limits):
            raise ValueError(
                f"cutoff {cutoff} exceeds half the periodic box ({min(limits)}); "
                "the minimum-image convention requires r_c <= L/2 on every "
                "periodic axis (or an unconstrained cutoff)"
            )


@dataclass(frozen=True)
class PeriodicDomain(_BoxedDomain):
    """Torus ``[0, Lx) × [0, Ly)`` with per-axis minimum-image displacements."""

    name = "periodic"
    periodic_axes = (True, True)


@dataclass(frozen=True)
class ReflectingDomain(_BoxedDomain):
    """Closed box ``[0, Lx] × [0, Ly]`` with reflecting walls and free displacements."""

    name = "reflecting"
    periodic_axes = (False, False)


@dataclass(frozen=True)
class ChannelDomain(_BoxedDomain):
    """Channel geometry: periodic along ``x``, reflecting walls along ``y``.

    The workhorse mixed boundary condition — a torus seam at ``x = 0 ≡ Lx``
    with billiard walls at ``y = 0`` and ``y = Ly``.  Finite cut-offs must
    satisfy ``r_c ≤ Lx/2`` (the periodic axis only).
    """

    name = "channel"
    periodic_axes = (True, False)


DOMAINS: dict[str, type[Domain]] = {
    "free": FreeDomain,
    "periodic": PeriodicDomain,
    "reflecting": ReflectingDomain,
    "channel": ChannelDomain,
}

_FREE = FreeDomain()


def get_domain(spec: "str | Domain | None") -> Domain:
    """Resolve a domain from a spec string, pass an instance through, default free.

    Accepted specs: ``"free"``, ``"<name>:<L>"`` (square box) and
    ``"<name>:<Lx>,<Ly>"`` (anisotropic box) for ``<name>`` one of
    ``periodic`` / ``reflecting`` / ``channel``.  ``None`` resolves to the
    free plane.  ``"<name>:L"`` and ``"<name>:L,L"`` resolve to the same
    domain and the same canonical spec (hence the same content hash).
    """
    if spec is None:
        return _FREE
    if isinstance(spec, Domain):
        return spec
    text = str(spec).strip().lower()
    name, sep, box_text = text.partition(":")
    if name not in DOMAINS:
        raise KeyError(f"unknown domain {spec!r}; available: {sorted(DOMAINS)}")
    if name == "free":
        if sep:
            raise ValueError(f"the free domain takes no box size, got {spec!r}")
        return _FREE
    if not sep or not box_text:
        raise ValueError(f"domain {name!r} needs a box side, e.g. '{name}:8.0', got {spec!r}")
    parts = [part.strip() for part in box_text.split(",")]
    if len(parts) > 2 or any(not part for part in parts):
        raise ValueError(
            f"domain {name!r} takes one box side or an Lx,Ly pair "
            f"(e.g. '{name}:8.0' or '{name}:8.0,4.0'), got {spec!r}"
        )
    try:
        sides = [float(part) for part in parts]
    except ValueError as exc:
        raise ValueError(f"invalid box side in domain spec {spec!r}") from exc
    box = sides[0] if len(sides) == 1 else (sides[0], sides[1])
    return DOMAINS[name](box=box)
