"""Simulation domains: the geometry pairwise displacements live in.

The paper's particle model (§4–5) runs in the free plane, but the same
dynamics are well defined on wrapped and bounded domains — the regime of
lattice-style interacting particle systems, where a fixed box size turns
particle count into a *density* control that free-space collectives cannot
express.  Three domains are provided:

* :class:`FreeDomain` — the unbounded plane (the paper's setting, and the
  default everywhere).  Displacements are plain differences and positions are
  never touched.
* :class:`PeriodicDomain` — the square torus ``[0, L)²``.  Displacements use
  the minimum-image convention (each particle interacts with the *nearest*
  periodic image of its neighbour), and positions are wrapped back into the
  box after every integration step.
* :class:`ReflectingDomain` — the closed box ``[0, L]²`` with reflecting
  (billiard) walls.  Displacements are the free-space ones; positions that
  leave the box after a step are folded back by reflection.

Every layer of the particle stack consumes the same two primitives:
:meth:`Domain.displacement` feeds the force kernels and the exact distance
filters of all neighbour backends (so dense and sparse drift stay
bit-identical on every domain), and :meth:`Domain.wrap` is applied by the
integrators after each step.  :class:`FreeDomain` implements both as exact
identities of the existing free-space arithmetic, which is what keeps
free-space trajectories — and the content hashes derived from free-space
configurations — byte-for-byte unchanged.

Domains are configured on :class:`~repro.particles.model.SimulationConfig`
via a compact spec string (``"free"``, ``"periodic:8.0"``,
``"reflecting:5.0"``; the CLI exposes the same syntax as ``--domain``) and
resolved with :func:`get_domain`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Domain",
    "FreeDomain",
    "PeriodicDomain",
    "ReflectingDomain",
    "DOMAINS",
    "get_domain",
]


class Domain(abc.ABC):
    """Geometry of the simulation: displacement convention plus position wrapping."""

    name: str = ""

    #: Side length of the box for bounded domains, ``None`` on the free plane.
    box: float | None = None

    @property
    def bounded(self) -> bool:
        """Whether positions are confined to a fixed box (periodic or reflecting)."""
        return self.box is not None

    @abc.abstractmethod
    def displacement(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Displacement ``a - b`` under this domain's convention.

        Broadcasts like plain subtraction; every force kernel and every
        neighbour backend's exact distance filter goes through this one
        function, which is what makes backend and engine choice a pure
        performance decision on every domain.
        """

    @abc.abstractmethod
    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions onto the domain's canonical coordinates.

        Applied by the integrators after every step (and to externally
        supplied initial conditions).  The free domain returns its input
        unchanged — not merely equal — so free-space trajectories stay
        bit-identical to the domain-unaware code path.
        """

    @property
    def spec(self) -> str:
        """Canonical spec string (``"free"``, ``"periodic:8.0"``, …)."""
        if self.box is None:
            return self.name
        return f"{self.name}:{self.box!r}"

    def validate_cutoff(self, cutoff: float | None) -> None:
        """Raise if an interaction cut-off is incompatible with this domain."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({'' if self.box is None else self.box})"


@dataclass(frozen=True)
class FreeDomain(Domain):
    """The unbounded plane — the paper's setting and the default."""

    name = "free"
    box = None

    def displacement(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a, dtype=float) - np.asarray(b, dtype=float)

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        return np.asarray(positions, dtype=float)


def _check_box(box: float) -> float:
    box = float(box)
    if not np.isfinite(box) or box <= 0:
        raise ValueError(f"domain box side must be a positive finite float, got {box}")
    return box


@dataclass(frozen=True)
class PeriodicDomain(Domain):
    """Square torus ``[0, L)²`` with minimum-image displacements."""

    box: float
    name = "periodic"

    def __post_init__(self) -> None:
        object.__setattr__(self, "box", _check_box(self.box))

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        wrapped = np.mod(positions, self.box)
        # np.mod can round up to the modulus itself for tiny negative inputs;
        # canonical coordinates must stay strictly inside [0, box).
        return np.where(wrapped >= self.box, 0.0, wrapped)

    def displacement(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # Wrapping both ends first keeps far-from-origin inputs from losing
        # precision in the image subtraction, and because every neighbour
        # backend and both drift kernels call this one function on the same
        # raw positions, they all filter on the same floats.
        delta = self.wrap(a) - self.wrap(b)
        return delta - self.box * np.round(delta / self.box)

    def validate_cutoff(self, cutoff: float | None) -> None:
        # The minimum-image convention pairs each particle with the nearest
        # image only; a finite cut-off beyond L/2 would have to see further
        # images, which no backend models.  (None/inf means "all pairs via
        # their nearest image", which stays well defined.)
        if cutoff is not None and np.isfinite(cutoff) and cutoff > self.box / 2.0:
            raise ValueError(
                f"cutoff {cutoff} exceeds half the periodic box ({self.box / 2.0}); "
                "the minimum-image convention requires r_c <= L/2 (or an unconstrained cutoff)"
            )


@dataclass(frozen=True)
class ReflectingDomain(Domain):
    """Closed box ``[0, L]²`` with reflecting walls and free-space displacements."""

    box: float
    name = "reflecting"

    def __post_init__(self) -> None:
        object.__setattr__(self, "box", _check_box(self.box))

    def displacement(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a, dtype=float) - np.asarray(b, dtype=float)

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        # Fold along the triangle wave of period 2L: arbitrary excursions
        # (several box lengths in one step) reflect back into [0, L].
        folded = np.mod(positions, 2.0 * self.box)
        return np.where(folded > self.box, 2.0 * self.box - folded, folded)


DOMAINS: dict[str, type[Domain]] = {
    "free": FreeDomain,
    "periodic": PeriodicDomain,
    "reflecting": ReflectingDomain,
}

_FREE = FreeDomain()


def get_domain(spec: "str | Domain | None") -> Domain:
    """Resolve a domain from a spec string, pass an instance through, default free.

    Accepted specs: ``"free"``, ``"periodic:<L>"``, ``"reflecting:<L>"``
    (``<L>`` the box side).  ``None`` resolves to the free plane.
    """
    if spec is None:
        return _FREE
    if isinstance(spec, Domain):
        return spec
    text = str(spec).strip().lower()
    name, sep, box_text = text.partition(":")
    if name not in DOMAINS:
        raise KeyError(f"unknown domain {spec!r}; available: {sorted(DOMAINS)}")
    if name == "free":
        if sep:
            raise ValueError(f"the free domain takes no box size, got {spec!r}")
        return _FREE
    if not sep or not box_text:
        raise ValueError(f"domain {name!r} needs a box side, e.g. '{name}:8.0', got {spec!r}")
    try:
        box = float(box_text)
    except ValueError as exc:
        raise ValueError(f"invalid box side in domain spec {spec!r}") from exc
    return DOMAINS[name](box=box)
