"""Trajectory containers for single runs and ensembles.

Array layout conventions (used across the whole library):

* ``Trajectory.positions``         — ``(n_steps, n_particles, 2)``
* ``EnsembleTrajectory.positions`` — ``(n_steps, n_samples, n_particles, 2)``

Time is always the leading axis so that per-time-step analysis (alignment,
multi-information estimation) is a simple iteration over the first axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = ["Trajectory", "EnsembleTrajectory"]


def _validate_types(types: np.ndarray, n_particles: int) -> np.ndarray:
    # int64 explicitly: these arrays are persisted into .npz artifacts, which
    # must not pick up the platform-dependent meaning of ``dtype=int``.
    types = np.asarray(types, dtype=np.int64)
    if types.shape != (n_particles,):
        raise ValueError(f"types must have shape ({n_particles},), got {types.shape}")
    if types.size and types.min() < 0:
        raise ValueError("type indices must be non-negative")
    return types


@dataclass
class Trajectory:
    """Positions of a single simulation run over time."""

    positions: np.ndarray
    types: np.ndarray
    dt: float = 1.0

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        if self.positions.ndim != 3 or self.positions.shape[-1] != 2:
            raise ValueError(
                f"positions must have shape (n_steps, n_particles, 2), got {self.positions.shape}"
            )
        self.types = _validate_types(self.types, self.positions.shape[1])
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    @property
    def n_steps(self) -> int:
        """Number of recorded frames (including the initial state)."""
        return int(self.positions.shape[0])

    @property
    def n_particles(self) -> int:
        return int(self.positions.shape[1])

    @property
    def n_types(self) -> int:
        return int(self.types.max()) + 1 if self.types.size else 0

    @property
    def times(self) -> np.ndarray:
        """Physical times of the recorded frames."""
        return np.arange(self.n_steps) * self.dt

    def frame(self, step: int) -> np.ndarray:
        """Configuration ``(n_particles, 2)`` at frame ``step`` (negative indexing allowed)."""
        return self.positions[step]

    def final(self) -> np.ndarray:
        """The last recorded configuration."""
        return self.positions[-1]

    def type_indices(self, type_id: int) -> np.ndarray:
        """Indices of particles of the given type."""
        return np.nonzero(self.types == type_id)[0]

    def centroid_path(self) -> np.ndarray:
        """Centroid of the collective at every frame, shape ``(n_steps, 2)``."""
        return self.positions.mean(axis=1)

    def displacement_norms(self) -> np.ndarray:
        """Per-frame total displacement relative to the previous frame, shape ``(n_steps - 1,)``."""
        deltas = np.diff(self.positions, axis=0)
        return np.sqrt(np.einsum("tik,tik->ti", deltas, deltas)).sum(axis=1)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.positions)

    # persistence -------------------------------------------------------- #
    def save(self, path: str | Path) -> None:
        """Write the trajectory to a compressed ``.npz`` archive."""
        np.savez_compressed(Path(path), positions=self.positions, types=self.types, dt=self.dt)

    @classmethod
    def load(cls, path: str | Path) -> "Trajectory":
        """Load a trajectory saved by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(positions=data["positions"], types=data["types"], dt=float(data["dt"]))


@dataclass
class EnsembleTrajectory:
    """Positions of ``n_samples`` independent runs of the same experiment.

    All samples share the particle count, the type assignment and the
    dynamics parameters; only the initial configuration and the noise
    realisation differ.  This is the object the self-organization pipeline
    consumes: the statistics at time ``t`` are taken *across samples*.
    """

    positions: np.ndarray
    types: np.ndarray
    dt: float = 1.0

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        if self.positions.ndim != 4 or self.positions.shape[-1] != 2:
            raise ValueError(
                "positions must have shape (n_steps, n_samples, n_particles, 2), "
                f"got {self.positions.shape}"
            )
        self.types = _validate_types(self.types, self.positions.shape[2])
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    @property
    def n_steps(self) -> int:
        return int(self.positions.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.positions.shape[1])

    @property
    def n_particles(self) -> int:
        return int(self.positions.shape[2])

    @property
    def n_types(self) -> int:
        return int(self.types.max()) + 1 if self.types.size else 0

    @property
    def times(self) -> np.ndarray:
        return np.arange(self.n_steps) * self.dt

    def snapshot(self, step: int) -> np.ndarray:
        """Ensemble snapshot ``(n_samples, n_particles, 2)`` at frame ``step``."""
        return self.positions[step]

    def sample(self, index: int) -> Trajectory:
        """Extract one sample as a :class:`Trajectory`."""
        return Trajectory(positions=self.positions[:, index], types=self.types, dt=self.dt)

    def iter_samples(self) -> Iterator[Trajectory]:
        """Iterate over samples as :class:`Trajectory` objects."""
        for index in range(self.n_samples):
            yield self.sample(index)

    def thin(self, every: int) -> "EnsembleTrajectory":
        """Keep every ``every``-th frame (plus the first); useful before estimation."""
        if every <= 0:
            raise ValueError("every must be positive")
        return EnsembleTrajectory(
            positions=self.positions[::every], types=self.types, dt=self.dt * every
        )

    def subset_samples(self, indices: np.ndarray | list[int]) -> "EnsembleTrajectory":
        """Restrict the ensemble to the given sample indices."""
        indices = np.asarray(indices, dtype=int)
        return EnsembleTrajectory(
            positions=self.positions[:, indices], types=self.types, dt=self.dt
        )

    # persistence -------------------------------------------------------- #
    def save(self, path: str | Path) -> None:
        """Write the ensemble to a compressed ``.npz`` archive."""
        np.savez_compressed(Path(path), positions=self.positions, types=self.types, dt=self.dt)

    @classmethod
    def load(cls, path: str | Path) -> "EnsembleTrajectory":
        """Load an ensemble saved by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(positions=data["positions"], types=data["types"], dt=float(data["dt"]))
