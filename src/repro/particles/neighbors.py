"""Neighbour-search backends for the interaction cut-off radius.

The ensemble path evaluates all pairs in a dense, vectorised kernel (that is
the fastest option for the collective sizes the paper studies, n ≤ 120).  The
single-run :class:`~repro.particles.model.ParticleSystem` can instead use one
of the sparse backends here, which scale to much larger collectives when the
cut-off radius is small compared to the collective diameter:

* :class:`BruteForceNeighbors` — dense distance matrix, thresholded.
* :class:`CellListNeighbors`  — uniform spatial hash with bucket size ``r_c``.
* :class:`KDTreeNeighbors`    — :class:`scipy.spatial.cKDTree` radius query.

All backends return the same representation: ordered index pairs
``(i_idx, j_idx)`` with ``i != j`` and ``dist(i, j) <= radius`` (both
orientations present), which is what the sparse drift kernel consumes.
"""

from __future__ import annotations

import abc
from collections import defaultdict

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "NeighborSearch",
    "BruteForceNeighbors",
    "CellListNeighbors",
    "KDTreeNeighbors",
    "get_neighbor_search",
    "NEIGHBOR_BACKENDS",
]


class NeighborSearch(abc.ABC):
    """Interface of a radius-neighbour search backend."""

    name: str = ""

    @abc.abstractmethod
    def pairs(self, positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        """Return ordered interacting pairs ``(i_idx, j_idx)`` within ``radius``."""

    def neighbor_lists(self, positions: np.ndarray, radius: float) -> list[np.ndarray]:
        """Per-particle arrays of neighbour indices (derived from :meth:`pairs`)."""
        n = np.asarray(positions).shape[0]
        i_idx, j_idx = self.pairs(positions, radius)
        out: list[list[int]] = [[] for _ in range(n)]
        for i, j in zip(i_idx.tolist(), j_idx.tolist()):
            out[i].append(j)
        return [np.asarray(sorted(lst), dtype=int) for lst in out]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


def _validate(positions: np.ndarray, radius: float) -> np.ndarray:
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    if not radius > 0:
        raise ValueError(f"radius must be positive, got {radius}")
    return positions


class BruteForceNeighbors(NeighborSearch):
    """O(n²) dense search; the reference implementation the others are tested against."""

    name = "brute"

    def pairs(self, positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        if not np.isfinite(radius):
            n = positions.shape[0]
            i_idx, j_idx = np.nonzero(~np.eye(n, dtype=bool))
            return i_idx, j_idx
        delta = positions[:, None, :] - positions[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        mask = (dist <= radius) & ~np.eye(positions.shape[0], dtype=bool)
        i_idx, j_idx = np.nonzero(mask)
        return i_idx, j_idx


class CellListNeighbors(NeighborSearch):
    """Uniform-grid spatial hash with cell size equal to the cut-off radius.

    Candidate pairs are restricted to the 3×3 block of cells around each
    particle, then filtered by exact distance.  Linear in ``n`` for bounded
    density, which is the classic molecular-dynamics cell-list trade-off.
    """

    name = "cell"

    def pairs(self, positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        if not np.isfinite(radius):
            return BruteForceNeighbors().pairs(positions, radius)
        n = positions.shape[0]
        if n == 0:
            empty = np.empty(0, dtype=int)
            return empty, empty
        cells = np.floor(positions / radius).astype(np.int64)
        buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        for idx, (cx, cy) in enumerate(map(tuple, cells)):
            buckets[(cx, cy)].append(idx)

        i_out: list[int] = []
        j_out: list[int] = []
        offsets = [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)]
        radius_sq = radius * radius
        for (cx, cy), members in buckets.items():
            members_arr = np.asarray(members, dtype=int)
            candidates: list[int] = []
            for dx, dy in offsets:
                candidates.extend(buckets.get((cx + dx, cy + dy), ()))
            cand_arr = np.asarray(candidates, dtype=int)
            delta = positions[members_arr][:, None, :] - positions[cand_arr][None, :, :]
            dist_sq = np.einsum("ijk,ijk->ij", delta, delta)
            mask = dist_sq <= radius_sq
            mask &= members_arr[:, None] != cand_arr[None, :]
            mi, mj = np.nonzero(mask)
            i_out.extend(members_arr[mi].tolist())
            j_out.extend(cand_arr[mj].tolist())
        return np.asarray(i_out, dtype=int), np.asarray(j_out, dtype=int)


class KDTreeNeighbors(NeighborSearch):
    """SciPy cKDTree radius query (good for large n with moderate density)."""

    name = "kdtree"

    def pairs(self, positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        if not np.isfinite(radius):
            return BruteForceNeighbors().pairs(positions, radius)
        if positions.shape[0] == 0:
            empty = np.empty(0, dtype=int)
            return empty, empty
        tree = cKDTree(positions)
        unordered = tree.query_pairs(r=radius, output_type="ndarray")
        if unordered.size == 0:
            empty = np.empty(0, dtype=int)
            return empty, empty
        i_idx = np.concatenate([unordered[:, 0], unordered[:, 1]])
        j_idx = np.concatenate([unordered[:, 1], unordered[:, 0]])
        return i_idx, j_idx


NEIGHBOR_BACKENDS: dict[str, type[NeighborSearch]] = {
    "brute": BruteForceNeighbors,
    "cell": CellListNeighbors,
    "kdtree": KDTreeNeighbors,
}


def get_neighbor_search(name: str | NeighborSearch) -> NeighborSearch:
    """Resolve a neighbour-search backend by name or pass an instance through."""
    if isinstance(name, NeighborSearch):
        return name
    key = str(name).lower()
    if key not in NEIGHBOR_BACKENDS:
        raise KeyError(f"unknown neighbour backend {name!r}; available: {sorted(NEIGHBOR_BACKENDS)}")
    return NEIGHBOR_BACKENDS[key]()
