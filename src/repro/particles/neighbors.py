"""Neighbour-search backends for the interaction cut-off radius.

These backends feed the sparse drift kernels in
:mod:`repro.particles.engine`, which serve both the single-run
:class:`~repro.particles.model.ParticleSystem` and the batched
:class:`~repro.particles.ensemble.EnsembleSimulator` path.  Whether a run
uses them at all is decided by ``SimulationConfig.engine``: ``"sparse"``
forces the neighbour-pair kernel, ``"dense"`` the all-pairs broadcast, and
``"auto"`` picks sparse only for large collectives (n ≥ 192) whose cut-off
radius is small compared to the collective diameter — the regime in which
pruning pairs actually pays for the cost of the search.  Three backends
trade construction cost against query cost:

* :class:`BruteForceNeighbors` — dense distance matrix, thresholded.
* :class:`CellListNeighbors`  — uniform spatial hash with bucket size ``r_c``.
* :class:`KDTreeNeighbors`    — :class:`scipy.spatial.cKDTree` radius query.

All backends return the same representation: ordered index pairs
``(i_idx, j_idx)`` with ``i != j`` and ``dist(i, j) <= radius`` (both
orientations present), which is what the sparse drift kernel consumes.
"""

from __future__ import annotations

import abc
from collections import defaultdict

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "NeighborSearch",
    "BruteForceNeighbors",
    "CellListNeighbors",
    "KDTreeNeighbors",
    "get_neighbor_search",
    "NEIGHBOR_BACKENDS",
]


class NeighborSearch(abc.ABC):
    """Interface of a radius-neighbour search backend."""

    name: str = ""

    @abc.abstractmethod
    def pairs(self, positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        """Return ordered interacting pairs ``(i_idx, j_idx)`` within ``radius``."""

    def neighbor_lists(self, positions: np.ndarray, radius: float) -> list[np.ndarray]:
        """Per-particle arrays of neighbour indices, each sorted ascending.

        Derived from :meth:`pairs` with a single lexicographic sort and
        :func:`numpy.split` on the per-particle counts — no Python loop over
        pairs, so this stays cheap for large collectives.
        """
        n = np.asarray(positions).shape[0]
        if n == 0:
            return []
        i_idx, j_idx = self.pairs(positions, radius)
        order = np.lexsort((j_idx, i_idx))
        j_sorted = np.asarray(j_idx, dtype=int)[order]
        counts = np.bincount(np.asarray(i_idx, dtype=int), minlength=n)
        return np.split(j_sorted, np.cumsum(counts[:-1]))

    def pairs_batch(
        self, positions: np.ndarray, radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Interacting pairs for a batch of configurations ``(m, n, 2)``.

        Pair indices are flattened into a single index space: particle ``p``
        of sample ``s`` has index ``s * n + p``, so the result can drive one
        segment-sum over the whole snapshot.  Pairs are returned in
        lexicographic ``(sample, i, j)`` order; sequential accumulation in
        that order reproduces the dense kernel's summation order bit-for-bit
        (the contract :mod:`repro.particles.engine` relies on).
        """
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 3 or positions.shape[-1] != 2:
            raise ValueError(f"positions must have shape (m, n, 2), got {positions.shape}")
        m, n, _ = positions.shape
        i_parts: list[np.ndarray] = []
        j_parts: list[np.ndarray] = []
        for sample in range(m):
            i_idx, j_idx = self.pairs(positions[sample], radius)
            offset = sample * n
            i_parts.append(np.asarray(i_idx, dtype=np.int64) + offset)
            j_parts.append(np.asarray(j_idx, dtype=np.int64) + offset)
        if not i_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        i_all = np.concatenate(i_parts)
        j_all = np.concatenate(j_parts)
        order = np.lexsort((j_all, i_all))
        return i_all[order], j_all[order]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


def _validate(positions: np.ndarray, radius: float) -> np.ndarray:
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    if not radius > 0:
        raise ValueError(f"radius must be positive, got {radius}")
    return positions


class BruteForceNeighbors(NeighborSearch):
    """O(n²) dense search; the reference implementation the others are tested against."""

    name = "brute"

    def pairs(self, positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        if not np.isfinite(radius):
            n = positions.shape[0]
            i_idx, j_idx = np.nonzero(~np.eye(n, dtype=bool))
            return i_idx, j_idx
        delta = positions[:, None, :] - positions[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        mask = (dist <= radius) & ~np.eye(positions.shape[0], dtype=bool)
        i_idx, j_idx = np.nonzero(mask)
        return i_idx, j_idx


class CellListNeighbors(NeighborSearch):
    """Uniform-grid spatial hash with cell size equal to the cut-off radius.

    Candidate pairs are restricted to the 3×3 block of cells around each
    particle, then filtered by exact distance.  Linear in ``n`` for bounded
    density, which is the classic molecular-dynamics cell-list trade-off.
    """

    name = "cell"

    def pairs(self, positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        if not np.isfinite(radius):
            return BruteForceNeighbors().pairs(positions, radius)
        n = positions.shape[0]
        if n == 0:
            empty = np.empty(0, dtype=int)
            return empty, empty
        cells = np.floor(positions / radius).astype(np.int64)
        buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        for idx, (cx, cy) in enumerate(map(tuple, cells)):
            buckets[(cx, cy)].append(idx)

        i_out: list[int] = []
        j_out: list[int] = []
        offsets = [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)]
        for (cx, cy), members in buckets.items():
            members_arr = np.asarray(members, dtype=int)
            candidates: list[int] = []
            for dx, dy in offsets:
                candidates.extend(buckets.get((cx + dx, cy + dy), ()))
            cand_arr = np.asarray(candidates, dtype=int)
            delta = positions[members_arr][:, None, :] - positions[cand_arr][None, :, :]
            dist_sq = np.einsum("ijk,ijk->ij", delta, delta)
            # Compare rounded Euclidean distances, not squared ones: for pairs
            # exactly at the cut-off the sqrt can round down onto the radius,
            # and the dense kernel (and BruteForceNeighbors) includes those.
            mask = np.sqrt(dist_sq) <= radius
            mask &= members_arr[:, None] != cand_arr[None, :]
            mi, mj = np.nonzero(mask)
            i_out.extend(members_arr[mi].tolist())
            j_out.extend(cand_arr[mj].tolist())
        return np.asarray(i_out, dtype=int), np.asarray(j_out, dtype=int)


class KDTreeNeighbors(NeighborSearch):
    """SciPy cKDTree radius query (good for large n with moderate density)."""

    name = "kdtree"

    def pairs(self, positions: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        if not np.isfinite(radius):
            return BruteForceNeighbors().pairs(positions, radius)
        if positions.shape[0] == 0:
            empty = np.empty(0, dtype=int)
            return empty, empty
        tree = cKDTree(positions)
        # The tree prunes on squared distances, which can exclude pairs whose
        # rounded Euclidean distance lands exactly on the radius — pairs the
        # dense kernel includes.  Query a few ulps wide, then apply the same
        # sqrt-based filter as BruteForceNeighbors.
        query_radius = radius * (1.0 + 1e-12)
        unordered = tree.query_pairs(r=query_radius, output_type="ndarray")
        if unordered.size == 0:
            empty = np.empty(0, dtype=int)
            return empty, empty
        delta = positions[unordered[:, 0]] - positions[unordered[:, 1]]
        keep = np.sqrt(np.einsum("ij,ij->i", delta, delta)) <= radius
        unordered = unordered[keep]
        i_idx = np.concatenate([unordered[:, 0], unordered[:, 1]])
        j_idx = np.concatenate([unordered[:, 1], unordered[:, 0]])
        return i_idx, j_idx


NEIGHBOR_BACKENDS: dict[str, type[NeighborSearch]] = {
    "brute": BruteForceNeighbors,
    "cell": CellListNeighbors,
    "kdtree": KDTreeNeighbors,
}


def get_neighbor_search(name: str | NeighborSearch) -> NeighborSearch:
    """Resolve a neighbour-search backend by name or pass an instance through."""
    if isinstance(name, NeighborSearch):
        return name
    key = str(name).lower()
    if key not in NEIGHBOR_BACKENDS:
        raise KeyError(f"unknown neighbour backend {name!r}; available: {sorted(NEIGHBOR_BACKENDS)}")
    return NEIGHBOR_BACKENDS[key]()
