"""Neighbour-search backends for the interaction cut-off radius.

These backends feed the sparse drift kernels in
:mod:`repro.particles.engine`, which serve both the single-run
:class:`~repro.particles.model.ParticleSystem` and the batched
:class:`~repro.particles.ensemble.EnsembleSimulator` path.  Whether a run
uses them at all is decided by ``SimulationConfig.engine``: ``"sparse"``
forces the neighbour-pair kernel, ``"dense"`` the all-pairs broadcast, and
``"auto"`` picks sparse only while the cut-off radius is small compared to
the collective diameter — re-checked during the run when adaptive
re-resolution is enabled (see :class:`repro.particles.engine.AdaptiveDriftEngine`).

Choosing a backend
------------------
Three backends trade construction cost against query cost:

* :class:`BruteForceNeighbors` — dense distance matrix, thresholded.  O(n²)
  time and memory; the reference implementation the others are fuzzed
  against, useful for testing only.
* :class:`CellListNeighbors` — fully vectorised uniform spatial hash with
  bucket size ``r_c``.  Linear in ``n`` for bounded density, and the only
  backend with a *native batched* query: :meth:`CellListNeighbors.pairs_batch`
  hashes a whole ensemble snapshot ``(m, n, 2)`` in one shot by prepending a
  sample-id coordinate to the cell key, so there is no per-sample Python on
  the ensemble hot path.  Prefer it for ensembles and for single snapshots
  at roughly uniform density.
* :class:`KDTreeNeighbors` — :class:`scipy.spatial.cKDTree` radius query.
  Good single-snapshot performance for large n with non-uniform density,
  but its batched query falls back to one tree build + query per sample.

Domains
-------
Every query takes an optional :class:`~repro.particles.domain.Domain`.  On
the default free plane (and in a reflecting box, whose displacements are the
free-space ones) the geometry is Euclidean; on any domain with a periodic
axis — the torus (both axes wrap, possibly anisotropic ``Lx ≠ Ly``) or the
mixed channel (periodic in x, reflecting in y) — distances follow the
per-axis minimum-image convention and each backend adapts its candidate
search: the brute force evaluates minimum-image distances directly, the
kdtree builds a per-axis periodic tree (``cKDTree(boxsize=[Lx, Ly])`` with a
0 entry on non-periodic axes), and the cell list switches to per-axis
*modular* cell hashing — the 3×3 neighbourhood wraps around the seam on
periodic axes and steps into ghost padding on reflecting ones — including
the batched query.  Degenerate wrapped geometries (fewer than three cells
along a periodic axis, a cut-off beyond half a periodic extent) fall back to
the minimum-image brute force so the backends always agree.

All backends return the same representation: ordered ``int64`` index pairs
``(i_idx, j_idx)`` with ``i != j`` and ``dist(i, j) <= radius`` (both
orientations present), which is what the sparse drift kernel consumes, and
are pinned against each other by a cross-backend fuzz suite
(``tests/test_neighbors_fuzz.py``) on all three domains.  A non-finite
radius is validated centrally: ``NaN`` is rejected by every backend and
``inf`` means "every ordered pair" everywhere (single and batched queries
alike).
"""

from __future__ import annotations

import abc

import numpy as np
from scipy.spatial import cKDTree

from repro.particles.domain import Domain, get_domain

__all__ = [
    "NeighborSearch",
    "BruteForceNeighbors",
    "CellListNeighbors",
    "KDTreeNeighbors",
    "get_neighbor_search",
    "NEIGHBOR_BACKENDS",
]


class NeighborSearch(abc.ABC):
    """Interface of a radius-neighbour search backend."""

    name: str = ""

    @abc.abstractmethod
    def pairs(
        self, positions: np.ndarray, radius: float, domain: Domain | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ordered interacting pairs ``(i_idx, j_idx)`` within ``radius``."""

    def neighbor_lists(
        self, positions: np.ndarray, radius: float, domain: Domain | None = None
    ) -> list[np.ndarray]:
        """Per-particle arrays of neighbour indices, each sorted ascending.

        Derived from :meth:`pairs` with a single lexicographic sort and
        :func:`numpy.split` on the per-particle counts — no Python loop over
        pairs, so this stays cheap for large collectives.
        """
        n = np.asarray(positions).shape[0]
        if n == 0:
            return []
        i_idx, j_idx = self.pairs(positions, radius, domain)
        order = np.lexsort((j_idx, i_idx))
        j_sorted = np.asarray(j_idx, dtype=np.int64)[order]
        counts = np.bincount(np.asarray(i_idx, dtype=np.int64), minlength=n)
        return np.split(j_sorted, np.cumsum(counts[:-1]))

    def pairs_batch(
        self, positions: np.ndarray, radius: float, domain: Domain | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Interacting pairs for a batch of configurations ``(m, n, 2)``.

        Pair indices are flattened into a single index space: particle ``p``
        of sample ``s`` has index ``s * n + p``, so the result can drive one
        segment-sum over the whole snapshot.  Pairs are returned in
        lexicographic ``(sample, i, j)`` order; sequential accumulation in
        that order reproduces the dense kernel's summation order bit-for-bit
        (the contract :mod:`repro.particles.engine` relies on).

        This generic implementation loops over samples; the cell list
        overrides it with a single vectorised query over the whole snapshot.
        """
        positions = _validate_batch(positions, radius)
        m, n, _ = positions.shape
        i_parts: list[np.ndarray] = []
        j_parts: list[np.ndarray] = []
        for sample in range(m):
            i_idx, j_idx = self.pairs(positions[sample], radius, domain)
            offset = sample * n
            i_parts.append(np.asarray(i_idx, dtype=np.int64) + offset)
            j_parts.append(np.asarray(j_idx, dtype=np.int64) + offset)
        if not i_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        i_all = np.concatenate(i_parts)
        j_all = np.concatenate(j_parts)
        order = np.lexsort((j_all, i_all))
        return i_all[order], j_all[order]

    def neighbor_lists_batch(
        self, positions: np.ndarray, radius: float, domain: Domain | None = None
    ) -> list[list[np.ndarray]]:
        """Per-sample, per-particle neighbour lists for a batch ``(m, n, 2)``.

        Equivalent to calling :meth:`neighbor_lists` on every sample, but
        derived from one :meth:`pairs_batch` query plus a single segment
        split — the indices in each array are *local* to the sample (in
        ``[0, n)``) and sorted ascending.
        """
        positions = _validate_batch(positions, radius)
        m, n, _ = positions.shape
        if n == 0:
            return [[] for _ in range(m)]
        i_idx, j_idx = self.pairs_batch(positions, radius, domain)
        counts = np.bincount(i_idx, minlength=m * n)
        # pairs_batch is lex-sorted by flattened (i, j), so j % n stays
        # ascending within each particle's contiguous block.
        splits = np.split(j_idx % n, np.cumsum(counts[:-1]))
        return [splits[s * n : (s + 1) * n] for s in range(m)]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


def _validate_radius(radius: float) -> float:
    """Shared radius validation: reject NaN (and non-positive) everywhere.

    ``inf`` passes — it means "every ordered pair" and every backend (single
    and batched queries alike) honours it by delegating to the all-pairs
    path, so the backends agree on non-finite radii by construction.
    """
    radius = float(radius)
    if np.isnan(radius):
        raise ValueError("radius must not be NaN")
    if not radius > 0:
        raise ValueError(f"radius must be positive, got {radius}")
    return radius


def _validate(positions: np.ndarray, radius: float) -> np.ndarray:
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    _validate_radius(radius)
    return positions


def _validate_batch(positions: np.ndarray, radius: float) -> np.ndarray:
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 3 or positions.shape[-1] != 2:
        raise ValueError(f"positions must have shape (m, n, 2), got {positions.shape}")
    _validate_radius(radius)
    return positions


class BruteForceNeighbors(NeighborSearch):
    """O(n²) dense search; the reference implementation the others are tested against."""

    name = "brute"

    def pairs(
        self, positions: np.ndarray, radius: float, domain: Domain | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        domain = get_domain(domain)
        if not np.isfinite(radius):
            n = positions.shape[0]
            i_idx, j_idx = np.nonzero(~np.eye(n, dtype=bool))
            return i_idx.astype(np.int64), j_idx.astype(np.int64)
        delta = domain.displacement(positions[:, None, :], positions[None, :, :])
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        mask = (dist <= radius) & ~np.eye(positions.shape[0], dtype=bool)
        i_idx, j_idx = np.nonzero(mask)
        return i_idx.astype(np.int64), j_idx.astype(np.int64)


# ---------------------------------------------------------------------- #
# vectorised spatial hash
# ---------------------------------------------------------------------- #
def _grid_ids(
    positions: np.ndarray, radius: float, sample: np.ndarray | None = None
) -> tuple[np.ndarray, int] | None:
    """Flattened, padded cell id per particle, plus the row stride (free plane).

    Cells of size ``radius`` are shifted to non-negative coordinates and
    padded by one ghost cell on every side, so the id of the cell at offset
    ``(dx, dy)`` from id ``c`` is exactly ``c + dx * stride + dy`` with no
    aliasing across rows.  ``sample`` (batched queries) prepends a leading
    coordinate: each sample occupies its own block of ids, and because the
    blocks are padded, the 3×3 neighbourhood of any cell never reaches into
    another sample's block.

    Returns ``None`` when the id space would overflow ``int64`` (a bounding
    box more than ~10⁹ cells wide); callers fall back to a loop of
    per-sample queries in that degenerate regime.
    """
    cells = np.floor(positions / radius).astype(np.int64)
    cells -= cells.min(axis=0)
    x_extent = int(cells[:, 0].max()) + 3
    stride = int(cells[:, 1].max()) + 3
    n_blocks = 1 if sample is None else int(sample[-1]) + 1
    if n_blocks * x_extent * stride >= np.iinfo(np.int64).max // 2:
        return None
    ids = (cells[:, 0] + 1) * stride + (cells[:, 1] + 1)
    if sample is not None:
        ids += sample * (x_extent * stride)
    return ids, stride


class _BoxedGrid:
    """Per-axis cell grid of a bounded domain with at least one periodic axis.

    Each axis is independently *modular* (periodic: cell ids taken modulo the
    axis cell count, the 3×3 shell wraps around the seam, exact distances use
    the minimum image) or *padded* (reflecting: one ghost cell on each side,
    plain forward offsets, free-space distances).  The square torus is the
    special case where both axes are modular with equal cell counts — its ids,
    targets and filters reduce to exactly the arithmetic of the scalar-box
    era, keeping those pair sets bit-identical.
    """

    __slots__ = ("nx", "ny", "mod_x", "mod_y", "side_x", "side_y", "image_x", "image_y")

    def __init__(self, nx, ny, mod_x, mod_y, side_x, side_y, image_x, image_y):
        self.nx, self.ny = nx, ny
        self.mod_x, self.mod_y = mod_x, mod_y
        self.side_x, self.side_y = side_x, side_y
        #: Minimum-image modulus per axis (``None`` on non-periodic axes).
        self.image_x, self.image_y = image_x, image_y


def _boxed_grid(domain: Domain, radius: float, n_blocks: int = 1) -> "_BoxedGrid | None":
    """Build the per-axis grid for a wrapping domain, or ``None`` if unusable.

    On periodic axes the wrapped 3×3 shell visits each unordered cell pair
    exactly once only when there are at least three cells along the axis
    (with fewer, a forward offset and its wrap-around alias land on the same
    cell and candidates duplicate), so tiny extents fall back to the
    minimum-image brute force.  The modular cell side is held a hair *above*
    the radius — ``L / nc >= r_c (1 + 1e-9)`` — so a pair exactly at the
    cut-off straddling the seam can never round out of the wrapped shell.
    Reflecting axes get a padded grid with cell side ``r_c`` over the wrapped
    coordinate range ``[0, L]`` (no seam, no constraint on the cell count).
    """
    axes = []
    for side_len, periodic in zip(domain.extents, domain.periodic_axes):
        if periodic:
            ratio = side_len / (radius * (1.0 + 1e-9))
            if not np.isfinite(ratio) or ratio >= 2**31:
                return None  # astronomically fine grid: id space would overflow
            n_cells = int(ratio)
            if n_cells < 3:
                return None
            axes.append((n_cells, True, side_len / n_cells, side_len))
        else:
            ratio = side_len / radius
            if not np.isfinite(ratio) or ratio >= 2**31:
                return None
            # floor(L / r_c) + 1 occupied cells plus one ghost on each side.
            axes.append((int(ratio) + 3, False, radius, None))
    (nx, mod_x, side_x, image_x), (ny, mod_y, side_y, image_y) = axes
    if n_blocks * nx * ny >= np.iinfo(np.int64).max // 2:
        return None
    return _BoxedGrid(nx, ny, mod_x, mod_y, side_x, side_y, image_x, image_y)


def _boxed_cell_ids(
    wrapped: np.ndarray, grid: _BoxedGrid, sample: np.ndarray | None = None
) -> np.ndarray:
    """Flattened per-axis cell id per (wrapped) particle position."""
    cells_x = np.floor(wrapped[:, 0] / grid.side_x).astype(np.int64)
    cells_y = np.floor(wrapped[:, 1] / grid.side_y).astype(np.int64)
    if grid.mod_x:
        # Positions within an ulp of the box edge can round into cell nx.
        np.minimum(cells_x, grid.nx - 1, out=cells_x)
    else:
        cells_x += 1  # ghost-padding shift
    if grid.mod_y:
        np.minimum(cells_y, grid.ny - 1, out=cells_y)
    else:
        cells_y += 1
    ids = cells_x * grid.ny + cells_y
    if sample is not None:
        ids += sample * (grid.nx * grid.ny)
    return ids


#: Half-shell neighbour-cell offsets ``(dx, dy)``: together with the
#: within-cell rank pairs they cover every unordered candidate pair exactly
#: once; the reverse orientations are added by mirroring after the distance
#: filter, which halves the candidate work of the full 3×3 shell.
_HALF_SHELL = ((0, 1), (1, -1), (1, 0), (1, 1))


def _hashed_pairs(
    positions: np.ndarray,
    ids: np.ndarray,
    stride: int,
    radius: float,
    grid: _BoxedGrid | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ordered pairs from flattened cell ids — no Python loop over anything.

    The particles are sorted by cell id once (radix sort on the integer
    ids); occupied buckets fall out of the boundary flags of the sorted id
    array, and for each half-shell offset a single ``searchsorted`` locates
    the adjacent bucket of *every* occupied cell at once.  Unordered
    candidate pairs are materialised with a ragged-arange (repeat/cumsum)
    expansion over contiguous, cell-sorted coordinate arrays, filtered by
    exact distance, then mirrored and lex-sorted into the canonical
    ``(i, j)`` order.

    ``grid`` switches to the per-axis boxed layout of a wrapping domain:
    half-shell targets wrap modulo the axis cell count on modular (periodic)
    axes and step plainly into ghost padding on reflecting ones (the sample
    block of batched ids is preserved either way), and the exact distance
    filter uses minimum-image displacements on the periodic axes only — the
    same arithmetic as :meth:`repro.particles.domain.Domain.displacement` on
    wrapped coordinates, so the filter agrees bit-for-bit with the
    brute-force reference and the drift kernels.
    """
    n_total = positions.shape[0]
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    xs = positions[order, 0]
    ys = positions[order, 1]

    is_start = np.empty(n_total, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=is_start[1:])
    starts = np.nonzero(is_start)[0]
    unique_ids = sorted_ids[starts]
    counts = np.diff(starts, append=n_total)
    cell_of = np.cumsum(is_start) - 1  # bucket slot of each sorted particle

    positions_idx = np.arange(n_total)
    rank = positions_idx - starts[cell_of]

    if grid is not None:
        block, rem = np.divmod(unique_ids, grid.nx * grid.ny)
        cell_x, cell_y = np.divmod(rem, grid.ny)

    # Candidate block per (shell entry, sorted particle): within-cell pairs
    # (strictly later ranks of the same bucket) plus the four forward
    # neighbour buckets of the half shell.
    cand_counts = [counts[cell_of] - rank - 1]
    cand_starts = [positions_idx + 1]
    for dx, dy in _HALF_SHELL:
        if grid is None:
            target = unique_ids + (dx * stride + dy)
        else:
            target_x = (cell_x + dx) % grid.nx if grid.mod_x else cell_x + dx
            target_y = (cell_y + dy) % grid.ny if grid.mod_y else cell_y + dy
            target = block * (grid.nx * grid.ny) + target_x * grid.ny + target_y
        slot = np.minimum(np.searchsorted(unique_ids, target), unique_ids.size - 1)
        occupied = unique_ids[slot] == target
        block_count = np.where(occupied, counts[slot], 0)
        block_start = np.where(occupied, starts[slot], 0)
        cand_counts.append(block_count[cell_of])
        cand_starts.append(block_start[cell_of])
    cnt = np.concatenate(cand_counts)
    st = np.concatenate(cand_starts)

    total = int(cnt.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    i_s = np.repeat(np.tile(positions_idx, 1 + len(_HALF_SHELL)), cnt)
    first = np.cumsum(cnt) - cnt
    j_s = np.repeat(st, cnt) + (np.arange(total, dtype=np.int64) - np.repeat(first, cnt))

    dx_ = xs.take(i_s) - xs.take(j_s)
    dy_ = ys.take(i_s) - ys.take(j_s)
    if grid is not None:
        if grid.image_x is not None:
            dx_ -= grid.image_x * np.round(dx_ / grid.image_x)
        if grid.image_y is not None:
            dy_ -= grid.image_y * np.round(dy_ / grid.image_y)
    dist_sq = dx_ * dx_ + dy_ * dy_
    # Cheap squared-distance pre-filter (slightly loose), then the exact
    # sqrt-based comparison on the survivors: for pairs exactly at the
    # cut-off the sqrt can round down onto the radius, and the dense kernel
    # (and BruteForceNeighbors) includes those.
    loose = dist_sq <= radius * radius * (1.0 + 1e-9)
    i_s, j_s, dist_sq = i_s[loose], j_s[loose], dist_sq[loose]
    keep = np.sqrt(dist_sq) <= radius
    i_half = order[i_s[keep]]
    j_half = order[j_s[keep]]
    return np.concatenate([i_half, j_half]), np.concatenate([j_half, i_half])


def _lex_sorted(
    i_idx: np.ndarray, j_idx: np.ndarray, n_total: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sort pairs into lexicographic ``(i, j)`` order.

    Fuses each pair into the integer key ``i * n_total + j``, sorts the key
    array directly and decodes — pairs are unique, so the sort order is
    deterministic, and a direct ``np.sort`` plus divmod is much faster than
    ``np.lexsort`` (or any argsort + gather) at the pair counts the batched
    path produces.
    """
    if n_total and n_total < np.iinfo(np.int64).max // n_total:
        key = i_idx * n_total + j_idx
        key.sort()
        return key // n_total, key % n_total
    # Unreachable for in-memory particle counts (needs n_total > ~3e9).
    order = np.lexsort((j_idx, i_idx))  # pragma: no cover
    return i_idx[order], j_idx[order]  # pragma: no cover


class CellListNeighbors(NeighborSearch):
    """Fully vectorised uniform-grid spatial hash with cell size ``r_c``.

    Candidate pairs are restricted to the 3×3 block of cells around each
    particle, then filtered by exact distance — linear in ``n`` for bounded
    density, the classic molecular-dynamics cell-list trade-off.  Both the
    single-snapshot and the batched query are pure array programs (sort +
    boundary-flag bucket detection + ``searchsorted`` + ragged-arange
    expansion); there is no Python loop over particles, pairs, cells or
    samples.

    On a domain with periodic axes the grid becomes *per-axis modular*:
    positions are wrapped into the box, cell ids are taken modulo the axis
    cell count on each periodic axis (where the 3×3 shell wraps around the
    seam) while reflecting axes keep ghost padding — the same pure array
    program, including the batched sample-id variant, covering the square
    torus, anisotropic tori and mixed channel geometries alike.

    Degenerate geometries fall out of the same code path: a radius larger
    than the bounding box (or all particles in one cell) degrades to the
    brute-force candidate set, wrapped grids with fewer than three cells
    along a periodic axis fall back to the minimum-image brute force, and
    single-particle or empty systems return empty pair arrays.
    """

    name = "cell"

    def pairs(
        self, positions: np.ndarray, radius: float, domain: Domain | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        domain = get_domain(domain)
        if not np.isfinite(radius):
            return BruteForceNeighbors().pairs(positions, radius, domain)
        if positions.shape[0] < 2:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if any(domain.periodic_axes):
            grid = _boxed_grid(domain, radius)
            if grid is None:  # box too small (or grid too fine) for the wrapped shell
                return BruteForceNeighbors().pairs(positions, radius, domain)
            wrapped = domain.wrap(positions)
            ids = _boxed_cell_ids(wrapped, grid)
            pairs = _hashed_pairs(wrapped, ids, 0, radius, grid=grid)
            return _lex_sorted(*pairs, positions.shape[0])
        grid = _grid_ids(positions, radius)
        if grid is None:  # astronomically wide bounding box: id space overflow
            return KDTreeNeighbors().pairs(positions, radius, domain)
        ids, stride = grid
        pairs = _hashed_pairs(positions, ids, stride, radius)
        return _lex_sorted(*pairs, positions.shape[0])

    def pairs_batch(
        self, positions: np.ndarray, radius: float, domain: Domain | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Hash *all* samples in one shot by prepending a sample-id coordinate.

        Every sample gets its own block of cell ids (padded on the free
        plane, modular on the torus), so one sort over the flattened
        ``(m · n,)`` id array (buckets read off its boundary flags) covers
        the whole ensemble snapshot, and cross-sample pairs are structurally
        impossible.  Output follows the base-class contract: flattened
        indices in lexicographic ``(sample, i, j)`` order.
        """
        positions = _validate_batch(positions, radius)
        domain = get_domain(domain)
        m, n, _ = positions.shape
        if m * n == 0 or not np.isfinite(radius):
            return super().pairs_batch(positions, radius, domain)
        if any(domain.periodic_axes):
            grid = _boxed_grid(domain, radius, n_blocks=m)
            if grid is None:
                return super().pairs_batch(positions, radius, domain)
            flat = domain.wrap(positions.reshape(m * n, 2))
            sample = np.repeat(np.arange(m, dtype=np.int64), n)
            ids = _boxed_cell_ids(flat, grid, sample=sample)
            pairs = _hashed_pairs(flat, ids, 0, radius, grid=grid)
            return _lex_sorted(*pairs, m * n)
        flat = positions.reshape(m * n, 2)
        sample = np.repeat(np.arange(m, dtype=np.int64), n)
        grid = _grid_ids(flat, radius, sample=sample)
        if grid is None:
            return super().pairs_batch(positions, radius, domain)
        ids, stride = grid
        pairs = _hashed_pairs(flat, ids, stride, radius)
        return _lex_sorted(*pairs, m * n)


class KDTreeNeighbors(NeighborSearch):
    """SciPy cKDTree radius query (good for large n with moderate density).

    On a domain with periodic axes the tree itself is periodic per axis
    (``cKDTree(boxsize=[Lx, Ly])`` over wrapped coordinates, a 0 entry
    marking reflecting axes as non-periodic); candidate pairs are re-filtered
    with the exact minimum-image distance so the pair set matches the
    brute-force reference bit-for-bit.
    """

    name = "kdtree"

    def pairs(
        self, positions: np.ndarray, radius: float, domain: Domain | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        positions = _validate(positions, radius)
        domain = get_domain(domain)
        if not np.isfinite(radius):
            return BruteForceNeighbors().pairs(positions, radius, domain)
        if positions.shape[0] == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # The tree prunes on squared distances, which can exclude pairs whose
        # rounded Euclidean distance lands exactly on the radius — pairs the
        # dense kernel includes.  Query a few ulps wide, then apply the same
        # displacement-based sqrt filter as BruteForceNeighbors.
        query_radius = radius * (1.0 + 1e-12)
        if domain.bounded and any(domain.periodic_axes):
            if any(
                periodic and 2.0 * query_radius >= side
                for side, periodic in zip(domain.extents, domain.periodic_axes)
            ):
                # A periodic tree cannot search past half the box on a
                # wrapping axis; the minimum-image brute force handles the
                # tiny-box regime.
                return BruteForceNeighbors().pairs(positions, radius, domain)
            # Per-axis topology: a boxsize entry of 0 marks the axis as
            # non-periodic, which is how the mixed channel geometry rides
            # the same periodic tree.
            boxsize = [
                side if periodic else 0.0
                for side, periodic in zip(domain.extents, domain.periodic_axes)
            ]
            tree = cKDTree(domain.wrap(positions), boxsize=boxsize)
        else:
            tree = cKDTree(positions)
        unordered = tree.query_pairs(r=query_radius, output_type="ndarray")
        if unordered.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        delta = domain.displacement(positions[unordered[:, 0]], positions[unordered[:, 1]])
        keep = np.sqrt(np.einsum("ij,ij->i", delta, delta)) <= radius
        unordered = unordered[keep]
        i_idx = np.concatenate([unordered[:, 0], unordered[:, 1]]).astype(np.int64)
        j_idx = np.concatenate([unordered[:, 1], unordered[:, 0]]).astype(np.int64)
        return i_idx, j_idx


NEIGHBOR_BACKENDS: dict[str, type[NeighborSearch]] = {
    "brute": BruteForceNeighbors,
    "cell": CellListNeighbors,
    "kdtree": KDTreeNeighbors,
}


def get_neighbor_search(name: str | NeighborSearch) -> NeighborSearch:
    """Resolve a neighbour-search backend by name or pass an instance through."""
    if isinstance(name, NeighborSearch):
        return name
    key = str(name).lower()
    if key not in NEIGHBOR_BACKENDS:
        raise KeyError(f"unknown neighbour backend {name!r}; available: {sorted(NEIGHBOR_BACKENDS)}")
    return NEIGHBOR_BACKENDS[key]()
