"""Ensemble simulation: many independent runs of the same experiment.

The paper's statistics are taken *across samples*: each experiment runs the
same particle model ``m = 500–1000`` times from independent initial discs and
noise realisations, and the multi-information at time ``t`` is estimated from
the ``m`` configurations observed at that step (§5.1).

Two execution strategies are provided and produce identical results for the
same seed:

* the default **vectorised** path advances all samples simultaneously with
  batched kernels of shape ``(m, n, 2)`` — dense all-pairs or sparse
  neighbour-pair, whichever the configuration's drift engine selects
  (optionally split into batches bounded by a memory budget).  On the
  sparse path with ``neighbor_backend="cell"`` the neighbour query itself
  is batched: the whole snapshot is spatially hashed in one vectorised
  query, leaving zero per-sample Python in the hot loop, and the adaptive
  ``"auto"`` engine re-checks its dense/sparse choice every
  ``auto_reresolve_every`` recorded steps as the collectives contract; and
* an optional **process-parallel** path (``n_jobs``) that distributes sample
  batches over a pool — useful on many-core machines when ``m`` is large and
  the per-batch work is substantial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.batch import batch_slices, max_batch_for_budget
from repro.parallel.pool import effective_n_jobs, parallel_map
from repro.parallel.rng import seed_streams
from repro.particles.engine import AdaptiveDriftEngine, engine_for_config
from repro.particles.forces import net_force_norms
from repro.particles.init_conditions import uniform_box_ensemble, uniform_disc_ensemble
from repro.particles.integrators import get_integrator
from repro.particles.model import SimulationConfig, _clip_drift
from repro.particles.trajectory import EnsembleTrajectory

__all__ = ["EnsembleSimulator", "simulate_ensemble", "EnsembleRunStats", "initial_ensemble_for"]


def initial_ensemble_for(
    config: SimulationConfig, n_samples: int, rng
) -> np.ndarray:
    """Draw an ensemble's initial configurations for this config's domain.

    The free plane keeps the paper's independent uniform discs; bounded
    domains draw every sample uniformly in the box.  Shape ``(m, n, 2)``.
    """
    domain = config.resolved_domain
    if domain.bounded:
        return uniform_box_ensemble(n_samples, config.n_particles, domain.box, rng)
    return uniform_disc_ensemble(n_samples, config.n_particles, config.disc_radius, rng)


@dataclass(frozen=True)
class EnsembleRunStats:
    """Diagnostics accumulated during an ensemble run.

    Attributes
    ----------
    mean_force_norm:
        Mean (over samples) of the summed per-particle force norms at every
        recorded step — the quantity the equilibrium criterion thresholds.
    fraction_at_equilibrium:
        Fraction of samples whose force norm was below the configured
        threshold at the final recorded step.
    """

    mean_force_norm: np.ndarray
    fraction_at_equilibrium: float


class EnsembleSimulator:
    """Run ``n_samples`` independent realisations of a :class:`SimulationConfig`."""

    def __init__(
        self,
        config: SimulationConfig,
        n_samples: int,
        *,
        seed: int | None = None,
        bytes_budget: int = 256 * 1024 * 1024,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.config = config
        self.n_samples = int(n_samples)
        self.seed = seed
        self.bytes_budget = int(bytes_budget)
        self.types = config.types
        self._engine = engine_for_config(config)
        self._last_stats: EnsembleRunStats | None = None
        self._observers: list = []

    # ------------------------------------------------------------------ #
    @property
    def engine(self):
        """The resolved :class:`~repro.particles.engine.DriftEngine` of this ensemble."""
        return self._engine

    @property
    def last_stats(self) -> EnsembleRunStats | None:
        """Diagnostics of the most recent :meth:`run` call (None before any run)."""
        return self._last_stats

    def add_observer(self, observer) -> None:
        """Attach a step observer (see :class:`repro.monitor.observer.StepObserver`).

        Observers are notified with every recorded ensemble frame — a
        read-only ``(m, n, 2)`` view, after the frame has been stored — so
        they can stream metrics from a live run without perturbing it: the
        produced trajectory stays bit-identical to an unobserved run, and an
        empty observer list costs nothing.

        Observed runs execute in-process (no process pool) and require the
        ensemble to fit one memory batch, so each notification carries the
        *full* ensemble snapshot; :meth:`run` raises otherwise (raise
        ``bytes_budget`` or lower ``n_samples``).
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously attached step observer."""
        self._observers.remove(observer)

    def _notify_observers(self, step: int, frame: np.ndarray) -> None:
        view = frame.view()
        view.flags.writeable = False
        for observer in self._observers:
            observer.on_step(step, view)

    def initial_snapshot(self, rng: np.random.Generator) -> np.ndarray:
        """Draw the ensemble's initial configurations, shape ``(m, n, 2)``."""
        return initial_ensemble_for(self.config, self.n_samples, rng)

    def _drift(self, positions: np.ndarray) -> np.ndarray:
        drift = self._engine.drift_batch(positions)
        return _clip_drift(drift, self.config.max_drift_norm)

    def _run_batch(
        self,
        initial: np.ndarray,
        rng: np.random.Generator,
        record_initial: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance one batch of samples for the full run.

        Returns ``(frames, force_norms)`` with ``frames`` of shape
        ``(n_steps + 1, batch, n, 2)`` and ``force_norms`` of shape
        ``(n_steps + 1, batch)``.
        """
        config = self.config
        domain = config.resolved_domain
        integrator = get_integrator(config.integrator, noise_variance=config.noise_variance)
        positions = np.asarray(initial, dtype=float).copy()
        frames = [positions.copy()] if record_initial else []
        force_norms = [net_force_norms(self._drift(positions)).sum(axis=-1)]
        if record_initial and self._observers:
            self._notify_observers(0, frames[0])
        cadence = config.auto_reresolve_every
        adaptive = cadence and isinstance(self._engine, AdaptiveDriftEngine)
        for step in range(1, config.n_steps + 1):
            for _ in range(config.substeps):
                positions = integrator.step(positions, self._drift, config.dt, rng, domain)
            frames.append(positions.copy())
            force_norms.append(net_force_norms(self._drift(positions)).sum(axis=-1))
            if self._observers:
                self._notify_observers(step, frames[-1])
            if adaptive and step % cadence == 0:
                # Bit-identical kernels make this switch invisible in the
                # trajectory; it only tracks the contracting bounding box.
                self._engine.reresolve(positions)
        return np.stack(frames, axis=0), np.stack(force_norms, axis=0)

    def run(self, *, n_jobs: int | None = None) -> EnsembleTrajectory:
        """Simulate the full ensemble and return its trajectory.

        Samples are split into batches that respect the memory budget; with
        ``n_jobs > 1`` the batches are distributed over a process pool.  The
        per-batch random streams are derived from the simulator seed, so the
        result is identical regardless of parallelism (though it does depend
        on the batch layout, i.e. on ``bytes_budget``).
        """
        config = self.config
        batch_size = max_batch_for_budget(config.n_particles, bytes_budget=self.bytes_budget)
        slices = batch_slices(self.n_samples, batch_size)
        # One stream per batch for the dynamics noise, one extra per batch for
        # the initial conditions; derived from a single SeedSequence family.
        streams = seed_streams(self.seed, 2 * len(slices))
        tasks = [
            _BatchTask(
                config=config,
                n_batch_samples=sl.stop - sl.start,
                init_rng=streams[2 * index],
                dyn_rng=streams[2 * index + 1],
            )
            for index, sl in enumerate(slices)
        ]

        if self._observers:
            # Observed runs execute in-process: the pooled path rebuilds the
            # simulator inside each worker, which would silently drop the
            # observer hooks.  One batch is required so every notification
            # carries the full ensemble snapshot.  The same seed streams are
            # consumed, so the result is bit-identical to the pooled path.
            if len(tasks) > 1:
                raise ValueError(
                    f"step observers need the whole ensemble in one batch, but "
                    f"{self.n_samples} sample(s) split into {len(tasks)} batches "
                    f"under bytes_budget={self.bytes_budget}; raise bytes_budget "
                    f"or lower n_samples"
                )
            # Mirror _run_batch_task exactly (fresh worker simulator, fresh
            # engine state) so observed and unobserved runs stay bit-identical
            # even across repeated .run() calls of one simulator.
            task = tasks[0]
            worker = EnsembleSimulator(task.config, task.n_batch_samples)
            worker._observers = self._observers
            initial = initial_ensemble_for(task.config, task.n_batch_samples, task.init_rng)
            results = [worker._run_batch(initial, task.dyn_rng)]
        else:
            jobs = effective_n_jobs(n_jobs)
            results = parallel_map(_run_batch_task, tasks, n_jobs=jobs)

        frames = np.concatenate([frames for frames, _ in results], axis=1)
        force_norms = np.concatenate([norms for _, norms in results], axis=1)
        final_quiet = force_norms[-1] < config.equilibrium_threshold
        self._last_stats = EnsembleRunStats(
            mean_force_norm=force_norms.mean(axis=1),
            fraction_at_equilibrium=float(final_quiet.mean()),
        )
        return EnsembleTrajectory(
            positions=frames, types=self.types, dt=config.dt * config.substeps
        )


@dataclass
class _BatchTask:
    """Picklable unit of work for one ensemble batch (used by the pool path)."""

    config: SimulationConfig
    n_batch_samples: int
    init_rng: np.random.Generator
    dyn_rng: np.random.Generator


def _run_batch_task(task: _BatchTask) -> tuple[np.ndarray, np.ndarray]:
    """Module-level worker so the process-pool path can pickle its tasks."""
    simulator = EnsembleSimulator(task.config, task.n_batch_samples)
    initial = initial_ensemble_for(task.config, task.n_batch_samples, task.init_rng)
    return simulator._run_batch(initial, task.dyn_rng)


def simulate_ensemble(
    config: SimulationConfig,
    n_samples: int,
    *,
    seed: int | None = None,
    n_jobs: int | None = None,
) -> EnsembleTrajectory:
    """Convenience wrapper: build an :class:`EnsembleSimulator` and run it."""
    simulator = EnsembleSimulator(config, n_samples, seed=seed)
    return simulator.run(n_jobs=n_jobs)
