"""Unified drift-evaluation engine: one entry point over dense and sparse kernels.

Historically the ensemble path hard-coded the dense all-pairs kernel
(:func:`repro.particles.forces.drift_batch`) while the sparse neighbour-search
backends (:mod:`repro.particles.neighbors`) were reachable only from the
single-run :class:`~repro.particles.model.ParticleSystem`.  This module closes
that split: a :class:`DriftEngine` evaluates the Eq. 6 drift for a single
configuration ``(n, 2)`` or a whole ensemble snapshot ``(m, n, 2)`` through
either kernel, and every registered neighbour backend works on both paths.

Two engines are provided:

* :class:`DenseDriftEngine` — the O(n²·m) broadcast kernel.  Fastest for the
  collective sizes of the paper's experiments (n ≤ 120) and mandatory when no
  cut-off radius is set (every pair interacts).
* :class:`SparseDriftEngine` — neighbour pairs from a
  :class:`~repro.particles.neighbors.NeighborSearch` backend, accumulated with
  a vectorised segment-sum (:func:`numpy.bincount` over flattened pair
  indices).  Cost is proportional to the number of interacting pairs, so it
  wins whenever the cut-off ``r_c`` is small relative to the collective
  diameter.

Selection is configured on :class:`~repro.particles.model.SimulationConfig`
via ``engine="dense" | "sparse" | "auto"``; :func:`resolve_engine` implements
the ``"auto"`` heuristic (sparse for large collectives with a genuinely
pruning cut-off, dense otherwise).  Because collectives contract over a run,
``"auto"`` is *adaptive* by default: :class:`AdaptiveDriftEngine` re-resolves
the choice every ``SimulationConfig.auto_reresolve_every`` recorded steps
from the **current** bounding box (:func:`collective_radius`), so a run that
starts sparse switches to the dense kernel once the cut-off disc covers the
shrunken collective — without changing a single bit of the trajectory (see
below).

Choosing an engine/backend
--------------------------
* n ≲ 200, or no cut-off, or ``r_c`` comparable to the collective diameter —
  ``"dense"`` (what ``"auto"`` resolves to).
* large n with a genuinely pruning cut-off — ``"sparse"``; pick the
  neighbour backend by workload: ``"cell"`` for ensembles (its
  :meth:`~repro.particles.neighbors.CellListNeighbors.pairs_batch` hashes
  the whole ``(m, n, 2)`` snapshot in one vectorised query) and for
  roughly-uniform single snapshots, ``"kdtree"`` for strongly non-uniform
  single snapshots, ``"brute"`` only as a testing reference.
* unsure, or the collective contracts over the run — ``"auto"`` with the
  default adaptive re-resolution.

Bit-compatibility contract
--------------------------
Both engines produce *bit-identical* drift for the same configuration: the
sparse kernel consumes pairs in lexicographic ``(sample, i, j)`` order (see
:meth:`NeighborSearch.pairs_batch`), which reproduces the dense kernel's
sequential summation order exactly, and skipped pairs contribute exact zeros
in the dense kernel.  ``tests/test_integration.py`` pins this property, so
trajectories are reproducible across engine choices — and it is what makes
adaptive mid-run engine switching safe.

The contract holds on every simulation domain
(:mod:`repro.particles.domain`): both kernels and all neighbour backends
compute pairwise displacements through the same
:meth:`~repro.particles.domain.Domain.displacement`, so dense vs sparse
stays bit-identical on the periodic torus and in the reflecting box too
(fuzz-pinned in ``tests/test_neighbors_fuzz.py``).  On bounded domains the
``"auto"`` heuristic compares the cut-off against the fixed box size —
wrapped coordinates always fill the box, so the live bounding box carries
no signal there.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.particles.domain import Domain, get_domain
from repro.particles.forces import (
    ForceScaling,
    drift_batch,
    drift_single,
    get_force_scaling,
    pair_interaction_weights,
)
from repro.particles.neighbors import NeighborSearch, get_neighbor_search
from repro.particles.types import InteractionParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.particles.model import SimulationConfig

__all__ = [
    "DRIFT_ENGINES",
    "SPARSE_AUTO_MIN_PARTICLES",
    "SPARSE_AUTO_CUTOFF_FRACTION",
    "DriftEngine",
    "DenseDriftEngine",
    "SparseDriftEngine",
    "AdaptiveDriftEngine",
    "collective_radius",
    "heuristic_domain_radius",
    "resolve_engine",
    "make_engine",
    "engine_for_config",
    "sparse_drift_batch",
]

#: Valid values of ``SimulationConfig.engine``.
DRIFT_ENGINES = ("auto", "dense", "sparse")

#: Below this collective size the dense broadcast kernel wins regardless of
#: the cut-off: the per-sample neighbour queries and index arithmetic of the
#: sparse path cost more than the full n² evaluation.
SPARSE_AUTO_MIN_PARTICLES = 192

#: The sparse engine only pays off when the cut-off disc covers a small part
#: of the collective.  ``"auto"`` stays dense when ``r_c`` exceeds this
#: fraction of the initial collective *diameter* (most pairs interact then,
#: so there is nothing to prune).
SPARSE_AUTO_CUTOFF_FRACTION = 0.5


def resolve_engine(
    engine: str,
    *,
    n_particles: int,
    cutoff: float | None,
    domain_radius: float | None = None,
) -> str:
    """Resolve an engine name, applying the ``"auto"`` heuristic.

    Parameters
    ----------
    engine:
        ``"dense"``, ``"sparse"`` or ``"auto"``.
    n_particles:
        Collective size ``n``.
    cutoff:
        Interaction radius ``r_c`` (``None``/``inf`` = unconstrained).
    domain_radius:
        Characteristic radius of the collective (the initial disc radius);
        used to judge whether the cut-off actually prunes pairs.  ``None``
        skips that part of the heuristic.
    """
    key = str(engine).lower()
    if key in ("dense", "sparse"):
        return key
    if key != "auto":
        raise KeyError(f"unknown drift engine {engine!r}; available: {list(DRIFT_ENGINES)}")
    if cutoff is None or not np.isfinite(cutoff):
        return "dense"
    if n_particles < SPARSE_AUTO_MIN_PARTICLES:
        return "dense"
    if domain_radius is not None and cutoff > SPARSE_AUTO_CUTOFF_FRACTION * 2.0 * float(domain_radius):
        return "dense"
    return "sparse"


def heuristic_domain_radius(domain: Domain, fallback: float | None) -> float | None:
    """Characteristic radius the ``"auto"`` heuristic compares the cut-off to.

    On bounded domains (periodic torus, reflecting box, channel) it is the
    fixed ``min(Lx, Ly) / 2`` — wrapped coordinates always span the box, so
    neither an initial disc radius nor the live bounding box carries any
    signal there, and on anisotropic boxes the *shorter* extent is the one
    that decides whether the cut-off disc still prunes pairs.  Unbounded
    domains keep the caller's ``fallback`` (the initial disc radius, or
    :func:`collective_radius` of the current snapshot).  This is the single
    definition of the bounded-domain rule; every heuristic call site routes
    through it.
    """
    if domain.bounded:
        return min(domain.extents) / 2.0
    return fallback


def collective_radius(positions: np.ndarray) -> float:
    """Characteristic radius of the current configuration(s).

    Half the longer side of the axis-aligned bounding box over *all*
    particles (and, for an ensemble snapshot ``(m, n, 2)``, all samples) —
    the live counterpart of the initial disc radius that the static
    ``"auto"`` heuristic uses.  Collectives contract over a run, so feeding
    this to :func:`resolve_engine` lets :class:`AdaptiveDriftEngine` notice
    when the cut-off disc stops pruning pairs.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.size == 0:
        return 0.0
    flat = positions.reshape(-1, positions.shape[-1])
    spans = flat.max(axis=0) - flat.min(axis=0)
    return float(spans.max() / 2.0)


def _sorted_pairs(i_idx: np.ndarray, j_idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort ordered pairs lexicographically by ``(i, j)``.

    Sequential accumulation over pairs in this order matches the dense
    kernel's summation order, which is what makes dense and sparse drift
    bit-identical rather than merely close.
    """
    order = np.lexsort((j_idx, i_idx))
    return i_idx[order], j_idx[order]


def sparse_drift_batch(
    positions: np.ndarray,
    types: np.ndarray,
    params: InteractionParams,
    scaling: ForceScaling | str,
    cutoff: float | None,
    neighbors: NeighborSearch | str,
    domain: Domain | str | None = None,
) -> np.ndarray:
    """Sparse drift for an ensemble snapshot ``(m, n, 2)``.

    Neighbour pairs of every sample are flattened into a single
    ``(sample, i, j)`` index space and the per-pair contributions are
    accumulated with one :func:`numpy.bincount` segment-sum per coordinate —
    no Python loop over pairs or particles, and the only per-sample work is
    the neighbour query itself.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 3 or positions.shape[-1] != 2:
        raise ValueError(f"positions must have shape (m, n, 2), got {positions.shape}")
    types = np.asarray(types, dtype=int)
    m, n, _ = positions.shape
    if types.shape != (n,):
        raise ValueError("types must have shape (n,)")
    scaling = get_force_scaling(scaling)
    neighbors = get_neighbor_search(neighbors)
    domain = get_domain(domain)
    radius = float("inf") if cutoff is None else float(cutoff)

    i_idx, j_idx = neighbors.pairs_batch(positions, radius, domain)
    if i_idx.size == 0:
        return np.zeros_like(positions)

    flat = positions.reshape(m * n, 2)
    delta = domain.displacement(flat[i_idx], flat[j_idx])
    dist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
    tiled_types = np.tile(types, m)
    weights = pair_interaction_weights(
        dist, tiled_types[i_idx], tiled_types[j_idx], params, scaling, cutoff=cutoff
    )
    contrib = weights[:, None] * delta
    drift = np.stack(
        [np.bincount(i_idx, weights=contrib[:, c], minlength=m * n) for c in range(2)],
        axis=1,
    )
    return drift.reshape(m, n, 2)


class DriftEngine(abc.ABC):
    """Evaluates the deterministic Eq. 6 drift for one experiment's particles.

    An engine is bound to a fixed type assignment, interaction parameters,
    force scaling and cut-off; it is therefore safe to cache per-pair
    parameter data across time steps.  Calling the engine dispatches on the
    input rank: ``(n, 2)`` uses the single-configuration path, ``(m, n, 2)``
    the batched ensemble path — which makes an engine directly usable as the
    ``drift_fn`` of any :class:`~repro.particles.integrators.Integrator`.
    """

    name: str = ""

    def __init__(
        self,
        types: np.ndarray,
        params: InteractionParams,
        scaling: ForceScaling | str,
        cutoff: float | None = None,
        *,
        domain: Domain | str | None = None,
    ) -> None:
        self.types = np.asarray(types, dtype=int)
        if self.types.ndim != 1 or self.types.size == 0:
            raise ValueError("types must be a non-empty 1-D array")
        self.params = params
        self.scaling = get_force_scaling(scaling)
        self.cutoff = None if cutoff is None or not np.isfinite(cutoff) else float(cutoff)
        self.domain = get_domain(domain)

    @property
    def n_particles(self) -> int:
        return int(self.types.size)

    @abc.abstractmethod
    def drift(self, positions: np.ndarray) -> np.ndarray:
        """Drift for a single configuration ``(n, 2)``."""

    @abc.abstractmethod
    def drift_batch(self, positions: np.ndarray) -> np.ndarray:
        """Drift for an ensemble snapshot ``(m, n, 2)``."""

    def __call__(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim == 2:
            return self.drift(positions)
        if positions.ndim == 3:
            return self.drift_batch(positions)
        raise ValueError(
            f"positions must have shape (n, 2) or (m, n, 2), got {positions.shape}"
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(n={self.n_particles}, cutoff={self.cutoff})"


class DenseDriftEngine(DriftEngine):
    """All-pairs broadcast kernel; per-pair parameter matrices cached once."""

    name = "dense"

    def __init__(self, types, params, scaling, cutoff=None, *, domain=None) -> None:
        super().__init__(types, params, scaling, cutoff, domain=domain)
        self._pair = params.pair_matrices(self.types)

    def drift(self, positions: np.ndarray) -> np.ndarray:
        return drift_single(
            positions,
            self.types,
            self.params,
            self.scaling,
            cutoff=self.cutoff,
            pair=self._pair,
            domain=self.domain,
        )

    def drift_batch(self, positions: np.ndarray) -> np.ndarray:
        return drift_batch(
            positions,
            self.types,
            self.params,
            self.scaling,
            cutoff=self.cutoff,
            pair=self._pair,
            domain=self.domain,
        )


class SparseDriftEngine(DriftEngine):
    """Neighbour-pair kernel driven by any registered search backend."""

    name = "sparse"

    def __init__(
        self,
        types,
        params,
        scaling,
        cutoff=None,
        *,
        neighbors: NeighborSearch | str = "kdtree",
        domain: Domain | str | None = None,
    ) -> None:
        super().__init__(types, params, scaling, cutoff, domain=domain)
        self.neighbors = get_neighbor_search(neighbors)

    @property
    def _radius(self) -> float:
        return float("inf") if self.cutoff is None else self.cutoff

    def drift(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        pairs = _sorted_pairs(*self.neighbors.pairs(positions, self._radius, self.domain))
        return drift_single(
            positions,
            self.types,
            self.params,
            self.scaling,
            cutoff=self.cutoff,
            neighbor_pairs=pairs,
            domain=self.domain,
        )

    def drift_batch(self, positions: np.ndarray) -> np.ndarray:
        return sparse_drift_batch(
            positions,
            self.types,
            self.params,
            self.scaling,
            self.cutoff,
            self.neighbors,
            domain=self.domain,
        )


class AdaptiveDriftEngine(DriftEngine):
    """``"auto"`` as a live choice: delegates to dense or sparse and can re-resolve.

    The engine holds lazily-built dense and sparse delegates (so per-pair
    parameter caches survive switches) and forwards every drift evaluation
    to the currently active one.  :meth:`reresolve` re-runs the ``"auto"``
    heuristic against the *current* bounding box — the simulation drivers
    call it every ``SimulationConfig.auto_reresolve_every`` recorded steps,
    which lets a contracting collective drop from sparse to dense mid-run
    (or the reverse, if a collective disperses).  Switching is free of
    observable side effects: the bit-compatibility contract guarantees both
    delegates produce identical drift for identical positions.

    On a *bounded* domain (periodic torus or reflecting box) the live
    bounding box is meaningless — wrapped coordinates always span the box —
    so the heuristic uses the fixed box size (``L/2`` as the characteristic
    radius) instead, and re-resolution becomes a constant-time no-op.
    """

    name = "adaptive"

    def __init__(
        self,
        types,
        params,
        scaling,
        cutoff=None,
        *,
        neighbors: NeighborSearch | str = "kdtree",
        domain_radius: float | None = None,
        domain: Domain | str | None = None,
    ) -> None:
        super().__init__(types, params, scaling, cutoff, domain=domain)
        self.neighbors = get_neighbor_search(neighbors)
        self._delegates: dict[str, DriftEngine] = {}
        self._resolved = resolve_engine(
            "auto",
            n_particles=self.n_particles,
            cutoff=self.cutoff,
            domain_radius=heuristic_domain_radius(self.domain, domain_radius),
        )

    @property
    def resolved(self) -> str:
        """Name of the currently active kernel (``"dense"``/``"sparse"``)."""
        return self._resolved

    @property
    def active(self) -> DriftEngine:
        """The delegate engine currently evaluating the drift."""
        if self._resolved not in self._delegates:
            if self._resolved == "dense":
                delegate = DenseDriftEngine(
                    self.types, self.params, self.scaling, self.cutoff, domain=self.domain
                )
            else:
                delegate = SparseDriftEngine(
                    self.types, self.params, self.scaling, self.cutoff,
                    neighbors=self.neighbors, domain=self.domain,
                )
            self._delegates[self._resolved] = delegate
        return self._delegates[self._resolved]

    def reresolve(self, positions: np.ndarray) -> str:
        """Re-run the ``"auto"`` heuristic from the current bounding box.

        Returns the resolved kernel name; the switch (if any) takes effect
        on the next drift evaluation and never changes its result.  On a
        bounded domain the characteristic radius is the fixed ``box / 2``
        (see :func:`heuristic_domain_radius`), so the choice never moves and
        the (m, n, 2) bounding-box scan is skipped entirely.
        """
        if self.domain.bounded:
            return self._resolved  # resolved once from box/2 at construction
        self._resolved = resolve_engine(
            "auto",
            n_particles=self.n_particles,
            cutoff=self.cutoff,
            domain_radius=collective_radius(positions),
        )
        return self._resolved

    def drift(self, positions: np.ndarray) -> np.ndarray:
        return self.active.drift(positions)

    def drift_batch(self, positions: np.ndarray) -> np.ndarray:
        return self.active.drift_batch(positions)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{type(self).__name__}(n={self.n_particles}, cutoff={self.cutoff}, "
            f"resolved={self._resolved!r})"
        )


def make_engine(
    engine: str,
    *,
    types: np.ndarray,
    params: InteractionParams,
    scaling: ForceScaling | str,
    cutoff: float | None = None,
    neighbors: NeighborSearch | str = "kdtree",
    domain_radius: float | None = None,
    adaptive: bool = False,
    domain: Domain | str | None = None,
) -> DriftEngine:
    """Build a :class:`DriftEngine`, resolving ``"auto"`` with :func:`resolve_engine`.

    With ``adaptive=True`` (and ``engine="auto"``) the result is an
    :class:`AdaptiveDriftEngine` whose dense/sparse choice can be re-resolved
    mid-run; otherwise ``"auto"`` is resolved once, here.  On a bounded
    ``domain`` the characteristic radius used by ``"auto"`` is the fixed
    ``box / 2`` regardless of ``domain_radius``.
    """
    types = np.asarray(types, dtype=int)
    domain = get_domain(domain)
    domain_radius = heuristic_domain_radius(domain, domain_radius)
    if adaptive and str(engine).lower() == "auto":
        return AdaptiveDriftEngine(
            types, params, scaling, cutoff,
            neighbors=neighbors, domain_radius=domain_radius, domain=domain,
        )
    resolved = resolve_engine(
        engine, n_particles=types.size, cutoff=cutoff, domain_radius=domain_radius
    )
    if resolved == "dense":
        return DenseDriftEngine(types, params, scaling, cutoff, domain=domain)
    return SparseDriftEngine(types, params, scaling, cutoff, neighbors=neighbors, domain=domain)


def engine_for_config(config: "SimulationConfig") -> DriftEngine:
    """The drift engine a :class:`~repro.particles.model.SimulationConfig` selects."""
    return make_engine(
        config.engine,
        types=config.types,
        params=config.params,
        scaling=config.force,
        cutoff=config.cutoff,
        neighbors=config.neighbor_backend,
        domain_radius=config.domain_radius,
        adaptive=config.auto_reresolve_every > 0,
        domain=config.resolved_domain,
    )
