"""Stochastic integrators for the overdamped particle dynamics.

The paper integrates the SDE (Eq. 6) with the Euler–Maruyama scheme in the
strong-friction limit: velocity is proportional to force, no momentum builds
up.  A stochastic Heun (predictor–corrector) variant is provided as an
extension for studying time-step sensitivity; both schemes converge to the
same invariant behaviour for the step sizes used in the experiments.

Noise convention
----------------
The paper states ``w ~ N(0, 0.05)``; we read ``0.05`` as the *variance* of the
additive noise term, so one Euler–Maruyama step is

    z_{t+dt} = z_t + dt * drift(z_t) + sqrt(dt) * sqrt(noise_variance) * xi,

with ``xi`` standard normal per coordinate.  ``noise_variance`` is exposed on
every public entry point, so the alternative reading (0.05 as the standard
deviation) is a one-line configuration change.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.parallel.rng import as_generator
from repro.particles.domain import Domain

__all__ = [
    "Integrator",
    "EulerMaruyama",
    "StochasticHeun",
    "get_integrator",
    "INTEGRATORS",
    "DEFAULT_NOISE_VARIANCE",
]

#: The paper's noise level: ``w ~ N(0, 0.05)`` throughout all experiments.
DEFAULT_NOISE_VARIANCE = 0.05

#: Any callable mapping positions to drift of the same shape.  The schemes
#: below are shape-agnostic, so single configurations ``(n, 2)`` and ensemble
#: snapshots ``(m, n, 2)`` integrate through the same code path — a
#: :class:`repro.particles.engine.DriftEngine` instance is a valid ``DriftFn``
#: (it dispatches on rank when called).
DriftFn = Callable[[np.ndarray], np.ndarray]


class Integrator(abc.ABC):
    """One-step integrator of ``dz = drift(z) dt + sqrt(noise_variance) dW``."""

    name: str = ""

    def __init__(self, *, noise_variance: float = DEFAULT_NOISE_VARIANCE) -> None:
        if noise_variance < 0:
            raise ValueError("noise_variance must be non-negative")
        self.noise_variance = float(noise_variance)

    @abc.abstractmethod
    def step(
        self,
        positions: np.ndarray,
        drift_fn: DriftFn,
        dt: float,
        rng: np.random.Generator,
        domain: Domain | None = None,
    ) -> np.ndarray:
        """Advance ``positions`` (any shape ``(..., 2)``) by one step of size ``dt``.

        When a :class:`~repro.particles.domain.Domain` is given, the updated
        positions are mapped back onto the domain's canonical coordinates
        (wrapped on a torus, reflected in a closed box, per axis on mixed
        boundaries — a channel wraps ``x`` and reflects ``y``) after every
        stage of
        the scheme — intermediate states such as Heun's predictor included.
        ``None`` (or the free domain) leaves positions untouched.
        """

    def _noise(self, shape: tuple[int, ...], dt: float, rng: np.random.Generator) -> np.ndarray:
        if self.noise_variance == 0.0:
            return np.zeros(shape)
        scale = np.sqrt(dt * self.noise_variance)
        return scale * rng.standard_normal(shape)

    @staticmethod
    def _confine(positions: np.ndarray, domain: Domain | None) -> np.ndarray:
        return positions if domain is None else domain.wrap(positions)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(noise_variance={self.noise_variance})"


class EulerMaruyama(Integrator):
    """The paper's scheme: explicit Euler drift plus Gaussian increment."""

    name = "euler-maruyama"

    def step(self, positions, drift_fn, dt, rng, domain=None) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        if dt <= 0:
            raise ValueError("dt must be positive")
        drift = drift_fn(positions)
        moved = positions + dt * drift + self._noise(positions.shape, dt, rng)
        return self._confine(moved, domain)


class StochasticHeun(Integrator):
    """Predictor–corrector (Heun) scheme with additive noise.

    For additive noise the Heun scheme is strong order 1.0 (vs 0.5 for
    Euler–Maruyama), which makes it a useful cross-check that reported
    observables are not integration artefacts.
    """

    name = "heun"

    def step(self, positions, drift_fn, dt, rng, domain=None) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        if dt <= 0:
            raise ValueError("dt must be positive")
        noise = self._noise(positions.shape, dt, rng)
        drift_here = drift_fn(positions)
        predictor = self._confine(positions + dt * drift_here + noise, domain)
        drift_there = drift_fn(predictor)
        return self._confine(positions + 0.5 * dt * (drift_here + drift_there) + noise, domain)


INTEGRATORS: dict[str, type[Integrator]] = {
    EulerMaruyama.name: EulerMaruyama,
    StochasticHeun.name: StochasticHeun,
    "euler": EulerMaruyama,
}


def get_integrator(
    name: str | Integrator,
    *,
    noise_variance: float = DEFAULT_NOISE_VARIANCE,
) -> Integrator:
    """Resolve an integrator by name or pass an existing instance through."""
    if isinstance(name, Integrator):
        return name
    key = str(name).lower()
    if key not in INTEGRATORS:
        raise KeyError(f"unknown integrator {name!r}; available: {sorted(INTEGRATORS)}")
    return INTEGRATORS[key](noise_variance=noise_variance)


def simulate_path(
    positions: np.ndarray,
    drift_fn: DriftFn,
    *,
    n_steps: int,
    dt: float,
    integrator: Integrator | str = "euler-maruyama",
    noise_variance: float = DEFAULT_NOISE_VARIANCE,
    rng: np.random.Generator | int | None = None,
    record_every: int = 1,
    domain: Domain | None = None,
) -> np.ndarray:
    """Integrate a path and return recorded frames, shape ``(n_frames, ..., 2)``.

    The initial state is always the first recorded frame.  ``record_every``
    thins the stored trajectory without changing the dynamics; ``domain``
    confines positions after every step (see :meth:`Integrator.step`).
    """
    if n_steps < 0:
        raise ValueError("n_steps must be non-negative")
    if record_every <= 0:
        raise ValueError("record_every must be positive")
    rng = as_generator(rng)
    stepper = get_integrator(integrator, noise_variance=noise_variance)
    current = np.asarray(positions, dtype=float).copy()
    frames = [current.copy()]
    for step_index in range(1, n_steps + 1):
        current = stepper.step(current, drift_fn, dt, rng, domain)
        if step_index % record_every == 0:
            frames.append(current.copy())
    return np.stack(frames, axis=0)
