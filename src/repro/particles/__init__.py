"""Particle-model substrate: types, forces, integration, ensembles.

This subpackage implements the interacting particle model of Harder & Polani
(2012), §4.1/§5.1 — the "physics" on top of which self-organization is
measured.  The public surface is re-exported here.
"""

from repro.particles.types import InteractionParams, random_symmetric_matrix, type_counts_to_assignment
from repro.particles.domain import (
    DOMAINS,
    ChannelDomain,
    Domain,
    FreeDomain,
    PeriodicDomain,
    ReflectingDomain,
    get_domain,
)
from repro.particles.forces import (
    FORCE_SCALINGS,
    ForceScaling,
    GaussianAdhesionForce,
    LinearAdhesionForce,
    drift_batch,
    drift_single,
    get_force_scaling,
    net_force_norms,
    pairwise_distance_matrix,
    preferred_distance_curve,
)
from repro.particles.neighbors import (
    NEIGHBOR_BACKENDS,
    BruteForceNeighbors,
    CellListNeighbors,
    KDTreeNeighbors,
    NeighborSearch,
    get_neighbor_search,
)
from repro.particles.engine import (
    DRIFT_ENGINES,
    AdaptiveDriftEngine,
    DenseDriftEngine,
    DriftEngine,
    SparseDriftEngine,
    collective_radius,
    engine_for_config,
    make_engine,
    resolve_engine,
    sparse_drift_batch,
)
from repro.particles.init_conditions import (
    default_disc_radius,
    grid_layout,
    uniform_box,
    uniform_box_ensemble,
    uniform_disc,
    uniform_disc_ensemble,
)
from repro.particles.integrators import (
    DEFAULT_NOISE_VARIANCE,
    EulerMaruyama,
    Integrator,
    StochasticHeun,
    get_integrator,
    simulate_path,
)
from repro.particles.equilibrium import (
    EquilibriumDetector,
    LimitCycleReport,
    detect_limit_cycle,
    total_force_norm,
)
from repro.particles.trajectory import EnsembleTrajectory, Trajectory
from repro.particles.model import ParticleSystem, SimulationConfig, initial_positions_for
from repro.particles.ensemble import (
    EnsembleRunStats,
    EnsembleSimulator,
    initial_ensemble_for,
    simulate_ensemble,
)

__all__ = [
    "InteractionParams",
    "random_symmetric_matrix",
    "type_counts_to_assignment",
    "ChannelDomain",
    "Domain",
    "FreeDomain",
    "PeriodicDomain",
    "ReflectingDomain",
    "DOMAINS",
    "get_domain",
    "ForceScaling",
    "LinearAdhesionForce",
    "GaussianAdhesionForce",
    "FORCE_SCALINGS",
    "get_force_scaling",
    "drift_single",
    "drift_batch",
    "net_force_norms",
    "pairwise_distance_matrix",
    "preferred_distance_curve",
    "NeighborSearch",
    "BruteForceNeighbors",
    "CellListNeighbors",
    "KDTreeNeighbors",
    "NEIGHBOR_BACKENDS",
    "get_neighbor_search",
    "DRIFT_ENGINES",
    "DriftEngine",
    "DenseDriftEngine",
    "SparseDriftEngine",
    "AdaptiveDriftEngine",
    "collective_radius",
    "resolve_engine",
    "make_engine",
    "engine_for_config",
    "sparse_drift_batch",
    "uniform_disc",
    "uniform_disc_ensemble",
    "uniform_box",
    "uniform_box_ensemble",
    "grid_layout",
    "default_disc_radius",
    "Integrator",
    "EulerMaruyama",
    "StochasticHeun",
    "get_integrator",
    "simulate_path",
    "DEFAULT_NOISE_VARIANCE",
    "EquilibriumDetector",
    "LimitCycleReport",
    "detect_limit_cycle",
    "total_force_norm",
    "Trajectory",
    "EnsembleTrajectory",
    "ParticleSystem",
    "SimulationConfig",
    "initial_positions_for",
    "EnsembleSimulator",
    "EnsembleRunStats",
    "initial_ensemble_for",
    "simulate_ensemble",
]
