"""Initial particle configurations.

The paper initialises every simulation run with particles placed uniformly at
random on a disc of fixed radius centred at the origin (§5.1).  That initial
distribution is invariant under rotations and same-type permutations (but not
translations), which is exactly the argument §4.2 uses when factoring out the
symmetry group.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.rng import as_generator

__all__ = [
    "uniform_disc",
    "uniform_disc_ensemble",
    "uniform_box",
    "uniform_box_ensemble",
    "grid_layout",
    "default_disc_radius",
]


def default_disc_radius(n_particles: int, target_density: float = 1.0) -> float:
    """Disc radius giving roughly ``target_density`` particles per unit area.

    A convenience for experiments that scale the particle count: the paper
    keeps the initial density roughly constant rather than the disc radius.
    """
    if n_particles <= 0:
        raise ValueError("n_particles must be positive")
    if target_density <= 0:
        raise ValueError("target_density must be positive")
    return float(np.sqrt(n_particles / (np.pi * target_density)))


def uniform_disc(
    n_particles: int,
    radius: float,
    rng: np.random.Generator | int | None = None,
    *,
    center: tuple[float, float] = (0.0, 0.0),
) -> np.ndarray:
    """Sample ``n_particles`` points uniformly on a disc.

    Uses the inverse-CDF radius transform ``R sqrt(u)`` so the density is
    uniform in area (a plain uniform radius would over-sample the centre).
    Returns an ``(n_particles, 2)`` array.
    """
    if n_particles < 0:
        raise ValueError("n_particles must be non-negative")
    if radius <= 0:
        raise ValueError("radius must be positive")
    rng = as_generator(rng)
    radii = radius * np.sqrt(rng.uniform(0.0, 1.0, size=n_particles))
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n_particles)
    points = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    return points + np.asarray(center, dtype=float)


def uniform_disc_ensemble(
    n_samples: int,
    n_particles: int,
    radius: float,
    rng: np.random.Generator | int | None = None,
    *,
    center: tuple[float, float] = (0.0, 0.0),
) -> np.ndarray:
    """Sample an ensemble of disc configurations, shape ``(n_samples, n_particles, 2)``."""
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    if n_particles < 0:
        raise ValueError("n_particles must be non-negative")
    if radius <= 0:
        raise ValueError("radius must be positive")
    rng = as_generator(rng)
    radii = radius * np.sqrt(rng.uniform(0.0, 1.0, size=(n_samples, n_particles)))
    angles = rng.uniform(0.0, 2.0 * np.pi, size=(n_samples, n_particles))
    points = np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=-1)
    return points + np.asarray(center, dtype=float)


def _box_extents(box) -> tuple[float, float]:
    """Normalise a scalar box side or an ``(Lx, Ly)`` pair."""
    if isinstance(box, (tuple, list, np.ndarray)):
        if len(box) != 2:
            raise ValueError(f"box must be a scalar side or an (Lx, Ly) pair, got {box!r}")
        side_x, side_y = float(box[0]), float(box[1])
    else:
        side_x = side_y = float(box)
    if side_x <= 0 or side_y <= 0:
        raise ValueError("box must be positive")
    return side_x, side_y


def uniform_box(
    n_particles: int,
    box,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample ``n_particles`` points uniformly in the box ``[0, Lx) × [0, Ly)``.

    ``box`` is a scalar side (square box) or an ``(Lx, Ly)`` pair.  The
    natural initial condition for bounded domains (periodic torus, reflecting
    box, channel): it is invariant under the translations the wrapped
    dynamics preserve, and the box sides — not the particle count — fix the
    density.  Returns an ``(n_particles, 2)`` array.  Square boxes keep the
    exact scalar draw of the pre-anisotropy code, so their RNG streams (and
    every downstream trajectory) stay bit-identical.
    """
    if n_particles < 0:
        raise ValueError("n_particles must be non-negative")
    side_x, side_y = _box_extents(box)
    rng = as_generator(rng)
    if side_x == side_y:
        return rng.uniform(0.0, side_x, size=(n_particles, 2))
    return rng.uniform(0.0, (side_x, side_y), size=(n_particles, 2))


def uniform_box_ensemble(
    n_samples: int,
    n_particles: int,
    box,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample an ensemble of box configurations, shape ``(n_samples, n_particles, 2)``.

    ``box`` is a scalar side or an ``(Lx, Ly)`` pair, as in :func:`uniform_box`.
    """
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    if n_particles < 0:
        raise ValueError("n_particles must be non-negative")
    side_x, side_y = _box_extents(box)
    rng = as_generator(rng)
    if side_x == side_y:
        return rng.uniform(0.0, side_x, size=(n_samples, n_particles, 2))
    return rng.uniform(0.0, (side_x, side_y), size=(n_samples, n_particles, 2))


def grid_layout(n_particles: int, spacing: float = 1.0) -> np.ndarray:
    """Deterministic square-grid layout centred at the origin.

    Not used by the paper's experiments (which always start from the random
    disc) but useful as a controlled, zero-entropy initial condition in tests
    and ablations — a system that starts ordered cannot self-organise further
    under the multi-information definition.
    """
    if n_particles < 0:
        raise ValueError("n_particles must be non-negative")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    side = int(np.ceil(np.sqrt(max(n_particles, 1))))
    xs, ys = np.meshgrid(np.arange(side), np.arange(side))
    points = np.column_stack([xs.ravel(), ys.ravel()])[:n_particles].astype(float)
    points *= spacing
    if n_particles:
        points -= points.mean(axis=0)
    return points
