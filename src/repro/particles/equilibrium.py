"""Equilibrium and limit-cycle detection.

The paper declares a collective to be in equilibrium "if for several time
steps the sum of the L2 norm of the sum of all forces acting on each particle
is below a specific threshold" (§4.1).  Some parameter choices never satisfy
that criterion and instead settle on a periodic orbit (§6); a simple
recurrence-based detector for that case is provided as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.particles.forces import net_force_norms

__all__ = ["EquilibriumDetector", "total_force_norm", "detect_limit_cycle", "LimitCycleReport"]


def total_force_norm(drift: np.ndarray) -> float | np.ndarray:
    """Sum of per-particle force norms; scalar for ``(n, 2)``, ``(m,)`` for ``(m, n, 2)``."""
    norms = net_force_norms(drift)
    return norms.sum(axis=-1)


@dataclass
class EquilibriumDetector:
    """Stateful detector implementing the paper's stopping criterion.

    Parameters
    ----------
    threshold:
        Upper bound on the summed force norm that counts as "quiet".
    patience:
        Number of *consecutive* quiet steps required before the system is
        declared to be in equilibrium.
    """

    threshold: float = 1e-2
    patience: int = 5

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.patience <= 0:
            raise ValueError("patience must be positive")
        self._quiet_steps = 0
        self._history: list[float] = []

    def update(self, drift: np.ndarray) -> bool:
        """Feed the drift of the current step; return True once equilibrium is reached."""
        value = float(total_force_norm(np.asarray(drift, dtype=float)))
        self._history.append(value)
        if value < self.threshold:
            self._quiet_steps += 1
        else:
            self._quiet_steps = 0
        return self._quiet_steps >= self.patience

    @property
    def history(self) -> np.ndarray:
        """Summed force norms seen so far (one entry per :meth:`update` call)."""
        return np.asarray(self._history)

    @property
    def quiet_steps(self) -> int:
        """Current run length of consecutive quiet steps."""
        return self._quiet_steps

    def reset(self) -> None:
        """Forget all history (reuse the detector for another run)."""
        self._quiet_steps = 0
        self._history = []


@dataclass(frozen=True)
class LimitCycleReport:
    """Result of :func:`detect_limit_cycle`."""

    is_periodic: bool
    period: int | None
    score: float


def detect_limit_cycle(
    positions: np.ndarray,
    *,
    max_period: int = 50,
    tail_fraction: float = 0.4,
    tolerance: float = 1e-2,
) -> LimitCycleReport:
    """Detect a periodic orbit in the tail of a trajectory.

    A trajectory ``(n_steps, n_particles, 2)`` is declared periodic with
    period ``p`` if, over the final ``tail_fraction`` of the run, the mean
    per-particle distance between frames ``t`` and ``t + p`` stays below
    ``tolerance`` — but the same comparison at lag 1 does **not** (otherwise
    the system is simply at rest, which the equilibrium detector already
    covers).

    Returns the smallest such period, or ``is_periodic=False`` with the best
    score found.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 3 or positions.shape[-1] != 2:
        raise ValueError("positions must have shape (n_steps, n_particles, 2)")
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must lie in (0, 1]")
    n_steps = positions.shape[0]
    tail_start = max(0, int(n_steps * (1.0 - tail_fraction)))
    tail = positions[tail_start:]
    if tail.shape[0] < 3:
        return LimitCycleReport(is_periodic=False, period=None, score=float("inf"))

    def lag_score(lag: int) -> float:
        if lag >= tail.shape[0]:
            return float("inf")
        delta = tail[lag:] - tail[:-lag]
        return float(np.sqrt(np.einsum("tik,tik->ti", delta, delta)).mean())

    rest_score = lag_score(1)
    if rest_score < tolerance:
        # The system is (noisily) at rest, not cycling.
        return LimitCycleReport(is_periodic=False, period=None, score=rest_score)

    best_period: int | None = None
    best_score = float("inf")
    for period in range(2, min(max_period, tail.shape[0] - 1) + 1):
        score = lag_score(period)
        if score < best_score:
            best_score = score
            best_period = period
        if score < tolerance:
            return LimitCycleReport(is_periodic=True, period=period, score=score)
    return LimitCycleReport(is_periodic=False, period=best_period, score=best_score)
