"""Type-dependent interaction parameters.

Each particle carries a fixed *type*; the pairwise interaction between a
particle of type ``alpha`` and one of type ``beta`` is governed by four
symmetric ``(l, l)`` parameter matrices (Harder & Polani 2012, §4.1):

``k``      interaction strength ``k_{alpha beta}`` (paper range ``[1, 10]``),
``r``      preferred distance ``r_{alpha beta}`` (paper range ``[0, 1]`` for
           the generic experiments, ``[1, 5]`` / ``[2, 8]`` in the sweeps),
``sigma``  attraction width of the Gaussian force ``F2`` (``sigma = 1``
           throughout the paper),
``tau``    repulsion width of ``F2`` (paper range ``[1, 10]``).

The paper only considers symmetric matrices — asymmetric preferences lead to
unstable or cycling dynamics — so symmetry is validated on construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.parallel.rng import as_generator

__all__ = ["InteractionParams", "random_symmetric_matrix", "type_counts_to_assignment"]


def random_symmetric_matrix(
    n_types: int,
    low: float,
    high: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a symmetric ``(n_types, n_types)`` matrix with entries in ``[low, high]``.

    Only the upper triangle (including the diagonal) is drawn; the lower
    triangle mirrors it, matching the paper's restriction to symmetric
    interaction matrices.
    """
    if n_types <= 0:
        raise ValueError("n_types must be positive")
    if high < low:
        raise ValueError(f"invalid range [{low}, {high}]")
    raw = rng.uniform(low, high, size=(n_types, n_types))
    upper = np.triu(raw)
    return upper + np.triu(raw, k=1).T


def type_counts_to_assignment(counts: Sequence[int]) -> np.ndarray:
    """Expand per-type particle counts into a type-index vector.

    ``[3, 2]`` → ``[0, 0, 0, 1, 1]``.  The assignment is fixed for the whole
    simulation run (types never change, §5.1).

    The dtype is explicitly ``int64``: ``dtype=int`` is platform-dependent
    (int32 on Windows), and this array flows into serialised run documents
    whose bytes participate in content hashes — those must not vary by
    platform.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("counts must be a non-empty 1-D sequence")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if counts.sum() == 0:
        raise ValueError("at least one particle is required")
    return np.repeat(np.arange(counts.size, dtype=np.int64), counts)


@dataclass(frozen=True)
class InteractionParams:
    """Symmetric pairwise interaction parameters for ``l`` particle types.

    Attributes
    ----------
    k:
        ``(l, l)`` interaction strengths.
    r:
        ``(l, l)`` preferred distances (used directly by ``F1``; for ``F2``
        the preferred distance is implied by ``sigma``/``tau``).
    sigma:
        ``(l, l)`` attraction widths of the Gaussian force ``F2``.
    tau:
        ``(l, l)`` repulsion widths of ``F2``.
    """

    k: np.ndarray
    r: np.ndarray
    sigma: np.ndarray
    tau: np.ndarray

    def __post_init__(self) -> None:
        k = np.atleast_2d(np.asarray(self.k, dtype=float))
        r = np.atleast_2d(np.asarray(self.r, dtype=float))
        sigma = np.atleast_2d(np.asarray(self.sigma, dtype=float))
        tau = np.atleast_2d(np.asarray(self.tau, dtype=float))
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "r", r)
        object.__setattr__(self, "sigma", sigma)
        object.__setattr__(self, "tau", tau)
        l = k.shape[0]
        for name, mat in (("k", k), ("r", r), ("sigma", sigma), ("tau", tau)):
            if mat.shape != (l, l):
                raise ValueError(f"{name} must have shape ({l}, {l}), got {mat.shape}")
            if not np.allclose(mat, mat.T, atol=1e-12):
                raise ValueError(f"{name} must be symmetric (the paper only studies symmetric matrices)")
            if not np.all(np.isfinite(mat)):
                raise ValueError(f"{name} must be finite")
        if np.any(sigma <= 0):
            raise ValueError("sigma entries must be positive")
        if np.any(tau <= 0):
            raise ValueError("tau entries must be positive")
        if np.any(r < 0):
            raise ValueError("r entries must be non-negative")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single_type(
        cls,
        *,
        k: float = 1.0,
        r: float = 1.0,
        sigma: float = 1.0,
        tau: float = 2.0,
    ) -> "InteractionParams":
        """Parameters for a uniform collective (one type, §6 / §7.1)."""
        one = np.ones((1, 1))
        return cls(k=k * one, r=r * one, sigma=sigma * one, tau=tau * one)

    @classmethod
    def from_matrices(
        cls,
        *,
        k: Any,
        r: Any,
        sigma: Any = None,
        tau: Any = None,
    ) -> "InteractionParams":
        """Build from explicit matrices, filling paper defaults for omitted ones.

        ``sigma`` defaults to 1 everywhere (as in the paper) and ``tau`` to 2.
        """
        k = np.atleast_2d(np.asarray(k, dtype=float))
        r = np.atleast_2d(np.asarray(r, dtype=float))
        l = k.shape[0]
        sigma_m = np.ones((l, l)) if sigma is None else np.atleast_2d(np.asarray(sigma, dtype=float))
        tau_m = 2.0 * np.ones((l, l)) if tau is None else np.atleast_2d(np.asarray(tau, dtype=float))
        return cls(k=k, r=r, sigma=sigma_m, tau=tau_m)

    @classmethod
    def random(
        cls,
        n_types: int,
        *,
        rng: np.random.Generator | int | None = None,
        k_range: tuple[float, float] = (1.0, 10.0),
        r_range: tuple[float, float] = (0.0, 1.0),
        tau_range: tuple[float, float] = (1.0, 10.0),
        sigma_value: float = 1.0,
        k_value: float | None = None,
    ) -> "InteractionParams":
        """Draw random symmetric parameters from the paper's ranges.

        ``k_value`` pins the strength matrix to a constant (the radius sweeps
        of Figs. 9–10 use ``k = 1`` with random ``r`` only).
        """
        rng = as_generator(rng)
        if k_value is not None:
            k = np.full((n_types, n_types), float(k_value))
        else:
            k = random_symmetric_matrix(n_types, *k_range, rng)
        r = random_symmetric_matrix(n_types, *r_range, rng)
        tau = random_symmetric_matrix(n_types, *tau_range, rng)
        sigma = np.full((n_types, n_types), float(sigma_value))
        return cls(k=k, r=r, sigma=sigma, tau=tau)

    @classmethod
    def clustering(
        cls,
        n_types: int,
        *,
        self_distance: float = 1.0,
        cross_distance: float = 3.0,
        k: float = 3.0,
        tau: float = 2.0,
    ) -> "InteractionParams":
        """Parameters that force same-type clustering.

        Smaller diagonal than off-diagonal preferred distances make particles
        of the same type pack tighter than particles of different type
        (§4.1), producing the membrane/nucleus-like morphologies of Fig. 1.
        """
        if n_types <= 0:
            raise ValueError("n_types must be positive")
        r = np.full((n_types, n_types), float(cross_distance))
        np.fill_diagonal(r, float(self_distance))
        return cls(
            k=np.full((n_types, n_types), float(k)),
            r=r,
            sigma=np.ones((n_types, n_types)),
            tau=np.full((n_types, n_types), float(tau)),
        )

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def n_types(self) -> int:
        """Number of particle types ``l``."""
        return int(self.k.shape[0])

    def pair_matrices(self, types: np.ndarray) -> dict[str, np.ndarray]:
        """Expand the type-indexed matrices to per-particle-pair matrices.

        Given the type assignment ``types`` of ``n`` particles, returns a dict
        of ``(n, n)`` arrays holding the parameter of each ordered particle
        pair.  These are what the vectorised force kernels consume.
        """
        types = np.asarray(types, dtype=int)
        if types.ndim != 1:
            raise ValueError("types must be 1-D")
        if types.size and (types.min() < 0 or types.max() >= self.n_types):
            raise ValueError(
                f"type indices must lie in [0, {self.n_types - 1}], got range "
                f"[{types.min()}, {types.max()}]"
            )
        idx = np.ix_(types, types)
        return {
            "k": self.k[idx],
            "r": self.r[idx],
            "sigma": self.sigma[idx],
            "tau": self.tau[idx],
        }

    def to_dict(self) -> dict[str, list[list[float]]]:
        """JSON-serialisable representation."""
        return {
            "k": self.k.tolist(),
            "r": self.r.tolist(),
            "sigma": self.sigma.tolist(),
            "tau": self.tau.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InteractionParams":
        """Inverse of :meth:`to_dict`."""
        return cls(
            k=np.asarray(data["k"], dtype=float),
            r=np.asarray(data["r"], dtype=float),
            sigma=np.asarray(data["sigma"], dtype=float),
            tau=np.asarray(data["tau"], dtype=float),
        )
