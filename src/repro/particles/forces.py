"""Force-scaling functions and vectorised drift evaluation.

The equation of motion (Harder & Polani 2012, Eq. 6) is the overdamped SDE

.. math::

    \\dot z_i = \\sum_{j \\in N_{r_c}(i)} -F_{\\alpha\\beta}(\\lVert\\Delta z_{ij}\\rVert_2)\\,\\Delta z_{ij} + w

with ``Δz_ij = z_i - z_j``, additive white Gaussian noise ``w`` and a hard
interaction cut-off at radius ``r_c``.  Two force-scaling functions are used:

* ``F1`` (Eq. 7): ``k (1 - r / x)`` — strong long-range attraction, diverging
  short-range repulsion, preferred distance exactly ``r``.
* ``F2`` (Eq. 8): ``k (σ^{-2} e^{-x²/(2σ)} - e^{-x²/(2τ)})`` — Gaussian
  attraction/repulsion pair with finite range.

Because the velocity contribution is ``-F(x) Δz`` (the displacement vector is
*not* normalised), positive ``F`` pulls particles together and negative ``F``
pushes them apart, with a magnitude that also grows with distance.

Two drift kernels operate on these scalings: the dense all-pairs broadcast
(:func:`drift_single` / :func:`drift_batch`) and a sparse neighbour-pair
segment-sum (:mod:`repro.particles.engine`).  Which kernel runs is selected
per experiment via ``SimulationConfig.engine`` (``"dense"``/``"sparse"``/
``"auto"`` — adaptive by default, re-resolved mid-run as the collective
contracts); both consume the per-pair weights produced by
:func:`pair_interaction_weights` and agree bit-for-bit (see the
bit-compatibility contract and the "Choosing an engine/backend" guide in
:mod:`repro.particles.engine`).

Both kernels take an optional :class:`~repro.particles.domain.Domain`: the
displacement ``Δz_ij`` goes through ``domain.displacement()``, which applies
the minimum image *per periodic axis* (every axis on a torus, only ``x`` in
a channel, with per-axis lengths on anisotropic boxes) and plain
subtraction on the free plane
and in a reflecting box.
"""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np

from repro.particles.domain import Domain, get_domain
from repro.particles.types import InteractionParams

__all__ = [
    "ForceScaling",
    "LinearAdhesionForce",
    "GaussianAdhesionForce",
    "get_force_scaling",
    "FORCE_SCALINGS",
    "pairwise_distance_matrix",
    "pair_interaction_weights",
    "drift_single",
    "drift_batch",
    "net_force_norms",
    "preferred_distance_curve",
]

#: Numerical floor on pairwise distances to keep ``F1``'s ``r/x`` term finite
#: when two particles coincide (measure-zero event but reachable numerically).
_DISTANCE_FLOOR = 1e-9


class ForceScaling(abc.ABC):
    """Scalar force-scaling function ``F_{αβ}(x)`` evaluated element-wise."""

    #: Short identifier used in configs ("F1", "F2").
    name: str = ""

    @abc.abstractmethod
    def scale(
        self,
        distance: np.ndarray,
        k: np.ndarray,
        r: np.ndarray,
        sigma: np.ndarray,
        tau: np.ndarray,
    ) -> np.ndarray:
        """Evaluate the scaling on broadcastable arrays of distances/parameters."""

    def __call__(self, distance, k, r, sigma, tau) -> np.ndarray:
        return self.scale(
            np.asarray(distance, dtype=float),
            np.asarray(k, dtype=float),
            np.asarray(r, dtype=float),
            np.asarray(sigma, dtype=float),
            np.asarray(tau, dtype=float),
        )

    def preferred_distance(self, k: float, r: float, sigma: float, tau: float) -> float:
        """Distance at which the scaling changes sign (zero crossing).

        For ``F1`` this is exactly ``r``; for ``F2`` it is found numerically
        on a fine grid (the analytic zero of Eq. 8 is
        ``x* = sqrt(2 ln(σ²) στ/(σ - τ))`` only when it exists).
        """
        xs = np.linspace(1e-3, 50.0, 20000)
        vals = self(xs, k, r, sigma, tau)
        sign_change = np.nonzero(np.diff(np.sign(vals)) != 0)[0]
        if sign_change.size == 0:
            return float("nan")
        i = sign_change[0]
        # Linear interpolation of the crossing.
        x0, x1 = xs[i], xs[i + 1]
        y0, y1 = vals[i], vals[i + 1]
        if y1 == y0:
            return float(x0)
        return float(x0 - y0 * (x1 - x0) / (y1 - y0))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class LinearAdhesionForce(ForceScaling):
    """``F1(x) = k (1 - r/x)`` — Eq. 7.

    Attraction saturates at ``k`` for large distances (until the cut-off) and
    the repulsion diverges as ``x → 0``, so the preferred distance ``r`` is a
    stiff minimum.
    """

    name = "F1"

    def scale(self, distance, k, r, sigma, tau) -> np.ndarray:
        safe = np.maximum(distance, _DISTANCE_FLOOR)
        return k * (1.0 - r / safe)


class GaussianAdhesionForce(ForceScaling):
    """``F2(x) = k (σ^{-2} exp(-x²/(2σ)) - exp(-x²/(2τ)))`` — Eq. 8.

    Both terms decay with distance, so interactions are effectively local even
    without a cut-off; the paper notes this makes ``F2`` collectives behave
    like locally-interacting systems.
    """

    name = "F2"

    def scale(self, distance, k, r, sigma, tau) -> np.ndarray:
        x2 = distance * distance
        attraction = np.exp(-x2 / (2.0 * sigma)) / (sigma * sigma)
        repulsion = np.exp(-x2 / (2.0 * tau))
        return k * (attraction - repulsion)


FORCE_SCALINGS: Mapping[str, ForceScaling] = {
    "F1": LinearAdhesionForce(),
    "F2": GaussianAdhesionForce(),
}


def get_force_scaling(name: str | ForceScaling) -> ForceScaling:
    """Resolve a force scaling by name (``"F1"``/``"F2"``) or pass through an instance."""
    if isinstance(name, ForceScaling):
        return name
    key = str(name).upper()
    if key not in FORCE_SCALINGS:
        raise KeyError(f"unknown force scaling {name!r}; available: {sorted(FORCE_SCALINGS)}")
    return FORCE_SCALINGS[key]


def preferred_distance_curve(
    scaling: ForceScaling | str,
    params: InteractionParams,
) -> np.ndarray:
    """Preferred (zero-force) distance for every type pair, shape ``(l, l)``."""
    scaling = get_force_scaling(scaling)
    l = params.n_types
    out = np.empty((l, l))
    for a in range(l):
        for b in range(l):
            out[a, b] = scaling.preferred_distance(
                params.k[a, b], params.r[a, b], params.sigma[a, b], params.tau[a, b]
            )
    return out


# ---------------------------------------------------------------------- #
# drift evaluation
# ---------------------------------------------------------------------- #
def pairwise_distance_matrix(
    positions: np.ndarray, domain: Domain | str | None = None
) -> np.ndarray:
    """Pairwise distance matrix for positions of shape ``(..., n, 2)``.

    Works for a single configuration ``(n, 2)`` or a batch ``(m, n, 2)``;
    the result has shape ``(..., n, n)``.  Distances follow the domain's
    displacement convention (minimum-image on a periodic domain; plain
    Euclidean by default).
    """
    positions = np.asarray(positions, dtype=float)
    domain = get_domain(domain)
    delta = domain.displacement(positions[..., :, None, :], positions[..., None, :, :])
    return np.sqrt(np.einsum("...ijk,...ijk->...ij", delta, delta))


def _interaction_weights(
    distance: np.ndarray,
    pair: Mapping[str, np.ndarray],
    scaling: ForceScaling,
    cutoff: float | None,
) -> np.ndarray:
    """Scalar weight ``-F_{αβ}(d_ij)`` per pair, with self- and cut-off masking."""
    weights = -scaling.scale(distance, pair["k"], pair["r"], pair["sigma"], pair["tau"])
    n = distance.shape[-1]
    eye = np.eye(n, dtype=bool)
    weights = np.where(eye, 0.0, weights)
    if cutoff is not None and np.isfinite(cutoff):
        weights = np.where(distance <= cutoff, weights, 0.0)
    return weights


def pair_interaction_weights(
    distance: np.ndarray,
    types_i: np.ndarray,
    types_j: np.ndarray,
    params: InteractionParams,
    scaling: ForceScaling | str,
    cutoff: float | None = None,
) -> np.ndarray:
    """Scalar drift weight ``-F_{αβ}(d)`` for explicit particle pairs.

    ``types_i``/``types_j`` are the type indices of the two ends of each pair
    and broadcast against ``distance``.  Pairs beyond ``cutoff`` get weight
    exactly ``0.0``.  This is the shared primitive of the sparse kernels in
    :mod:`repro.particles.engine` and the ``neighbor_pairs`` path of
    :func:`drift_single`; self-pairs are *not* masked here (neighbour
    backends never emit them).
    """
    scaling = get_force_scaling(scaling)
    weights = -scaling.scale(
        distance,
        params.k[types_i, types_j],
        params.r[types_i, types_j],
        params.sigma[types_i, types_j],
        params.tau[types_i, types_j],
    )
    if cutoff is not None and np.isfinite(cutoff):
        weights = np.where(distance <= cutoff, weights, 0.0)
    return weights


def drift_single(
    positions: np.ndarray,
    types: np.ndarray,
    params: InteractionParams,
    scaling: ForceScaling | str,
    cutoff: float | None = None,
    *,
    neighbor_pairs: tuple[np.ndarray, np.ndarray] | None = None,
    pair: Mapping[str, np.ndarray] | None = None,
    domain: Domain | str | None = None,
) -> np.ndarray:
    """Deterministic drift ``Σ_j -F(d_ij) Δz_ij`` for one configuration.

    Parameters
    ----------
    positions:
        ``(n, 2)`` particle coordinates.
    types:
        ``(n,)`` integer type assignment.
    params:
        Interaction parameter matrices.
    scaling:
        Force-scaling function or its name.
    cutoff:
        Interaction radius ``r_c``; ``None`` or ``inf`` means unconstrained
        interactions.
    neighbor_pairs:
        Optional precomputed ``(i_idx, j_idx)`` arrays of interacting ordered
        pairs (from a neighbour-search backend).  When given, only those pairs
        are evaluated — the sparse path used by :class:`ParticleSystem` for
        large, short-ranged systems.
    pair:
        Optional precomputed per-pair parameter matrices
        (``params.pair_matrices(types)``), reusable across time steps on the
        dense path; ignored when ``neighbor_pairs`` is given.
    domain:
        Simulation domain; pairwise displacements go through
        :meth:`~repro.particles.domain.Domain.displacement` (minimum-image
        on a periodic domain).  ``None`` means the free plane and evaluates
        the exact same arithmetic as before domains existed.
    """
    positions = np.asarray(positions, dtype=float)
    types = np.asarray(types, dtype=int)
    scaling = get_force_scaling(scaling)
    domain = get_domain(domain)
    n = positions.shape[0]
    if positions.shape != (n, 2):
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    if types.shape != (n,):
        raise ValueError("types must have shape (n,)")

    if neighbor_pairs is not None:
        i_idx, j_idx = neighbor_pairs
        delta = domain.displacement(positions[i_idx], positions[j_idx])
        dist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        weights = pair_interaction_weights(
            dist, types[i_idx], types[j_idx], params, scaling, cutoff=cutoff
        )
        weights = np.where(i_idx == j_idx, 0.0, weights)
        drift = np.zeros_like(positions)
        np.add.at(drift, i_idx, weights[:, None] * delta)
        return drift

    if pair is None:
        pair = params.pair_matrices(types)
    delta = domain.displacement(positions[:, None, :], positions[None, :, :])
    dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
    weights = _interaction_weights(dist, pair, scaling, cutoff)
    return np.einsum("ij,ijk->ik", weights, delta)


def drift_batch(
    positions: np.ndarray,
    types: np.ndarray,
    params: InteractionParams,
    scaling: ForceScaling | str,
    cutoff: float | None = None,
    *,
    pair: Mapping[str, np.ndarray] | None = None,
    domain: Domain | str | None = None,
) -> np.ndarray:
    """Vectorised drift for an ensemble snapshot of shape ``(m, n, 2)``.

    All samples share the same type assignment (as in the paper's
    experiments), which lets the per-pair parameter matrices be computed once
    and broadcast across the ensemble axis.  ``pair`` allows the caller to
    reuse those matrices across time steps, and ``domain`` selects the
    displacement convention (see :func:`drift_single`).
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 3 or positions.shape[-1] != 2:
        raise ValueError(f"positions must have shape (m, n, 2), got {positions.shape}")
    types = np.asarray(types, dtype=int)
    scaling = get_force_scaling(scaling)
    domain = get_domain(domain)
    if pair is None:
        pair = params.pair_matrices(types)
    delta = domain.displacement(positions[:, :, None, :], positions[:, None, :, :])
    dist = np.sqrt(np.einsum("mijk,mijk->mij", delta, delta))
    weights = -scaling.scale(dist, pair["k"], pair["r"], pair["sigma"], pair["tau"])
    n = positions.shape[1]
    eye = np.eye(n, dtype=bool)
    weights[:, eye] = 0.0
    if cutoff is not None and np.isfinite(cutoff):
        weights = np.where(dist <= cutoff, weights, 0.0)
    return np.einsum("mij,mijk->mik", weights, delta)


def net_force_norms(drift: np.ndarray) -> np.ndarray:
    """Per-particle L2 norms of the drift; shape ``(..., n)``.

    The paper's equilibrium criterion sums these norms over particles and
    requires the sum to stay below a threshold for several steps.
    """
    drift = np.asarray(drift, dtype=float)
    return np.sqrt(np.einsum("...ik,...ik->...i", drift, drift))
