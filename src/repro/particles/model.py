"""The particle system: configuration and single-run simulation.

This module wires the substrates together for one simulation run: interaction
parameters (:mod:`repro.particles.types`), the force kernels
(:mod:`repro.particles.forces`), a neighbour-search backend
(:mod:`repro.particles.neighbors`), a stochastic integrator
(:mod:`repro.particles.integrators`) and the equilibrium criterion
(:mod:`repro.particles.equilibrium`).

Ensembles of runs — the unit of analysis in the paper — are handled by
:class:`repro.particles.ensemble.EnsembleSimulator`, which shares the
:class:`SimulationConfig` defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from repro.parallel.rng import as_generator
from repro.particles.domain import Domain, get_domain
from repro.particles.engine import (
    AdaptiveDriftEngine,
    engine_for_config,
    heuristic_domain_radius,
    resolve_engine,
)
from repro.particles.equilibrium import EquilibriumDetector
from repro.particles.forces import get_force_scaling, net_force_norms
from repro.particles.init_conditions import default_disc_radius, uniform_box, uniform_disc
from repro.particles.integrators import DEFAULT_NOISE_VARIANCE, get_integrator
from repro.particles.neighbors import get_neighbor_search
from repro.particles.trajectory import Trajectory
from repro.particles.types import InteractionParams, type_counts_to_assignment

__all__ = ["SimulationConfig", "ParticleSystem", "initial_positions_for"]


@dataclass(frozen=True)
class SimulationConfig:
    """Full specification of one particle experiment (shared by all samples).

    Parameters
    ----------
    type_counts:
        Number of particles of each type; the total is the collective size
        ``n`` and the length is the number of types ``l``.
    params:
        Symmetric interaction matrices (must have ``l`` types).
    force:
        ``"F1"`` (Eq. 7) or ``"F2"`` (Eq. 8).
    cutoff:
        Interaction radius ``r_c``; ``None`` or ``inf`` disables the cut-off.
    domain:
        Simulation domain spec: ``"free"`` (the paper's unbounded plane,
        default), ``"periodic:<L>"`` (square torus ``[0, L)²`` with
        minimum-image interactions) or ``"reflecting:<L>"`` (closed box with
        reflecting walls).  A :class:`~repro.particles.domain.Domain`
        instance is accepted and normalised to its canonical spec string.
        Bounded domains draw their initial configurations uniformly in the
        box (the disc radius is ignored) and confine positions after every
        integration step; on the torus a finite cut-off must satisfy
        ``r_c <= L/2`` (minimum-image convention).
    dt:
        Integration step size.  The paper reports results per *time step*;
        one recorded step corresponds to ``substeps`` integration steps of
        size ``dt``.
    substeps:
        Integration sub-steps per recorded time step (≥ 1).  Allows small,
        stable ``dt`` while keeping the paper's "250 time steps" semantics.
    n_steps:
        Number of recorded time steps (``t_max``); the stored trajectory has
        ``n_steps + 1`` frames including the initial state.
    noise_variance:
        Variance of the additive Gaussian noise ``w`` (paper: 0.05).
    init_radius:
        Radius of the initial uniform disc; ``None`` derives it from the
        particle count at unit density.
    integrator:
        ``"euler-maruyama"`` (paper) or ``"heun"``.
    neighbor_backend:
        Neighbour-search backend of the sparse drift engine: ``"kdtree"``
        (default; strongest on non-uniform single snapshots), ``"cell"``
        (vectorised spatial hash — the only backend whose batched ensemble
        query hashes all samples at once, so prefer it for ensembles) or
        ``"brute"`` (reference implementation; materialises the full
        distance matrix, useful for testing only).  All backends return
        identical pair sets, so this is purely a performance choice.
    engine:
        Drift-evaluation engine — ``"dense"`` (all-pairs broadcast),
        ``"sparse"`` (neighbour-pair segment-sum) or ``"auto"`` (sparse for
        large collectives with a genuinely pruning cut-off; see
        :func:`repro.particles.engine.resolve_engine` and the
        "Choosing an engine/backend" section of
        :mod:`repro.particles.engine`).  Both single runs and ensembles
        honour this choice, and the engines agree bit-for-bit.
    auto_reresolve_every:
        Cadence (in recorded steps) at which an ``"auto"`` engine re-checks
        its dense/sparse choice against the *current* bounding box, so a
        contracting collective switches kernels mid-run (see
        :class:`repro.particles.engine.AdaptiveDriftEngine`).  ``0``
        disables adaptivity and resolves ``"auto"`` once from the initial
        disc radius.  Because the kernels agree bit-for-bit, this knob never
        changes a trajectory — only how fast it is computed.  Ignored for
        explicit ``"dense"``/``"sparse"`` choices.
    max_drift_norm:
        Optional per-particle cap on the drift magnitude, guarding against
        the ``F1`` singularity when two particles nearly coincide.
    equilibrium_threshold / equilibrium_patience:
        Parameters of the paper's stopping criterion.  The criterion is
        always *evaluated*; whether it stops the run early is decided by the
        caller (ensembles always run the full ``n_steps`` so that every
        sample has the same number of frames).
    """

    type_counts: tuple[int, ...]
    params: InteractionParams
    force: str = "F2"
    cutoff: float | None = None
    domain: str = "free"
    dt: float = 0.05
    substeps: int = 1
    n_steps: int = 250
    noise_variance: float = DEFAULT_NOISE_VARIANCE
    init_radius: float | None = None
    integrator: str = "euler-maruyama"
    neighbor_backend: str = "kdtree"
    engine: str = "auto"
    auto_reresolve_every: int = 25
    max_drift_norm: float | None = None
    equilibrium_threshold: float = 1e-2
    equilibrium_patience: int = 5

    def __post_init__(self) -> None:
        counts = tuple(int(c) for c in self.type_counts)
        object.__setattr__(self, "type_counts", counts)
        if len(counts) == 0 or any(c < 0 for c in counts) or sum(counts) == 0:
            raise ValueError("type_counts must contain non-negative counts summing to > 0")
        if len(counts) != self.params.n_types:
            raise ValueError(
                f"type_counts has {len(counts)} types but params has {self.params.n_types}"
            )
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.substeps <= 0:
            raise ValueError("substeps must be positive")
        if self.n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        if self.noise_variance < 0:
            raise ValueError("noise_variance must be non-negative")
        if self.cutoff is not None and self.cutoff <= 0:
            raise ValueError("cutoff must be positive (use None for unconstrained interactions)")
        if self.init_radius is not None and self.init_radius <= 0:
            raise ValueError("init_radius must be positive")
        if self.max_drift_norm is not None and self.max_drift_norm <= 0:
            raise ValueError("max_drift_norm must be positive")
        if self.auto_reresolve_every < 0:
            raise ValueError("auto_reresolve_every must be non-negative (0 disables)")
        # Resolve names eagerly so configuration errors surface at construction.
        get_force_scaling(self.force)
        get_integrator(self.integrator)
        get_neighbor_search(self.neighbor_backend)
        resolve_engine(self.engine, n_particles=sum(counts), cutoff=self.cutoff)
        # Normalise the domain to its canonical spec string (a Domain
        # instance is accepted) and check it against the cut-off.
        domain = get_domain(self.domain)
        domain.validate_cutoff(self.cutoff)
        object.__setattr__(self, "domain", domain.spec)

    # ------------------------------------------------------------------ #
    @property
    def n_particles(self) -> int:
        """Total collective size ``n``."""
        return int(sum(self.type_counts))

    @property
    def n_types(self) -> int:
        """Number of types ``l``."""
        return len(self.type_counts)

    @property
    def types(self) -> np.ndarray:
        """Per-particle type assignment (fixed for the whole experiment)."""
        return type_counts_to_assignment(self.type_counts)

    @property
    def disc_radius(self) -> float:
        """Radius of the initial uniform disc (free domain only)."""
        if self.init_radius is not None:
            return float(self.init_radius)
        return default_disc_radius(self.n_particles)

    @property
    def resolved_domain(self) -> Domain:
        """The :class:`~repro.particles.domain.Domain` instance this config selects."""
        return get_domain(self.domain)

    @property
    def domain_radius(self) -> float:
        """Characteristic radius of the configuration's geometry.

        ``box / 2`` on bounded domains, the initial disc radius on the free
        plane — what the ``"auto"`` engine heuristic compares the cut-off
        against (see :func:`repro.particles.engine.heuristic_domain_radius`,
        the single definition of the bounded-domain rule).
        """
        return heuristic_domain_radius(self.resolved_domain, self.disc_radius)

    @property
    def effective_cutoff(self) -> float:
        """Cut-off radius as a float (``inf`` when unconstrained)."""
        if self.cutoff is None:
            return float("inf")
        return float(self.cutoff)

    @property
    def resolved_engine(self) -> str:
        """The concrete engine (``"dense"``/``"sparse"``) ``"auto"`` resolves to."""
        return resolve_engine(
            self.engine,
            n_particles=self.n_particles,
            cutoff=self.cutoff,
            domain_radius=self.domain_radius,
        )

    def with_updates(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (used by the experiment registry).

        The ``domain`` key is *omitted* when it is the default free plane:
        this representation feeds the content hash of
        :func:`repro.core.plan.unit_content_hash`, and omit-when-default
        keeps every pre-existing free-space hash (and therefore every warm
        :class:`~repro.io.artifacts.RunStore`) byte-for-byte valid.
        """
        payload = {
            "type_counts": list(self.type_counts),
            "params": self.params.to_dict(),
            "force": self.force,
            "cutoff": None if self.cutoff is None else float(self.cutoff),
            "dt": self.dt,
            "substeps": self.substeps,
            "n_steps": self.n_steps,
            "noise_variance": self.noise_variance,
            "init_radius": self.init_radius,
            "integrator": self.integrator,
            "neighbor_backend": self.neighbor_backend,
            "engine": self.engine,
            "auto_reresolve_every": self.auto_reresolve_every,
            "max_drift_norm": self.max_drift_norm,
            "equilibrium_threshold": self.equilibrium_threshold,
            "equilibrium_patience": self.equilibrium_patience,
        }
        if self.domain != "free":
            payload["domain"] = self.domain
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationConfig":
        """Inverse of :meth:`to_dict` (a missing ``domain`` key means free space)."""
        payload = dict(data)
        payload["type_counts"] = tuple(payload["type_counts"])
        payload["params"] = InteractionParams.from_dict(payload["params"])
        return cls(**payload)


def initial_positions_for(
    config: SimulationConfig, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Draw one initial configuration for this config's domain.

    The free plane keeps the paper's uniform disc; bounded domains (periodic
    torus, reflecting box, channel — square or anisotropic) draw uniformly in
    the box — the box sides, not the particle count, then control the density.
    """
    rng = as_generator(rng)
    domain = config.resolved_domain
    if domain.bounded:
        return uniform_box(config.n_particles, domain.box, rng)
    return uniform_disc(config.n_particles, config.disc_radius, rng)


def _clip_drift(drift: np.ndarray, max_norm: float | None) -> np.ndarray:
    """Scale down per-particle drift vectors that exceed ``max_norm``."""
    if max_norm is None:
        return drift
    norms = net_force_norms(drift)
    factor = np.ones_like(norms)
    too_fast = norms > max_norm
    factor[too_fast] = max_norm / norms[too_fast]
    return drift * factor[..., None]


class ParticleSystem:
    """A single simulation run of the particle model.

    The system owns its positions, advances them step by step, tracks the
    equilibrium criterion and can record a full :class:`Trajectory`.  The
    drift is evaluated through the engine the configuration selects
    (:func:`repro.particles.engine.engine_for_config`): dense all-pairs for
    small or unconstrained collectives, a sparse neighbour-pair kernel for
    large ones with a pruning cut-off.
    """

    def __init__(
        self,
        config: SimulationConfig,
        *,
        rng: np.random.Generator | int | None = None,
        initial_positions: np.ndarray | None = None,
    ) -> None:
        self.config = config
        self.rng = as_generator(rng)
        self.types = config.types
        self._domain = config.resolved_domain
        self._integrator = get_integrator(config.integrator, noise_variance=config.noise_variance)
        self._engine = engine_for_config(config)
        self._equilibrium = EquilibriumDetector(
            threshold=config.equilibrium_threshold, patience=config.equilibrium_patience
        )
        if initial_positions is None:
            self.positions = initial_positions_for(config, self.rng)
        else:
            initial_positions = np.asarray(initial_positions, dtype=float)
            if initial_positions.shape != (config.n_particles, 2):
                raise ValueError(
                    f"initial_positions must have shape ({config.n_particles}, 2), "
                    f"got {initial_positions.shape}"
                )
            # Externally supplied states are mapped onto the domain's
            # canonical coordinates (identity on the free plane).
            self.positions = self._domain.wrap(initial_positions.copy())
        self._step_count = 0
        self._observers: list = []

    # ------------------------------------------------------------------ #
    @property
    def n_particles(self) -> int:
        return self.config.n_particles

    @property
    def step_count(self) -> int:
        """Number of recorded time steps taken so far."""
        return self._step_count

    @property
    def at_equilibrium(self) -> bool:
        """Whether the paper's stopping criterion has been met."""
        return self._equilibrium.quiet_steps >= self.config.equilibrium_patience

    @property
    def force_history(self) -> np.ndarray:
        """Summed force norm per recorded step (equilibrium diagnostic)."""
        return self._equilibrium.history

    @property
    def engine(self):
        """The resolved :class:`~repro.particles.engine.DriftEngine` of this run."""
        return self._engine

    def add_observer(self, observer) -> None:
        """Attach a step observer (see :class:`repro.monitor.observer.StepObserver`).

        Observers are notified with every *recorded* frame during
        :meth:`run` — a read-only view, after the frame has been stored — so
        they can watch the trajectory without perturbing it: an attached
        observer leaves the produced trajectory bit-identical to an
        unobserved run, and an empty observer list costs nothing.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously attached step observer."""
        self._observers.remove(observer)

    def _notify_observers(self, step: int, frame: np.ndarray) -> None:
        view = frame.view()
        view.flags.writeable = False
        for observer in self._observers:
            observer.on_step(step, view)

    def drift(self, positions: np.ndarray | None = None) -> np.ndarray:
        """Deterministic drift at the given (default: current) positions."""
        pos = self.positions if positions is None else np.asarray(positions, dtype=float)
        return _clip_drift(self._engine.drift(pos), self.config.max_drift_norm)

    def step(self) -> np.ndarray:
        """Advance by one recorded time step (``config.substeps`` integration steps)."""
        for _ in range(self.config.substeps):
            self.positions = self._integrator.step(
                self.positions, self.drift, self.config.dt, self.rng, self._domain
            )
        self._step_count += 1
        self._equilibrium.update(self.drift())
        self._maybe_reresolve_engine()
        return self.positions

    def _maybe_reresolve_engine(self) -> None:
        """Adaptive ``"auto"``: re-check dense vs sparse from the live bounding box."""
        cadence = self.config.auto_reresolve_every
        if (
            cadence
            and isinstance(self._engine, AdaptiveDriftEngine)
            and self._step_count % cadence == 0
        ):
            self._engine.reresolve(self.positions)

    def run(
        self,
        n_steps: int | None = None,
        *,
        stop_at_equilibrium: bool = False,
        record: bool = True,
    ) -> Trajectory:
        """Run the simulation and return the recorded trajectory.

        Parameters
        ----------
        n_steps:
            Number of recorded steps; defaults to ``config.n_steps``.
        stop_at_equilibrium:
            Stop early once the equilibrium criterion is satisfied.  The
            returned trajectory then contains only the frames actually taken.
        record:
            When False, only the final frame is kept (single-frame
            trajectory) — useful for equilibrium-shape studies.
        """
        total = self.config.n_steps if n_steps is None else int(n_steps)
        if total < 0:
            raise ValueError("n_steps must be non-negative")
        frames = [self.positions.copy()]
        if record and self._observers:
            self._notify_observers(self._step_count, frames[0])
        for _ in range(total):
            self.step()
            if record:
                frames.append(self.positions.copy())
                if self._observers:
                    self._notify_observers(self._step_count, frames[-1])
            if stop_at_equilibrium and self.at_equilibrium:
                break
        if not record:
            frames = [self.positions.copy()]
        return Trajectory(
            positions=np.stack(frames, axis=0),
            types=self.types,
            dt=self.config.dt * self.config.substeps,
        )
