"""Information-theoretic estimators used to quantify self-organization.

Contains the discrete reference implementations (§2), the continuous
estimators compared in §5.3 — KSG (the paper's choice), Gaussian-KDE and
binned/James–Stein baselines — the Kozachenko–Leonenko entropy estimator used
for the entropy-over-time diagnostics, and the coarse-grained decomposition
of multi-information (§3.1).
"""

from repro.infotheory.discrete import (
    conditional_entropy,
    entropy,
    entropy_from_counts,
    joint_entropy,
    marginal_distribution,
    multi_information,
    multi_information_from_samples,
    mutual_information,
)
from repro.infotheory.variables import as_variable_list, stack_variables, variable_dimensions
from repro.infotheory.histograms import (
    discretize,
    histogram_entropy,
    histogram_multi_information,
    js_shrinkage_probabilities,
    shrinkage_entropy,
)
from repro.infotheory.kde import kde_entropy, kde_multi_information
from repro.infotheory.knn import (
    ESTIMATOR_BACKENDS,
    KDTREE_MIN_SAMPLES,
    EuclideanBallCounter,
    ProductMetricTree,
    chebyshev_over_variables,
    kozachenko_leonenko_entropy,
    kth_neighbor_distances,
    kth_neighbor_indices,
    pairwise_euclidean,
    per_variable_distances,
    resolve_estimator_backend,
)
from repro.infotheory.ksg import (
    KSGDiagnostics,
    ksg_multi_information,
    ksg_multi_information_with_diagnostics,
)
from repro.infotheory.transfer import (
    conditional_mutual_information,
    embed_history,
    time_lagged_mutual_information,
    transfer_entropy,
)
from repro.infotheory.decomposition import (
    DecompositionResult,
    decompose_multi_information,
    groups_from_labels,
    validate_groups,
)

__all__ = [
    "entropy",
    "joint_entropy",
    "conditional_entropy",
    "mutual_information",
    "multi_information",
    "multi_information_from_samples",
    "marginal_distribution",
    "entropy_from_counts",
    "as_variable_list",
    "stack_variables",
    "variable_dimensions",
    "discretize",
    "histogram_entropy",
    "shrinkage_entropy",
    "histogram_multi_information",
    "js_shrinkage_probabilities",
    "kde_entropy",
    "kde_multi_information",
    "pairwise_euclidean",
    "per_variable_distances",
    "chebyshev_over_variables",
    "kth_neighbor_indices",
    "kth_neighbor_distances",
    "kozachenko_leonenko_entropy",
    "ESTIMATOR_BACKENDS",
    "KDTREE_MIN_SAMPLES",
    "resolve_estimator_backend",
    "ProductMetricTree",
    "EuclideanBallCounter",
    "ksg_multi_information",
    "ksg_multi_information_with_diagnostics",
    "KSGDiagnostics",
    "conditional_mutual_information",
    "time_lagged_mutual_information",
    "transfer_entropy",
    "embed_history",
    "DecompositionResult",
    "decompose_multi_information",
    "groups_from_labels",
    "validate_groups",
]
