"""k-nearest-neighbour primitives shared by the continuous estimators.

The KSG multi-information estimator and the Kozachenko–Leonenko entropy
estimator both need, for every sample, distances to its k-th nearest
neighbour under a particular norm.  For the ensemble sizes used in the paper
(m ≤ 1000) dense pairwise-distance matrices are both the simplest and the
fastest option in NumPy, so that is the default backend; a
:class:`scipy.spatial.cKDTree` backend is provided for the Euclidean case and
for larger sample counts.

Two families of backends coexist:

* the *dense* helpers (:func:`pairwise_euclidean`,
  :func:`per_variable_distances`, …) materialise ``(m, m)`` distance
  matrices — O(m²) time and memory, unbeatable for small ``m``;
* :class:`ProductMetricTree` answers the same queries in O(m log m)-ish time
  under the paper's joint metric (Eq. 19: the maximum over variable blocks of
  the per-block Euclidean distance) by pruning with a Chebyshev
  :class:`~scipy.spatial.cKDTree` over the concatenated coordinates and
  re-ranking candidates with the exact block metric.  Both backends compute
  the *same* quantities, so estimators built on either agree to floating-point
  tolerance — :func:`resolve_estimator_backend` picks between them by sample
  count, mirroring ``engine="auto"`` on the simulation side.
"""

from __future__ import annotations

from itertools import chain

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "pairwise_euclidean",
    "per_variable_distances",
    "chebyshev_over_variables",
    "k_nearest_neighbor_indices",
    "kth_neighbor_indices",
    "kth_neighbor_distances",
    "kozachenko_leonenko_entropy",
    "ESTIMATOR_BACKENDS",
    "KDTREE_MIN_SAMPLES",
    "resolve_estimator_backend",
    "ProductMetricTree",
    "EuclideanBallCounter",
]

#: Concrete estimator backends (``"auto"`` resolves to one of these).
ESTIMATOR_BACKENDS = ("dense", "kdtree")

#: Default sample count at which ``backend="auto"`` switches from the dense
#: O(m²) distance matrices to the tree-backed queries.  Below this the
#: matrix construction is faster than the per-query tree overhead; above it
#: the dense path's quadratic memory and argpartition cost dominate.  The
#: default is the measured crossover of the Frenzel–Pompe CMI; estimators
#: with different query mixes pass their own ``min_samples`` (the KSG1
#: lagged-MI path crosses much earlier because its marginal counts are
#: list-free, and the shared-embedding pairwise plan much later because its
#: dense path amortises the distance matrices across pairs).
KDTREE_MIN_SAMPLES = 1024


def resolve_estimator_backend(
    backend: str, *, n_samples: int, min_samples: int = KDTREE_MIN_SAMPLES
) -> str:
    """Resolve ``"dense" | "kdtree" | "auto"`` to a concrete backend.

    ``"auto"`` picks ``"kdtree"`` once ``n_samples >= min_samples``, the
    analogue of ``engine="auto"`` for the drift kernels.
    """
    if backend == "auto":
        return "kdtree" if n_samples >= min_samples else "dense"
    if backend not in ESTIMATOR_BACKENDS:
        raise ValueError(
            f"unknown estimator backend {backend!r}; expected one of "
            f"{ESTIMATOR_BACKENDS + ('auto',)}"
        )
    return backend


def pairwise_euclidean(samples: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix of samples ``(m, d)`` → ``(m, m)``.

    Uses the expanded-square formulation (one matmul) which is considerably
    faster than broadcasting differences for moderate ``d``.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    sq = np.einsum("ij,ij->i", samples, samples)
    gram = samples @ samples.T
    dist_sq = sq[:, None] + sq[None, :] - 2.0 * gram
    np.maximum(dist_sq, 0.0, out=dist_sq)
    dist = np.sqrt(dist_sq)
    # The expanded-square formulation leaves ~1e-8 residue on the diagonal;
    # pin it to the exact value so self-distances never perturb neighbour counts.
    np.fill_diagonal(dist, 0.0)
    return dist


def per_variable_distances(var_list: list[np.ndarray]) -> np.ndarray:
    """Per-observer Euclidean distance matrices, stacked to ``(n_vars, m, m)``."""
    return np.stack([pairwise_euclidean(v) for v in var_list], axis=0)


def chebyshev_over_variables(per_var: np.ndarray) -> np.ndarray:
    """The paper's joint metric (Eq. 19): max over observers of the per-observer L2 distance."""
    per_var = np.asarray(per_var, dtype=float)
    if per_var.ndim != 3:
        raise ValueError("per_var must have shape (n_vars, m, m)")
    return per_var.max(axis=0)


def _canonical_k_smallest(
    candidate_dist: np.ndarray, k: int, kth: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rows × columns of the canonical k smallest entries per row.

    ``candidate_dist`` is ``(u, c)`` with columns already in ascending
    *candidate-identity* order; ``kth`` is each row's k-th smallest value.
    Selection is by ``(distance, identity)`` lexicographic order: everything
    strictly below the k-th value, then ties *at* the k-th value by ascending
    column until exactly k are chosen.  This is the tie-breaking contract
    shared by the dense and tree backends, so rectangle variants (KSG2 /
    "paper") pick the *same* neighbour set on tie-heavy inputs — a
    prerequisite for bitwise cross-backend agreement on integer grids.
    """
    below = candidate_dist < kth[:, None]
    at = candidate_dist == kth[:, None]
    need = k - below.sum(axis=1)  # >= 1: the k-th value itself is a tie
    rank = np.cumsum(at, axis=1)
    chosen = below | (at & (rank <= need[:, None]))
    rows, cols = np.nonzero(chosen)  # row-major: per-row ascending columns
    return rows.reshape(-1, k), cols.reshape(-1, k)


def k_nearest_neighbor_indices(distance_matrix: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k nearest neighbours of every sample (self excluded), shape ``(m, k)``.

    The neighbours are ordered by increasing ``(distance, index)`` — ties at
    equal distance are broken by ascending sample index, so the selected set
    and its order are canonical (identical between the dense and tree
    backends, even on degenerate inputs with many repeated distances).
    Column ``k - 1`` is the k-th nearest neighbour.
    """
    distance_matrix = np.asarray(distance_matrix, dtype=float)
    m = distance_matrix.shape[0]
    if distance_matrix.shape != (m, m):
        raise ValueError("distance_matrix must be square")
    if not 1 <= k <= m - 1:
        raise ValueError(f"k must be in [1, m-1] = [1, {m - 1}], got {k}")
    work = distance_matrix.copy()
    np.fill_diagonal(work, np.inf)
    if k < m - 1:
        # A single partition at rank k pins the (k+1)-th value and leaves
        # the k smallest (unordered) in the first k columns; the selected
        # set is ambiguous only when a tie straddles that boundary.
        candidate_idx = np.argpartition(work, kth=k, axis=1)[:, : k + 1]
        candidate_dist = np.take_along_axis(work, candidate_idx, axis=1)
        kth_value = candidate_dist[:, :k].max(axis=1)
        ambiguous = candidate_dist[:, k] == kth_value
    else:
        candidate_idx = np.argpartition(work, kth=k - 1, axis=1)
        candidate_dist = np.take_along_axis(work, candidate_idx, axis=1)
        kth_value = candidate_dist[:, k - 1]
        ambiguous = np.zeros(m, dtype=bool)
    sel_idx = candidate_idx[:, :k]
    sel_dist = candidate_dist[:, :k]
    # Canonical order within the set: pre-sort by identity, then a stable
    # sort by distance keeps ascending index inside every tie group.
    by_index = np.argsort(sel_idx, axis=1)
    sel_idx = np.take_along_axis(sel_idx, by_index, axis=1)
    sel_dist = np.take_along_axis(sel_dist, by_index, axis=1)
    order = np.argsort(sel_dist, axis=1, kind="stable")
    out = np.take_along_axis(sel_idx, order, axis=1)
    if np.any(ambiguous):
        rows = np.nonzero(ambiguous)[0]
        sub = work[rows]
        rr, cols = _canonical_k_smallest(sub, k, kth_value[rows])
        dist = sub[rr, cols]
        order = np.argsort(dist, axis=1, kind="stable")
        out[rows] = np.take_along_axis(cols, order, axis=1)
    return out


def kth_neighbor_indices(distance_matrix: np.ndarray, k: int) -> np.ndarray:
    """Index of the k-th nearest neighbour of every sample (self excluded)."""
    return k_nearest_neighbor_indices(distance_matrix, k)[:, k - 1]


def kth_neighbor_distances(
    samples: np.ndarray, k: int, *, backend: str = "dense", workers: int = 1
) -> np.ndarray:
    """Euclidean distance of every sample to its k-th nearest neighbour.

    ``workers`` threads the kdtree query (scipy semantics, ``-1`` = all
    cores); it never changes the returned distances, only throughput, and
    defaults to 1 so CI runs stay single-threaded.  Ignored by the dense
    backend.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    m = samples.shape[0]
    if not 1 <= k <= m - 1:
        raise ValueError(f"k must be in [1, m-1] = [1, {m - 1}], got {k}")
    if backend == "kdtree":
        tree = cKDTree(samples)
        dist, _idx = tree.query(samples, k=k + 1, workers=workers)
        return dist[:, -1]
    if backend != "dense":
        raise ValueError(f"unknown backend {backend!r}")
    distance_matrix = pairwise_euclidean(samples)
    np.fill_diagonal(distance_matrix, np.inf)
    return np.partition(distance_matrix, kth=k - 1, axis=1)[:, k - 1]


class ProductMetricTree:
    """Exact neighbour queries under the paper's product metric, tree-backed.

    The joint metric of Eq. 19 is ``d(x, y) = max_i ||x_i - y_i||_2`` over
    variable blocks ``i``.  A :class:`~scipy.spatial.cKDTree` cannot search
    that metric directly, but the Chebyshev (L∞) distance over the
    concatenated coordinates is a *lower bound* for it (each block's L2 norm
    dominates the largest coordinate difference inside the block).  Both
    queries below therefore use the L∞ tree to produce a candidate superset
    and re-rank / filter the candidates with the exact block metric, so the
    results are identical to what the dense ``(m, m)`` matrices would give —
    only the tie-breaking of *indices* (never of distance values) can differ.

    Parameters
    ----------
    blocks:
        List of ``(m, d_i)`` sample matrices, one per variable block.  A
        single block makes the metric plain Euclidean.
    workers:
        Thread count forwarded to every :class:`~scipy.spatial.cKDTree`
        query (``-1`` = all cores).  Thread scheduling never changes the
        returned distances or counts, so this is purely a throughput knob;
        the default of 1 keeps CI runs determinism-auditable.
    """

    def __init__(self, blocks: list[np.ndarray], *, workers: int = 1) -> None:
        blocks = [np.atleast_2d(np.asarray(b, dtype=float)) for b in blocks]
        if not blocks:
            raise ValueError("need at least one variable block")
        m = blocks[0].shape[0]
        if any(b.ndim != 2 or b.shape[0] != m for b in blocks):
            raise ValueError("all blocks must be 2-D with the same number of samples")
        self.blocks = blocks
        self.n_samples = m
        self.workers = int(workers)
        self._coords = np.concatenate(blocks, axis=1) if len(blocks) > 1 else blocks[0]
        self._tree = cKDTree(self._coords)

    def _block_distances(self, query_idx: np.ndarray, candidate_idx: np.ndarray) -> np.ndarray:
        """Exact product-metric distances for ``(u,)`` queries × ``(u, c)`` candidates."""
        result: np.ndarray | None = None
        for block in self.blocks:
            diff = block[query_idx][:, None, :] - block[candidate_idx]
            dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            result = dist if result is None else np.maximum(result, dist, out=result)
        return result

    def kth_neighbor_distances(self, k: int) -> np.ndarray:
        """Distance of every sample to its k-th nearest neighbour (self excluded).

        Adaptive candidate search: query the L∞ tree for a growing number of
        neighbours until the k-th *exact* candidate distance is strictly below
        the L∞ radius covered by the retrieved set — at that point every point
        that could beat it has been examined, so the value is exact.
        """
        m = self.n_samples
        if not 1 <= k <= m - 1:
            raise ValueError(f"k must be in [1, m-1] = [1, {m - 1}], got {k}")
        eps = np.empty(m)
        pending = np.arange(m)
        n_candidates = min(m, 2 * (k + 1))
        while pending.size:
            dist_inf, idx = self._tree.query(
                self._coords[pending], k=n_candidates, p=np.inf, workers=self.workers
            )
            exact = self._block_distances(pending, idx)
            exact[idx == pending[:, None]] = np.inf  # exclude self by index
            kth = np.partition(exact, k - 1, axis=1)[:, k - 1]
            if n_candidates >= m:
                resolved = np.ones(pending.size, dtype=bool)
            else:
                # Strict, with an ulp guard: with ties at the L∞ frontier the
                # retrieved set may be an arbitrary subset, and the tree's
                # internally computed L∞ distances can differ from the exact
                # block distances in the last ulp, so only values clearly
                # inside the covered radius are accepted as final.
                resolved = kth * (1.0 + 1e-12) < dist_inf[:, -1]
            eps[pending[resolved]] = kth[resolved]
            pending = pending[~resolved]
            n_candidates = min(m, 2 * n_candidates)
        return eps

    def k_joint_neighbor_indices(self, k: int) -> np.ndarray:
        """Indices of the k nearest joint neighbours of every sample, shape ``(m, k)``.

        Same canonical ``(distance, index)`` ordering as
        :func:`k_nearest_neighbor_indices` on the dense joint matrix, and the
        same adaptive candidate search as :meth:`kth_neighbor_distances` —
        but the candidate *identities* are kept.  Once the k-th exact
        distance sits strictly inside the covered L∞ radius, every point
        with joint distance ≤ that value is guaranteed to be among the
        candidates (L∞ lower-bounds the product metric), so the canonical
        selection over the candidates is exact.  This is what the rectangle
        estimator variants (KSG2 / "paper") need: the neighbours themselves,
        not just the k-th distance.
        """
        m = self.n_samples
        if not 1 <= k <= m - 1:
            raise ValueError(f"k must be in [1, m-1] = [1, {m - 1}], got {k}")
        out = np.empty((m, k), dtype=np.intp)
        pending = np.arange(m)
        n_candidates = min(m, 2 * (k + 1))
        while pending.size:
            dist_inf, idx = self._tree.query(
                self._coords[pending], k=n_candidates, p=np.inf, workers=self.workers
            )
            exact = self._block_distances(pending, idx)
            exact[idx == pending[:, None]] = np.inf  # exclude self by index
            kth = np.partition(exact, k - 1, axis=1)[:, k - 1]
            if n_candidates >= m:
                resolved = np.ones(pending.size, dtype=bool)
            else:
                resolved = kth * (1.0 + 1e-12) < dist_inf[:, -1]
            if np.any(resolved):
                # Candidate columns sorted by sample index so the canonical
                # tie ranking (ascending index at equal distance) applies.
                by_index = np.argsort(idx[resolved], axis=1, kind="stable")
                idx_sorted = np.take_along_axis(idx[resolved], by_index, axis=1)
                exact_sorted = np.take_along_axis(exact[resolved], by_index, axis=1)
                rows, cols = _canonical_k_smallest(exact_sorted, k, kth[resolved])
                sel_idx = idx_sorted[rows, cols]
                sel_dist = exact_sorted[rows, cols]
                order = np.argsort(sel_dist, axis=1, kind="stable")
                out[pending[resolved]] = np.take_along_axis(sel_idx, order, axis=1)
            pending = pending[~resolved]
            n_candidates = min(m, 2 * n_candidates)
        return out

    def candidate_pairs_within(self, radii: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(query_idx, neighbor_idx)`` pairs of the per-sample L∞ balls.

        The L∞ ball is a superset of the product-metric ball of the same
        radius, so the returned pairs cover every point the exact metric
        could admit; self-pairs are included and the radii are inflated by a
        relative ulp margin so the tree's internal rounding can never exclude
        a point the exact (NumPy-computed) distance comparison would count.
        Callers apply the exact strict filter themselves.
        """
        radii = np.asarray(radii, dtype=float)
        if radii.shape != (self.n_samples,):
            raise ValueError(f"radii must have shape ({self.n_samples},), got {radii.shape}")
        lists = self._tree.query_ball_point(
            self._coords, r=radii * (1.0 + 1e-12), p=np.inf, workers=self.workers
        )
        sizes = np.fromiter((len(lst) for lst in lists), dtype=np.intp, count=self.n_samples)
        flat_neighbor = np.fromiter(chain.from_iterable(lists), dtype=np.intp, count=int(sizes.sum()))
        flat_query = np.repeat(np.arange(self.n_samples), sizes)
        return flat_query, flat_neighbor

    def counts_within(self, radii: np.ndarray) -> np.ndarray:
        """Per-sample count of points *strictly* inside ``radii`` (self excluded).

        Candidates come from :meth:`candidate_pairs_within` and are filtered
        with the exact metric — strict inequality included, which is what the
        Frenzel–Pompe / KSG counting rules require.
        """
        radii = np.asarray(radii, dtype=float)
        flat_query, flat_neighbor = self.candidate_pairs_within(radii)
        inside = flat_query != flat_neighbor
        bound = radii[flat_query]
        for block in self.blocks:
            diff = block[flat_query] - block[flat_neighbor]
            inside &= np.sqrt(np.einsum("ij,ij->i", diff, diff)) < bound
        return np.bincount(flat_query[inside], minlength=self.n_samples)


class EuclideanBallCounter:
    """List-free strict *or* inclusive ball counts for a *single* variable block.

    For one block the product metric degenerates to plain Euclidean distance,
    so per-sample counts of points inside per-sample radii can use
    ``cKDTree.query_ball_point(..., return_length=True)`` — no Python
    candidate lists.  Strictness comes from shrinking each radius by one ulp:
    for doubles ``d < r  ⇔  d <= pred(r)``, so the tree's inclusive test at
    the shrunk radius counts exactly the strict ball.  The inclusive mode
    (KSG2's ``<=`` rectangle counts) is the symmetric construction: the
    radius is *inflated* by a relative-ulp margin so the tree's internal
    squared-distance rounding can never drop a boundary point — e.g. on an
    integer grid ``fl(sqrt(3))**2 = 2.999…96 < 3``, so querying at the exact
    threshold would miss points the dense ``d <= r`` comparison counts.  The
    inflation is far below the relative gap between distinct grid distances
    (≈ 1/(2r²)), so grid counts are bitwise exact; for generic continuous
    data boundary rounding can flip a count by ±1, the same last-ulp caveat
    as everywhere else (covered by the estimators' tolerance contract).
    """

    def __init__(self, block: np.ndarray, *, workers: int = 1) -> None:
        block = np.atleast_2d(np.asarray(block, dtype=float))
        if block.ndim != 2:
            raise ValueError("block must be a 2-D sample matrix")
        self.block = block
        self.n_samples = block.shape[0]
        self.workers = int(workers)
        self._tree = cKDTree(block)

    def counts_within(self, radii: np.ndarray, *, inclusive: bool = False) -> np.ndarray:
        """Per-sample count of neighbours within ``radii`` (self excluded).

        Strict mode (default) counts ``||x_i - x_j||_2 < radii[i]``;
        ``inclusive=True`` counts ``<= radii[i]``, the KSG2 rectangle rule.
        """
        radii = np.asarray(radii, dtype=float)
        if radii.shape != (self.n_samples,):
            raise ValueError(f"radii must have shape ({self.n_samples},), got {radii.shape}")
        if inclusive:
            # d <= r ⇔ d < succ(r): inflate by at least one ulp, and by a
            # relative margin so the tree's internal rounding of boundary
            # distances can never exclude a point the dense comparison counts.
            grown = np.maximum(np.nextafter(radii, np.inf), radii * (1.0 + 1e-12))
            lengths = self._tree.query_ball_point(
                self.block, r=grown, p=2.0, return_length=True, workers=self.workers
            )
            # The self-pair (distance 0) is always inside an inclusive ball.
            return lengths - 1
        positive = radii > 0
        shrunk = np.where(positive, np.nextafter(radii, -np.inf), 0.0)
        lengths = self._tree.query_ball_point(
            self.block, r=shrunk, p=2.0, return_length=True, workers=self.workers
        )
        # A positive radius always admits the self-pair (distance 0); a zero
        # radius admits nothing under the strict comparison.
        return np.where(positive, lengths - 1, 0)


def kozachenko_leonenko_entropy(
    samples: np.ndarray, k: int = 5, *, backend: str = "dense", workers: int = 1
) -> float:
    """Kozachenko–Leonenko differential entropy estimate, in bits.

    ``h(X) ≈ ψ(m) - ψ(k) + log(c_d) + (d/m) Σ log ε_i`` with ``ε_i`` the
    distance to the k-th neighbour and ``c_d`` the volume of the unit
    d-ball.  Used for the entropy-over-time diagnostics of §6/§7.1 (the
    multi-information itself uses the KSG construction, which cancels these
    volume terms between joint and marginals).
    """
    from scipy.special import digamma, gammaln

    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    m, d = samples.shape
    backend = resolve_estimator_backend(backend, n_samples=m)
    eps = kth_neighbor_distances(samples, k, backend=backend, workers=workers)
    eps = np.maximum(eps, 1e-300)
    log_ball_volume = (d / 2.0) * np.log(np.pi) - gammaln(d / 2.0 + 1.0)
    nats = digamma(m) - digamma(k) + log_ball_volume + d * np.mean(np.log(eps))
    return float(nats / np.log(2.0))
