"""k-nearest-neighbour primitives shared by the continuous estimators.

The KSG multi-information estimator and the Kozachenko–Leonenko entropy
estimator both need, for every sample, distances to its k-th nearest
neighbour under a particular norm.  For the ensemble sizes used in the paper
(m ≤ 1000) dense pairwise-distance matrices are both the simplest and the
fastest option in NumPy, so that is the default backend; a
:class:`scipy.spatial.cKDTree` backend is provided for the Euclidean case and
for larger sample counts.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "pairwise_euclidean",
    "per_variable_distances",
    "chebyshev_over_variables",
    "k_nearest_neighbor_indices",
    "kth_neighbor_indices",
    "kth_neighbor_distances",
    "kozachenko_leonenko_entropy",
]


def pairwise_euclidean(samples: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix of samples ``(m, d)`` → ``(m, m)``.

    Uses the expanded-square formulation (one matmul) which is considerably
    faster than broadcasting differences for moderate ``d``.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    sq = np.einsum("ij,ij->i", samples, samples)
    gram = samples @ samples.T
    dist_sq = sq[:, None] + sq[None, :] - 2.0 * gram
    np.maximum(dist_sq, 0.0, out=dist_sq)
    dist = np.sqrt(dist_sq)
    # The expanded-square formulation leaves ~1e-8 residue on the diagonal;
    # pin it to the exact value so self-distances never perturb neighbour counts.
    np.fill_diagonal(dist, 0.0)
    return dist


def per_variable_distances(var_list: list[np.ndarray]) -> np.ndarray:
    """Per-observer Euclidean distance matrices, stacked to ``(n_vars, m, m)``."""
    return np.stack([pairwise_euclidean(v) for v in var_list], axis=0)


def chebyshev_over_variables(per_var: np.ndarray) -> np.ndarray:
    """The paper's joint metric (Eq. 19): max over observers of the per-observer L2 distance."""
    per_var = np.asarray(per_var, dtype=float)
    if per_var.ndim != 3:
        raise ValueError("per_var must have shape (n_vars, m, m)")
    return per_var.max(axis=0)


def k_nearest_neighbor_indices(distance_matrix: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k nearest neighbours of every sample (self excluded), shape ``(m, k)``.

    The neighbours are ordered by increasing distance, so column ``k - 1`` is
    the k-th nearest neighbour.
    """
    distance_matrix = np.asarray(distance_matrix, dtype=float)
    m = distance_matrix.shape[0]
    if distance_matrix.shape != (m, m):
        raise ValueError("distance_matrix must be square")
    if not 1 <= k <= m - 1:
        raise ValueError(f"k must be in [1, m-1] = [1, {m - 1}], got {k}")
    work = distance_matrix.copy()
    np.fill_diagonal(work, np.inf)
    candidate_idx = np.argpartition(work, kth=k - 1, axis=1)[:, :k]
    candidate_dist = np.take_along_axis(work, candidate_idx, axis=1)
    order = np.argsort(candidate_dist, axis=1)
    return np.take_along_axis(candidate_idx, order, axis=1)


def kth_neighbor_indices(distance_matrix: np.ndarray, k: int) -> np.ndarray:
    """Index of the k-th nearest neighbour of every sample (self excluded)."""
    return k_nearest_neighbor_indices(distance_matrix, k)[:, k - 1]


def kth_neighbor_distances(samples: np.ndarray, k: int, *, backend: str = "dense") -> np.ndarray:
    """Euclidean distance of every sample to its k-th nearest neighbour."""
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    m = samples.shape[0]
    if not 1 <= k <= m - 1:
        raise ValueError(f"k must be in [1, m-1] = [1, {m - 1}], got {k}")
    if backend == "kdtree":
        tree = cKDTree(samples)
        dist, _idx = tree.query(samples, k=k + 1)
        return dist[:, -1]
    if backend != "dense":
        raise ValueError(f"unknown backend {backend!r}")
    distance_matrix = pairwise_euclidean(samples)
    np.fill_diagonal(distance_matrix, np.inf)
    return np.partition(distance_matrix, kth=k - 1, axis=1)[:, k - 1]


def kozachenko_leonenko_entropy(samples: np.ndarray, k: int = 5, *, backend: str = "dense") -> float:
    """Kozachenko–Leonenko differential entropy estimate, in bits.

    ``h(X) ≈ ψ(m) - ψ(k) + log(c_d) + (d/m) Σ log ε_i`` with ``ε_i`` the
    distance to the k-th neighbour and ``c_d`` the volume of the unit
    d-ball.  Used for the entropy-over-time diagnostics of §6/§7.1 (the
    multi-information itself uses the KSG construction, which cancels these
    volume terms between joint and marginals).
    """
    from scipy.special import digamma, gammaln

    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    m, d = samples.shape
    eps = kth_neighbor_distances(samples, k, backend=backend)
    eps = np.maximum(eps, 1e-300)
    log_ball_volume = (d / 2.0) * np.log(np.pi) - gammaln(d / 2.0 + 1.0)
    nats = digamma(m) - digamma(k) + log_ball_volume + d * np.mean(np.log(eps))
    return float(nats / np.log(2.0))
