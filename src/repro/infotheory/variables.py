"""Canonical representation of observer variables for the continuous estimators.

Every multivariate estimator in :mod:`repro.infotheory` accepts observers in
one of three equivalent forms and normalises them with
:func:`as_variable_list`:

* a list of ``(m, d_i)`` arrays — one array per observer, possibly with
  different dimensionalities,
* an ``(m, n)`` array of scalar observers (one column each), or
* an ``(m, n, d)`` array of identically-shaped vector observers — the natural
  layout for aligned particle ensembles, where ``d = 2``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_variable_list", "stack_variables", "variable_dimensions"]


def as_variable_list(variables: list[np.ndarray] | tuple | np.ndarray) -> list[np.ndarray]:
    """Normalise observer input to a list of float ``(m, d_i)`` arrays.

    Raises if fewer than two observers are supplied (multi-information of a
    single variable is identically zero and almost always a caller bug) or if
    the sample counts disagree.
    """
    if isinstance(variables, np.ndarray):
        arr = np.asarray(variables, dtype=float)
        if arr.ndim == 2:
            var_list = [arr[:, i : i + 1] for i in range(arr.shape[1])]
        elif arr.ndim == 3:
            var_list = [arr[:, i, :] for i in range(arr.shape[1])]
        else:
            raise ValueError("array input must have shape (m, n) or (m, n, d)")
    else:
        var_list = [np.atleast_2d(np.asarray(v, dtype=float)) for v in variables]
    if len(var_list) < 2:
        raise ValueError("multi-information needs at least two observer variables")
    m = var_list[0].shape[0]
    for v in var_list:
        if v.ndim != 2:
            raise ValueError("each observer variable must be a 2-D array (m, d_i)")
        if v.shape[0] != m:
            raise ValueError("all observer variables must have the same number of samples")
    if m < 2:
        raise ValueError("at least two samples are required")
    return var_list


def stack_variables(var_list: list[np.ndarray]) -> np.ndarray:
    """Concatenate observer variables into the joint sample matrix ``(m, Σ d_i)``."""
    return np.concatenate([np.asarray(v, dtype=float) for v in var_list], axis=1)


def variable_dimensions(var_list: list[np.ndarray]) -> list[int]:
    """Dimensionalities ``d_i`` of each observer variable."""
    return [int(v.shape[1]) for v in var_list]
