"""Binned (histogram) entropy and multi-information estimators.

The paper compares the KSG estimator against a "shrinkage type binning
estimator" (James–Stein shrinkage of the cell probabilities, Hausser &
Strimmer 2009) and finds that binning badly over-estimates multi-information
in high dimension because the sampling is sparse (§5.3).  Both the plain
plug-in histogram estimator and the shrinkage variant are implemented here so
that comparison can be reproduced (see ``benchmarks`` and the estimator
ablation tests).
"""

from __future__ import annotations

import numpy as np

from repro.infotheory.discrete import entropy_from_counts
from repro.infotheory.variables import as_variable_list

__all__ = [
    "discretize",
    "histogram_entropy",
    "shrinkage_entropy",
    "histogram_multi_information",
    "js_shrinkage_probabilities",
]


def discretize(
    samples: np.ndarray,
    n_bins: int,
    *,
    ranges: tuple[float, float] | None = None,
) -> np.ndarray:
    """Map continuous samples ``(m, d)`` to integer bin indices ``(m, d)``.

    Each dimension is binned independently into ``n_bins`` equal-width bins
    over its own observed range (or an explicit common ``ranges`` tuple).
    The highest edge is inclusive so the maximum lands in the last bin.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    m, d = samples.shape
    out = np.empty((m, d), dtype=int)
    for column in range(d):
        x = samples[:, column]
        lo, hi = (x.min(), x.max()) if ranges is None else ranges
        if hi <= lo:
            out[:, column] = 0
            continue
        edges = np.linspace(lo, hi, n_bins + 1)
        idx = np.digitize(x, edges[1:-1], right=False)
        out[:, column] = idx
    return out


def js_shrinkage_probabilities(counts: np.ndarray, target: np.ndarray | None = None) -> np.ndarray:
    """James–Stein shrinkage estimate of cell probabilities.

    Shrinks the maximum-likelihood frequencies towards a target distribution
    (uniform by default) with the analytically optimal shrinkage intensity
    (Hausser & Strimmer 2009).  Returns a proper probability vector.
    """
    counts = np.asarray(counts, dtype=float).ravel()
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    n = counts.sum()
    if n <= 0:
        raise ValueError("counts must have positive total")
    p_ml = counts / n
    cells = counts.size
    if target is None:
        target = np.full(cells, 1.0 / cells)
    else:
        target = np.asarray(target, dtype=float)
        if target.shape != (cells,):
            raise ValueError("target must match the number of cells")
    if n <= 1:
        return target.copy()
    variance = p_ml * (1.0 - p_ml) / (n - 1)
    misfit = np.sum((target - p_ml) ** 2)
    if misfit <= 0:
        return p_ml
    intensity = float(np.clip(variance.sum() / misfit, 0.0, 1.0))
    return intensity * target + (1.0 - intensity) * p_ml


def histogram_entropy(samples: np.ndarray, n_bins: int, *, shrinkage: bool = False) -> float:
    """Entropy (bits) of continuous samples after equal-width binning.

    This is the *discrete* entropy of the binned variable — the quantity that
    enters the binned multi-information estimate (the bin-width terms cancel
    between joint and marginals).
    """
    binned = discretize(samples, n_bins)
    _cells, counts = np.unique(binned, axis=0, return_counts=True)
    if shrinkage:
        # Include the unobserved cells of the full product grid in the shrinkage
        # target; they carry shrunk mass and therefore contribute to the entropy.
        d = binned.shape[1]
        total_cells = n_bins**d
        full_counts = np.zeros(total_cells)
        full_counts[: counts.size] = counts
        probs = js_shrinkage_probabilities(full_counts)
        nz = probs[probs > 0]
        return float(-(nz * np.log2(nz)).sum())
    return entropy_from_counts(counts)


def shrinkage_entropy(samples: np.ndarray, n_bins: int) -> float:
    """Convenience wrapper: :func:`histogram_entropy` with James–Stein shrinkage."""
    return histogram_entropy(samples, n_bins, shrinkage=True)


def histogram_multi_information(
    variables: list[np.ndarray] | np.ndarray,
    n_bins: int = 8,
    *,
    shrinkage: bool = False,
) -> float:
    """Binned multi-information ``Σ H(X_i) - H(X_1, …, X_n)``.

    ``variables`` is a list of ``(m, d_i)`` arrays (one per observer) or an
    ``(m, n, d)`` array of identically-shaped observers.  Marginal and joint
    entropies use the same per-dimension binning so the differential-entropy
    offsets cancel exactly.
    """
    var_list = as_variable_list(variables)
    joint = np.concatenate(var_list, axis=1)
    joint_binned = discretize(joint, n_bins)
    offset = 0
    marginal_sum = 0.0
    for var in var_list:
        width = var.shape[1]
        block = joint_binned[:, offset : offset + width]
        _cells, counts = np.unique(block, axis=0, return_counts=True)
        if shrinkage:
            total_cells = n_bins**width
            full = np.zeros(total_cells)
            full[: counts.size] = counts
            probs = js_shrinkage_probabilities(full)
            nz = probs[probs > 0]
            marginal_sum += float(-(nz * np.log2(nz)).sum())
        else:
            marginal_sum += entropy_from_counts(counts)
        offset += width
    _cells, joint_counts = np.unique(joint_binned, axis=0, return_counts=True)
    if shrinkage:
        total_cells = min(n_bins ** joint.shape[1], 10_000_000)
        full = np.zeros(total_cells)
        full[: joint_counts.size] = joint_counts
        probs = js_shrinkage_probabilities(full)
        nz = probs[probs > 0]
        joint_h = float(-(nz * np.log2(nz)).sum())
    else:
        joint_h = entropy_from_counts(joint_counts)
    return float(marginal_sum - joint_h)
