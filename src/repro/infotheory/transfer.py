"""Conditional mutual information and transfer entropy (the §7.3 extension).

The paper's future-work section reports attempts to measure the information
*dynamics* between individual particles over time (local information
transfer, Lizier et al.).  This module provides the estimators needed for
that programme:

* :func:`conditional_mutual_information` — the Frenzel–Pompe k-nearest-
  neighbour estimator of ``I(A; B | C)``, the conditional counterpart of the
  KSG construction used for the multi-information.
* :func:`transfer_entropy` — ``T_{source → target} = I(target_{t+1};
  source_t | target_t^{(history)})`` evaluated by pooling realisations (and
  optionally time points) of an ensemble of trajectories.

Transfer entropy requires identifiable particles over time, so it operates on
the **raw** (unpermuted) trajectories — exactly the caveat §5.2 raises about
the permutation-reduced representation.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

from repro.infotheory.knn import chebyshev_over_variables, k_nearest_neighbor_indices, per_variable_distances

__all__ = [
    "conditional_mutual_information",
    "time_lagged_mutual_information",
    "transfer_entropy",
    "embed_history",
]

_LN2 = float(np.log(2.0))


def _counts_within(per_var_block: np.ndarray, epsilon: np.ndarray) -> np.ndarray:
    """Count, per sample, the points strictly inside ``epsilon`` for a block metric."""
    inside = per_var_block < epsilon[:, None]
    np.fill_diagonal(inside, False)
    return inside.sum(axis=1)


def _as_samples(x: np.ndarray) -> np.ndarray:
    """Coerce a 1-D series or a 2-D sample matrix to shape ``(m, d)``."""
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        return x.reshape(-1, 1)
    if x.ndim == 2:
        return x
    raise ValueError("samples must be 1-D or 2-D")


def conditional_mutual_information(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    k: int = 4,
) -> float:
    """Frenzel–Pompe kNN estimate of ``I(A; B | C)`` in bits.

    ``a``, ``b`` and ``c`` are ``(m, d_*)`` sample matrices (1-D inputs are
    treated as single columns).  The estimator finds the k-th neighbour in the
    joint (A, B, C) max-norm space and counts neighbours inside that radius in
    the (A, C), (B, C) and (C) subspaces:

    ``I(A; B | C) ≈ ψ(k) - ⟨ψ(n_{AC} + 1) + ψ(n_{BC} + 1) - ψ(n_C + 1)⟩``.
    """
    a = _as_samples(a)
    b = _as_samples(b)
    c = _as_samples(c)
    m = a.shape[0]
    if b.shape[0] != m or c.shape[0] != m:
        raise ValueError("a, b, c must have the same number of samples")
    if not 1 <= k <= m - 1:
        raise ValueError(f"k must satisfy 1 <= k <= m-1 (m={m}), got {k}")

    per_var = per_variable_distances([a, b, c])  # (3, m, m)
    d_a, d_b, d_c = per_var[0], per_var[1], per_var[2]
    joint = chebyshev_over_variables(per_var)
    kth_idx = k_nearest_neighbor_indices(joint, k)[:, -1]
    epsilon = joint[np.arange(m), kth_idx]

    d_ac = np.maximum(d_a, d_c)
    d_bc = np.maximum(d_b, d_c)
    n_ac = _counts_within(d_ac, epsilon)
    n_bc = _counts_within(d_bc, epsilon)
    n_c = _counts_within(d_c, epsilon)

    value_nats = float(
        digamma(k) - np.mean(digamma(n_ac + 1) + digamma(n_bc + 1) - digamma(n_c + 1))
    )
    return value_nats / _LN2


def embed_history(series: np.ndarray, history: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (future, present-history, shifted-source-ready) views of a trajectory set.

    ``series`` has shape ``(n_realizations, n_steps, d)``.  Returns

    * ``future``  — ``(n_realizations, n_steps - history, d)``: the value at ``t + history``…
    * ``past``    — ``(n_realizations, n_steps - history, history * d)``: the
      ``history`` preceding values, most recent last,
    * ``aligned`` — the same window of the raw series (useful to embed a
      different source series with identical alignment).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 3:
        raise ValueError("series must have shape (n_realizations, n_steps, d)")
    if history < 1:
        raise ValueError("history must be >= 1")
    n_real, n_steps, d = series.shape
    if n_steps <= history:
        raise ValueError("need more time steps than the history length")
    future = series[:, history:, :]
    past_blocks = [series[:, lag : n_steps - history + lag, :] for lag in range(history)]
    past = np.concatenate(past_blocks, axis=2)
    aligned = series[:, history - 1 : n_steps - 1, :]
    return future, past, aligned


def time_lagged_mutual_information(
    source: np.ndarray,
    target: np.ndarray,
    *,
    lag: int = 1,
    k: int = 4,
) -> float:
    """``I(source_t ; target_{t+lag})`` pooled over realisations and time, in bits.

    Both inputs have shape ``(n_realizations, n_steps, d)``.  This is the
    (unconditioned) precursor of the transfer entropy; it does not remove the
    target's own history.
    """
    from repro.infotheory.ksg import ksg_multi_information

    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != target.shape or source.ndim != 3:
        raise ValueError("source and target must both have shape (n_realizations, n_steps, d)")
    if lag < 0:
        raise ValueError("lag must be non-negative")
    n_steps = source.shape[1]
    if n_steps <= lag:
        raise ValueError("need more time steps than the lag")
    past = source[:, : n_steps - lag, :].reshape(-1, source.shape[2])
    future = target[:, lag:, :].reshape(-1, target.shape[2])
    return ksg_multi_information([past, future], k=k, variant="ksg1")


def transfer_entropy(
    source: np.ndarray,
    target: np.ndarray,
    *,
    history: int = 1,
    k: int = 4,
) -> float:
    """Transfer entropy ``T_{source → target}`` in bits.

    ``T = I(target_{t+1} ; source_t | target_t^{(history)})`` with samples
    pooled over realisations and time steps.  ``source`` and ``target`` have
    shape ``(n_realizations, n_steps, d)`` and must use the *raw* particle
    trajectories (identity preserved over time).
    """
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != target.shape or source.ndim != 3:
        raise ValueError("source and target must both have shape (n_realizations, n_steps, d)")
    future, target_past, _ = embed_history(target, history)
    _, _, source_aligned = embed_history(source, history)
    d = source.shape[2]
    a = future.reshape(-1, d)
    b = source_aligned.reshape(-1, d)
    c = target_past.reshape(-1, history * d)
    return conditional_mutual_information(a, b, c, k=k)
