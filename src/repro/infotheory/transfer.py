"""Conditional mutual information and transfer entropy (the §7.3 extension).

The paper's future-work section reports attempts to measure the information
*dynamics* between individual particles over time (local information
transfer, Lizier et al.).  This module provides the estimators needed for
that programme:

* :func:`conditional_mutual_information` — the Frenzel–Pompe k-nearest-
  neighbour estimator of ``I(A; B | C)``, the conditional counterpart of the
  KSG construction used for the multi-information.
* :func:`transfer_entropy` — ``T_{source → target} = I(target_{t+1};
  source_t | target_t^{(history)})`` evaluated by pooling realisations (and
  optionally time points) of an ensemble of trajectories.

Transfer entropy requires identifiable particles over time, so it operates on
the **raw** (unpermuted) trajectories — exactly the caveat §5.2 raises about
the permutation-reduced representation.

Backends
--------
Every estimator takes ``backend="dense" | "kdtree" | "auto"``:

``"dense"``
    Materialises the O(m²) per-variable distance matrices.  Fastest for
    small pooled sample counts and the historical reference implementation.
``"kdtree"``
    Answers the same k-th-neighbour / strict-ball-count queries through
    :class:`repro.infotheory.knn.ProductMetricTree` — a Chebyshev
    :class:`~scipy.spatial.cKDTree` candidate search re-ranked with the exact
    product metric.  O(m log m)-ish; the only differences from ``"dense"``
    are last-ulp floating-point effects, so the two agree to tight tolerance
    (bit-exactly on inputs whose distances are exactly representable).
``"auto"`` (default)
    Picks by pooled sample count via
    :func:`repro.infotheory.knn.resolve_estimator_backend`, mirroring
    ``engine="auto"`` on the simulation side.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

from repro.infotheory.knn import (
    EuclideanBallCounter,
    ProductMetricTree,
    k_nearest_neighbor_indices,
    per_variable_distances,
    resolve_estimator_backend,
)

# The KSG tree paths and their crossovers live with the estimator itself
# (repro.infotheory.ksg) and are shared here so the lagged-MI path and the
# pairwise shared-embedding plan use bit-identical arithmetic.
from repro.infotheory.ksg import (  # noqa: F401  (re-exported for the pairwise analysis)
    KSG1_KDTREE_MIN_SAMPLES,
    _ksg1_kdtree,
    _ksg1_value_from_counts,
    _ksg_kdtree,
    _rect_value_from_counts,
)

__all__ = [
    "conditional_mutual_information",
    "time_lagged_mutual_information",
    "transfer_entropy",
    "embed_history",
]

_LN2 = float(np.log(2.0))


def _counts_within(per_var_block: np.ndarray, epsilon: np.ndarray) -> np.ndarray:
    """Count, per sample, the points strictly inside ``epsilon`` for a block metric.

    The self-pair is excluded explicitly (the diagonal's contribution is
    subtracted) rather than by writing into the comparison result, so the
    helper never mutates shared distance blocks and repeated calls on the
    same block are idempotent.
    """
    per_var_block = np.asarray(per_var_block)
    inside = per_var_block < epsilon[:, None]
    counts = inside.sum(axis=1)
    self_inside = np.diagonal(per_var_block) < epsilon
    return counts - self_inside.astype(counts.dtype)


def _as_samples(x: np.ndarray) -> np.ndarray:
    """Coerce a 1-D series or a 2-D sample matrix to shape ``(m, d)``."""
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        return x.reshape(-1, 1)
    if x.ndim == 2:
        return x
    raise ValueError("samples must be 1-D or 2-D")


def _cmi_value_from_counts(n_ac: np.ndarray, n_bc: np.ndarray, n_c: np.ndarray, k: int) -> float:
    """Frenzel–Pompe digamma average, shared by every backend/plan so the
    arithmetic (and hence the result) is bit-identical across them."""
    value_nats = float(
        digamma(k) - np.mean(digamma(n_ac + 1) + digamma(n_bc + 1) - digamma(n_c + 1))
    )
    return value_nats / _LN2


def _cmi_from_dense_blocks(
    d_ac: np.ndarray,
    d_b: np.ndarray,
    d_c: np.ndarray,
    k: int,
) -> float:
    """Frenzel–Pompe value from precomputed dense blocks.

    ``d_ac = max(d_A, d_C)`` is the target-side block (pair-independent in
    the pairwise analysis), ``d_b`` the source block, ``d_c`` the
    conditioning block.  Shared by :func:`conditional_mutual_information` and
    the shared-embedding pairwise plan, which is what makes the two paths
    bit-identical.
    """
    m = d_ac.shape[0]
    joint = np.maximum(d_ac, d_b)
    kth_idx = k_nearest_neighbor_indices(joint, k)[:, -1]
    epsilon = joint[np.arange(m), kth_idx]
    n_ac = _counts_within(d_ac, epsilon)
    n_bc = _counts_within(np.maximum(d_b, d_c), epsilon)
    n_c = _counts_within(d_c, epsilon)
    return _cmi_value_from_counts(n_ac, n_bc, n_c, k)


def _cmi_kdtree(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    k: int,
    *,
    ac_tree: ProductMetricTree | None = None,
    c_counter: EuclideanBallCounter | None = None,
    workers: int = 1,
) -> float:
    """Tree-backed Frenzel–Pompe value.

    The joint k-th-neighbour radius comes from the product-metric tree; the
    conditioning count ``n_C`` is a single-block count and uses the list-free
    :class:`EuclideanBallCounter`; the (A, C) and (B, C) counts use
    product-metric candidate filtering.  The (A, C) tree and the C counter
    depend only on the target side, so the pairwise analysis builds them once
    per matrix row and passes them in — a fresh structure yields the same
    counts, which keeps the shared path bit-identical to the per-pair one.
    """
    joint = ProductMetricTree([a, b, c], workers=workers)
    epsilon = joint.kth_neighbor_distances(k)
    ac = ac_tree if ac_tree is not None else ProductMetricTree([a, c], workers=workers)
    cc = c_counter if c_counter is not None else EuclideanBallCounter(c, workers=workers)
    n_ac = ac.counts_within(epsilon)
    n_bc = ProductMetricTree([b, c], workers=workers).counts_within(epsilon)
    n_c = cc.counts_within(epsilon)
    return _cmi_value_from_counts(n_ac, n_bc, n_c, k)


def conditional_mutual_information(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    k: int = 4,
    *,
    backend: str = "auto",
    workers: int = 1,
) -> float:
    """Frenzel–Pompe kNN estimate of ``I(A; B | C)`` in bits.

    ``a``, ``b`` and ``c`` are ``(m, d_*)`` sample matrices (1-D inputs are
    treated as single columns).  The estimator finds the k-th neighbour in the
    joint (A, B, C) max-norm space and counts neighbours inside that radius in
    the (A, C), (B, C) and (C) subspaces:

    ``I(A; B | C) ≈ ψ(k) - ⟨ψ(n_{AC} + 1) + ψ(n_{BC} + 1) - ψ(n_C + 1)⟩``.

    ``backend`` selects the dense-matrix or tree-backed implementation (see
    the module docstring); ``"auto"`` picks by sample count.  ``workers``
    threads the tree backend's cKDTree queries (scipy semantics, ``-1`` =
    all cores) without changing any result; the dense backend ignores it.
    """
    a = _as_samples(a)
    b = _as_samples(b)
    c = _as_samples(c)
    m = a.shape[0]
    if b.shape[0] != m or c.shape[0] != m:
        raise ValueError("a, b, c must have the same number of samples")
    if not 1 <= k <= m - 1:
        raise ValueError(f"k must satisfy 1 <= k <= m-1 (m={m}), got {k}")
    if resolve_estimator_backend(backend, n_samples=m) == "kdtree":
        return _cmi_kdtree(a, b, c, k, workers=workers)
    per_var = per_variable_distances([a, b, c])  # (3, m, m)
    d_a, d_b, d_c = per_var[0], per_var[1], per_var[2]
    return _cmi_from_dense_blocks(np.maximum(d_a, d_c), d_b, d_c, k)


def _ksg1_from_dense_blocks(per_var_blocks: list[np.ndarray], k: int) -> float:
    """KSG algorithm 1 from precomputed per-variable dense distance blocks."""
    n_vars = len(per_var_blocks)
    m = per_var_blocks[0].shape[0]
    joint = np.maximum.reduce(per_var_blocks)
    kth_idx = k_nearest_neighbor_indices(joint, k)[:, -1]
    epsilon = joint[np.arange(m), kth_idx]
    counts = [_counts_within(block, epsilon) for block in per_var_blocks]
    return _ksg1_value_from_counts(counts, k, m)


def _ksg_from_dense_blocks(per_var_blocks: list[np.ndarray], k: int, variant: str) -> float:
    """Any KSG variant from precomputed per-variable dense distance blocks.

    Computes the exact same counts as
    :func:`repro.infotheory.ksg.ksg_multi_information_with_diagnostics` on the
    dense backend (canonical neighbour selection included), so the pairwise
    shared-embedding rows stay bit-identical to the per-pair estimator calls.
    """
    if variant == "ksg1":
        return _ksg1_from_dense_blocks(per_var_blocks, k)
    m = per_var_blocks[0].shape[0]
    joint = np.maximum.reduce(per_var_blocks)
    knn_idx = k_nearest_neighbor_indices(joint, k)
    sample_idx = np.arange(m)
    counts = []
    for block in per_var_blocks:
        if variant == "paper":
            thresholds = block[sample_idx, knn_idx[:, -1]]
            inside = block < thresholds[:, None]
            self_inside = np.diagonal(block) < thresholds
        else:  # ksg2
            thresholds = block[sample_idx[:, None], knn_idx].max(axis=1)
            inside = block <= thresholds[:, None]
            self_inside = np.diagonal(block) <= thresholds
        counts.append(inside.sum(axis=1) - self_inside.astype(np.intp))
    return _rect_value_from_counts(np.stack(counts), k, m, variant)


def embed_history(series: np.ndarray, history: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (future, present-history, shifted-source-ready) views of a trajectory set.

    ``series`` has shape ``(n_realizations, n_steps, d)``.  Returns

    * ``future``  — ``(n_realizations, n_steps - history, d)``: the value at ``t + history``…
    * ``past``    — ``(n_realizations, n_steps - history, history * d)``: the
      ``history`` preceding values, most recent last,
    * ``aligned`` — the same window of the raw series (useful to embed a
      different source series with identical alignment).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 3:
        raise ValueError("series must have shape (n_realizations, n_steps, d)")
    if history < 1:
        raise ValueError("history must be >= 1")
    n_real, n_steps, d = series.shape
    if n_steps <= history:
        raise ValueError("need more time steps than the history length")
    future = series[:, history:, :]
    past_blocks = [series[:, lag : n_steps - history + lag, :] for lag in range(history)]
    past = np.concatenate(past_blocks, axis=2)
    aligned = series[:, history - 1 : n_steps - 1, :]
    return future, past, aligned


def time_lagged_mutual_information(
    source: np.ndarray,
    target: np.ndarray,
    *,
    lag: int = 1,
    k: int = 4,
    backend: str = "auto",
    variant: str = "ksg1",
    workers: int = 1,
) -> float:
    """``I(source_t ; target_{t+lag})`` pooled over realisations and time, in bits.

    Both inputs have shape ``(n_realizations, n_steps, d)``.  This is the
    (unconditioned) precursor of the transfer entropy; it does not remove the
    target's own history.  Estimated with KSG ``variant`` (default algorithm
    1, the cheapest screening estimator) on the pooled (source-past,
    target-future) pairs; ``backend`` selects the dense or tree-backed
    implementation and ``workers`` threads the tree queries.
    """
    from repro.infotheory.ksg import ksg_multi_information

    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != target.shape or source.ndim != 3:
        raise ValueError("source and target must both have shape (n_realizations, n_steps, d)")
    if lag < 0:
        raise ValueError("lag must be non-negative")
    n_steps = source.shape[1]
    if n_steps <= lag:
        raise ValueError("need more time steps than the lag")
    past = source[:, : n_steps - lag, :].reshape(-1, source.shape[2])
    future = target[:, lag:, :].reshape(-1, target.shape[2])
    # The estimator owns the KSG backend registry (including the per-variant
    # measured crossovers), so the backend request is simply forwarded.
    return ksg_multi_information(
        [past, future], k=k, variant=variant, backend=backend, workers=workers
    )


def transfer_entropy(
    source: np.ndarray,
    target: np.ndarray,
    *,
    history: int = 1,
    k: int = 4,
    backend: str = "auto",
    workers: int = 1,
) -> float:
    """Transfer entropy ``T_{source → target}`` in bits.

    ``T = I(target_{t+1} ; source_t | target_t^{(history)})`` with samples
    pooled over realisations and time steps.  ``source`` and ``target`` have
    shape ``(n_realizations, n_steps, d)`` and must use the *raw* particle
    trajectories (identity preserved over time).  ``backend`` and ``workers``
    are forwarded to :func:`conditional_mutual_information`.
    """
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != target.shape or source.ndim != 3:
        raise ValueError("source and target must both have shape (n_realizations, n_steps, d)")
    future, target_past, _ = embed_history(target, history)
    _, _, source_aligned = embed_history(source, history)
    d = source.shape[2]
    a = future.reshape(-1, d)
    b = source_aligned.reshape(-1, d)
    c = target_past.reshape(-1, history * d)
    return conditional_mutual_information(a, b, c, k=k, backend=backend, workers=workers)
