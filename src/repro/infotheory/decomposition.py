"""Decomposition of multi-information over coarse-grained observers.

Grouping observers ``X_1, …, X_n`` into coarse-grained joint observers
``X̃_1, …, X̃_k`` decomposes the total multi-information (Eqs. 4–5):

.. math::

    I(X_1, …, X_n) = I(X̃_1, …, X̃_k) + \\sum_{j=1}^{k} I(X_{i \\in G_j})

i.e. one *between-group* term plus one *within-group* term per group
(singleton groups contribute zero).  The identity is exact for the true
distributions; with finite-sample estimators the two sides only agree
approximately, which is why :class:`DecompositionResult` keeps the separately
estimated total alongside the sum of the parts.

The paper groups particles by type (§6.1.1, Fig. 11) and asks which groups —
or the interaction *between* types — dominate the organization process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.infotheory.ksg import ksg_multi_information
from repro.infotheory.variables import as_variable_list, stack_variables

__all__ = [
    "DecompositionResult",
    "decompose_multi_information",
    "groups_from_labels",
    "validate_groups",
]

EstimatorFn = Callable[[list[np.ndarray]], float]


def groups_from_labels(labels: Sequence[int] | np.ndarray) -> list[list[int]]:
    """Build observer groups from per-observer labels (e.g. particle types).

    Observers sharing a label end up in the same group; groups are ordered by
    ascending label so "group j" corresponds to "type j" when labels are the
    particle types.
    """
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1 or labels.size == 0:
        raise ValueError("labels must be a non-empty 1-D sequence")
    return [np.nonzero(labels == value)[0].tolist() for value in np.unique(labels)]


def validate_groups(groups: Sequence[Sequence[int]], n_variables: int) -> list[list[int]]:
    """Check that ``groups`` is a partition of ``range(n_variables)``."""
    flat: list[int] = []
    cleaned: list[list[int]] = []
    for group in groups:
        members = [int(i) for i in group]
        if len(members) == 0:
            raise ValueError("groups must be non-empty")
        cleaned.append(members)
        flat.extend(members)
    if sorted(flat) != list(range(n_variables)):
        raise ValueError(
            f"groups must partition the {n_variables} observer variables exactly once each"
        )
    return cleaned


@dataclass(frozen=True)
class DecompositionResult:
    """Result of :func:`decompose_multi_information` (all values in bits).

    Attributes
    ----------
    total:
        Multi-information between all fine-grained observers, estimated
        directly.
    between_groups:
        Multi-information between the coarse-grained joint observers.
    within_groups:
        One value per group: the multi-information among the group's members
        (zero for singleton groups).
    groups:
        The observer index partition that was analysed.
    """

    total: float
    between_groups: float
    within_groups: tuple[float, ...]
    groups: tuple[tuple[int, ...], ...]

    @property
    def reconstructed_total(self) -> float:
        """Sum of the decomposition terms (equals ``total`` exactly only in the infinite-sample limit)."""
        return float(self.between_groups + sum(self.within_groups))

    @property
    def residual(self) -> float:
        """Estimation gap between the directly estimated total and the sum of parts."""
        return float(self.total - self.reconstructed_total)

    def normalized_contributions(self) -> dict[str, float]:
        """Each term divided by the directly estimated total (Fig. 11's normalisation).

        Returns zeros when the total is not positive (nothing to attribute).
        """
        if self.total <= 0:
            contributions = {"between": 0.0}
            contributions.update({f"within_{j}": 0.0 for j in range(len(self.within_groups))})
            return contributions
        contributions = {"between": self.between_groups / self.total}
        for j, value in enumerate(self.within_groups):
            contributions[f"within_{j}"] = value / self.total
        return contributions

    def to_dict(self) -> dict:
        """JSON-serialisable representation (used by the measurement round-trip)."""
        return {
            "total": float(self.total),
            "between_groups": float(self.between_groups),
            "within_groups": [float(v) for v in self.within_groups],
            "groups": [list(group) for group in self.groups],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecompositionResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            total=float(data["total"]),
            between_groups=float(data["between_groups"]),
            within_groups=tuple(float(v) for v in data["within_groups"]),
            groups=tuple(tuple(int(i) for i in group) for group in data["groups"]),
        )


def decompose_multi_information(
    variables: list[np.ndarray] | np.ndarray,
    groups: Sequence[Sequence[int]],
    *,
    estimator: EstimatorFn | None = None,
    k: int = 5,
) -> DecompositionResult:
    """Estimate the coarse-grained decomposition of the multi-information.

    Parameters
    ----------
    variables:
        Observer samples in any form accepted by the estimators.
    groups:
        Partition of the observer indices into coarse-grained groups (e.g.
        from :func:`groups_from_labels` applied to particle types).
    estimator:
        Callable mapping a list of ``(m, d_i)`` observer arrays to a scalar
        multi-information in bits.  Defaults to the KSG estimator with the
        given ``k``.
    """
    var_list = as_variable_list(variables)
    groups = validate_groups(groups, len(var_list))
    if estimator is None:
        estimator = lambda vs: ksg_multi_information(vs, k=k)  # noqa: E731

    total = float(estimator(var_list))

    coarse_vars = [stack_variables([var_list[i] for i in group]) for group in groups]
    if len(coarse_vars) >= 2:
        between = float(estimator(coarse_vars))
    else:
        between = 0.0

    within: list[float] = []
    for group in groups:
        if len(group) < 2:
            within.append(0.0)
            continue
        within.append(float(estimator([var_list[i] for i in group])))

    return DecompositionResult(
        total=total,
        between_groups=between,
        within_groups=tuple(within),
        groups=tuple(tuple(g) for g in groups),
    )
