"""Discrete information theory on explicit probability tables.

These are the textbook quantities of §2 (entropy, mutual information,
multi-information) computed exactly from discrete distributions.  They serve
two purposes: as the reference implementation that the continuous estimators
are validated against on discretised data, and as the vocabulary for the
decomposition identities of §3.1, which hold exactly in the discrete case.

All quantities are measured in bits (base-2 logarithms).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "entropy",
    "joint_entropy",
    "conditional_entropy",
    "mutual_information",
    "multi_information",
    "entropy_from_counts",
    "multi_information_from_samples",
    "marginal_distribution",
]

_EPS = 1e-15


def _validate_distribution(p: np.ndarray, *, normalize: bool) -> np.ndarray:
    p = np.asarray(p, dtype=float)
    if np.any(p < -1e-12):
        raise ValueError("probabilities must be non-negative")
    p = np.clip(p, 0.0, None)
    total = p.sum()
    if total <= 0:
        raise ValueError("distribution must have positive mass")
    if normalize:
        return p / total
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"distribution must sum to 1 (got {total}); pass normalize=True to rescale")
    return p


def entropy(p: np.ndarray, *, normalize: bool = False) -> float:
    """Shannon entropy ``H(X) = -Σ p log2 p`` of a distribution (any shape)."""
    p = _validate_distribution(p, normalize=normalize)
    nz = p[p > _EPS]
    return float(-(nz * np.log2(nz)).sum())


def joint_entropy(joint: np.ndarray, *, normalize: bool = False) -> float:
    """Entropy of a joint distribution given as an n-dimensional table."""
    return entropy(joint, normalize=normalize)


def marginal_distribution(joint: np.ndarray, axis: int) -> np.ndarray:
    """Marginal of one variable of a joint table (sum over all other axes)."""
    joint = np.asarray(joint, dtype=float)
    axes = tuple(i for i in range(joint.ndim) if i != axis)
    return joint.sum(axis=axes)


def conditional_entropy(joint: np.ndarray, *, given_axis: int, normalize: bool = False) -> float:
    """``H(rest | X_axis)`` from a joint table."""
    joint = _validate_distribution(joint, normalize=normalize)
    return joint_entropy(joint) - entropy(marginal_distribution(joint, given_axis))


def mutual_information(joint: np.ndarray, *, normalize: bool = False) -> float:
    """``I(X; Y) = H(X) + H(Y) - H(X, Y)`` from a 2-D joint table."""
    joint = _validate_distribution(joint, normalize=normalize)
    if joint.ndim != 2:
        raise ValueError("mutual_information expects a 2-D joint table")
    hx = entropy(marginal_distribution(joint, 0))
    hy = entropy(marginal_distribution(joint, 1))
    return hx + hy - joint_entropy(joint)


def multi_information(joint: np.ndarray, *, normalize: bool = False) -> float:
    """Multi-information ``I(X_1, …, X_n) = Σ H(X_i) - H(X_1, …, X_n)`` (Eq. 3)."""
    joint = _validate_distribution(joint, normalize=normalize)
    marginal_sum = sum(entropy(marginal_distribution(joint, axis)) for axis in range(joint.ndim))
    return float(marginal_sum - joint_entropy(joint))


def entropy_from_counts(counts: np.ndarray) -> float:
    """Plug-in (maximum-likelihood) entropy of empirical counts."""
    counts = np.asarray(counts, dtype=float)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    return entropy(counts, normalize=True)


def multi_information_from_samples(samples: np.ndarray) -> float:
    """Exact plug-in multi-information of discrete samples.

    ``samples`` has shape ``(n_samples, n_variables)`` with integer-valued
    (or otherwise hashable) entries.  The empirical joint distribution is
    built from the observed tuples; marginals follow by projection.  This is
    the exact discrete counterpart of what the KSG estimator approximates for
    continuous observers.
    """
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise ValueError("samples must have shape (n_samples, n_variables)")
    n_samples, n_variables = samples.shape
    if n_samples == 0:
        raise ValueError("at least one sample is required")

    _joint_values, joint_counts = np.unique(samples, axis=0, return_counts=True)
    joint_h = entropy_from_counts(joint_counts)
    marginal_h = 0.0
    for column in range(n_variables):
        _values, counts = np.unique(samples[:, column], return_counts=True)
        marginal_h += entropy_from_counts(counts)
    return float(marginal_h - joint_h)
