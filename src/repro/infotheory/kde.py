"""Kernel-density (Gaussian KDE) entropy and multi-information estimators.

The paper reports comparing the KSG estimator against a kernel-based approach
and finding it "multiple orders of magnitude slower" with larger variance in
high dimension (§5.3).  The resubstitution KDE estimator here lets that
comparison be reproduced: differential entropies of the joint and the
marginals are estimated with Gaussian kernels (Scott's-rule bandwidth via
:class:`scipy.stats.gaussian_kde`) and combined into a multi-information.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import gaussian_kde

from repro.infotheory.variables import as_variable_list, stack_variables

__all__ = ["kde_entropy", "kde_multi_information"]

_LN2 = float(np.log(2.0))


def _kde(samples: np.ndarray, bandwidth: str | float) -> gaussian_kde:
    # gaussian_kde expects (d, m); add a tiny jitter-free regularisation path
    # for degenerate (constant) dimensions by falling back to a small bandwidth.
    data = np.atleast_2d(np.asarray(samples, dtype=float)).T
    try:
        return gaussian_kde(data, bw_method=bandwidth)
    except np.linalg.LinAlgError:
        jitter = 1e-9 * np.random.default_rng(0).standard_normal(data.shape)
        return gaussian_kde(data + jitter, bw_method=bandwidth)


def kde_entropy(samples: np.ndarray, *, bandwidth: str | float = "scott") -> float:
    """Resubstitution estimate of the differential entropy, in bits.

    ``h(X) ≈ -(1/m) Σ_i log p̂(x_i)`` with ``p̂`` the Gaussian KDE fitted on
    the same samples.  Known to be biased low for small samples; adequate as
    the comparison baseline the paper refers to.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    if samples.shape[0] < 3:
        raise ValueError("kde_entropy needs at least 3 samples")
    kde = _kde(samples, bandwidth)
    density = np.maximum(kde(samples.T), 1e-300)
    return float(-np.mean(np.log(density)) / _LN2)


def kde_multi_information(
    variables: list[np.ndarray] | np.ndarray,
    *,
    bandwidth: str | float = "scott",
) -> float:
    """KDE estimate of ``I(W_1, …, W_n) = Σ h(W_i) - h(W_1, …, W_n)`` in bits."""
    var_list = as_variable_list(variables)
    joint = stack_variables(var_list)
    marginal_sum = sum(kde_entropy(v, bandwidth=bandwidth) for v in var_list)
    return float(marginal_sum - kde_entropy(joint, bandwidth=bandwidth))
