"""Kraskov–Stögbauer–Grassberger (KSG) multi-information estimator.

This is the paper's workhorse (§5.3, Eqs. 18–20).  Given ``m`` joint samples
of observers ``W_1, …, W_n`` (each observer a small vector, here a particle's
2-D position), the estimator is

.. math::

    \\hat I = \\psi(k) + (n-1)\\,\\psi(m)
              - \\big\\langle \\psi(c_1) + \\cdots + \\psi(c_n) \\big\\rangle

where the joint metric is the maximum over observers of the per-observer
Euclidean distance (Eq. 19), ``N_k(w)`` is the k-th nearest neighbour of
sample ``w`` under that metric, and ``c_i`` counts the samples whose
observer-``i`` distance is strictly smaller than the observer-``i`` distance
of that k-th neighbour (Eq. 20).

Three variants are exposed:

``"ksg2"`` (default)
    The standard KSG algorithm 2 (Kraskov et al. 2004): per-observer
    thresholds are the extent of the smallest axis-aligned rectangle
    containing all ``k`` joint neighbours, counts are inclusive, and the
    ``-(n-1)/k`` correction is applied.  This is the calibrated estimator —
    it recovers the analytic value for correlated Gaussians and is what the
    measurement pipeline uses.
``"ksg1"``
    KSG algorithm 1: a single joint ε per sample, counts taken strictly
    inside it, ``ψ(c_i + 1)`` in the average.  Also calibrated; slightly
    higher variance, slightly lower bias in high dimension.
``"paper"``
    The literal transcription of Eqs. 18–20 (per-observer distance to the
    joint k-th neighbour, strict counts, no correction).  It reproduces the
    *shape* of the curves but carries a positive offset of a few bits; kept
    for fidelity to the text and for the estimator-comparison benchmarks.

Backends
--------
Like the simulation engines and the §7.3 estimators, the estimator takes
``backend="dense" | "kdtree" | "auto"`` — for **every** variant.  The tree
backend answers the queries through
:class:`~repro.infotheory.knn.ProductMetricTree` (joint k-th-neighbour radii
— and, for the rectangle variants, the neighbour *identities* — under the
exact Eq. 19 product metric) and
:class:`~repro.infotheory.knn.EuclideanBallCounter` (list-free strict or
inclusive per-observer ball counts), so it computes the *same* counts as the
dense ``(n_vars, m, m)`` matrices — the two agree to floating-point
tolerance, bit-exactly on inputs whose distances are exactly representable
(integer grids, duplicated samples).  Neighbour ties are broken canonically
by ``(distance, sample index)`` on both backends, so even the tie-heavy
degenerate inputs select the same rectangle.  ``"auto"`` switches to the
tree at a per-variant measured crossover: :data:`KSG1_KDTREE_MIN_SAMPLES`
for ``"ksg1"`` (its strict counts are cheapest),
:data:`KSG2_KDTREE_MIN_SAMPLES` / :data:`PAPER_KDTREE_MIN_SAMPLES` for the
rectangle variants (their tree paths additionally materialise the ``(m, k)``
identity table).  ``workers=`` threads every underlying cKDTree query
(scipy semantics, ``-1`` = all cores) without changing any result.

All results are converted to **bits** (the digamma identities are in nats).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import digamma

from repro.infotheory.knn import (
    EuclideanBallCounter,
    ProductMetricTree,
    chebyshev_over_variables,
    k_nearest_neighbor_indices,
    per_variable_distances,
    resolve_estimator_backend,
)
from repro.infotheory.variables import as_variable_list

__all__ = [
    "ksg_multi_information",
    "KSGDiagnostics",
    "ksg_multi_information_with_diagnostics",
    "KSG_VARIANTS",
    "KSG1_KDTREE_MIN_SAMPLES",
    "KSG2_KDTREE_MIN_SAMPLES",
    "PAPER_KDTREE_MIN_SAMPLES",
]

_LN2 = float(np.log(2.0))

#: Every supported estimator variant, in the order the error messages cite.
KSG_VARIANTS = ("paper", "ksg1", "ksg2")

#: Measured dense/kdtree crossover of the KSG1 estimator: its marginal counts
#: are list-free tree queries, so the tree backend wins far earlier than for
#: the Frenzel–Pompe CMI (whose product-metric counts must filter candidate
#: lists).
KSG1_KDTREE_MIN_SAMPLES = 256

#: Measured dense/kdtree crossovers of the rectangle variants (2 × 2-D
#: observer blocks, k = 4, single worker; tree/dense ratio 1.25× at the KSG2
#: constant and ~1.1× at the "paper" one, growing to >25× by m = 4096).
#: Both pay for the adaptive identity search on top of KSG1's radius query;
#: "paper" crosses slightly later because its strict counts are cheaper on
#: the dense side.  Either way the tree overtakes well below paper scale
#: (m = 500 joint samples per figure point, m = 4000 pooled in §7.3).
KSG2_KDTREE_MIN_SAMPLES = 256
PAPER_KDTREE_MIN_SAMPLES = 384

#: Per-variant ``"auto"`` crossover table of :func:`_resolve_ksg_backend`.
_KSG_TREE_MIN_SAMPLES = {
    "ksg1": KSG1_KDTREE_MIN_SAMPLES,
    "ksg2": KSG2_KDTREE_MIN_SAMPLES,
    "paper": PAPER_KDTREE_MIN_SAMPLES,
}


def _ksg1_value_from_counts(per_block_counts: list[np.ndarray], k: int, m: int) -> float:
    """KSG algorithm-1 digamma average (strict counts, ``ψ(c_i + 1)``).

    Shared by the dense and tree backends (and the §7.3 lagged-MI path) so
    the arithmetic — and hence the result — is identical across them.
    """
    psi_terms = sum(digamma(counts + 1) for counts in per_block_counts)
    value_nats = float(digamma(k) + (len(per_block_counts) - 1) * digamma(m) - np.mean(psi_terms))
    return value_nats / _LN2


def _rect_value_from_counts(counts: np.ndarray, k: int, m: int, variant: str) -> float:
    """Digamma average of the rectangle variants ("paper" / "ksg2"), in bits.

    ``counts`` is the stacked ``(n_vars, m)`` count table.  Counts are >= k-ish
    by construction but can be 0 in degenerate cases (duplicated samples);
    clamp to 1 to keep psi finite, mirroring common implementations.  Shared
    by the dense and tree backends so the arithmetic — and hence the result —
    is identical across them.
    """
    n_vars = counts.shape[0]
    safe_counts = np.maximum(counts, 1)
    psi_terms = digamma(safe_counts).sum(axis=0)
    value_nats = digamma(k) + (n_vars - 1) * digamma(m) - psi_terms.mean()
    if variant == "ksg2":
        value_nats -= (n_vars - 1) / k
    return float(value_nats / _LN2)


def _ksg1_tree_counts(
    blocks: list[np.ndarray],
    k: int,
    block_counters: list[EuclideanBallCounter] | None = None,
    *,
    workers: int = 1,
) -> list[np.ndarray]:
    """Per-block strict neighbour counts of the tree-backed KSG1 path.

    Every marginal is a single block, so all counts use the list-free
    :class:`EuclideanBallCounter`; only the joint k-th-neighbour search needs
    the product-metric tree.  ``block_counters`` lets the pairwise analysis
    reuse target-side counters across matrix rows — a fresh counter yields
    the same counts, which keeps the shared path bit-identical.
    """
    joint = ProductMetricTree(blocks, workers=workers)
    epsilon = joint.kth_neighbor_distances(k)
    counters = (
        block_counters
        if block_counters is not None
        else [EuclideanBallCounter(b, workers=workers) for b in blocks]
    )
    return [counter.counts_within(epsilon) for counter in counters]


def _rect_tree_counts(
    blocks: list[np.ndarray],
    k: int,
    variant: str,
    block_counters: list[EuclideanBallCounter] | None = None,
    *,
    workers: int = 1,
) -> list[np.ndarray]:
    """Per-block neighbour counts of the tree-backed rectangle variants.

    The joint tree supplies the canonical ``(m, k)`` neighbour *identities*;
    per-observer thresholds are then exact coordinate distances to those
    neighbours ("paper": to the k-th; "ksg2": the rectangle extent over all
    k), and the single-block ball counter answers the counts — strict for
    "paper" (Eq. 20), inclusive for "ksg2" (algorithm 2 of Kraskov et al.).
    """
    joint = ProductMetricTree(blocks, workers=workers)
    knn_idx = joint.k_joint_neighbor_indices(k)
    counters = (
        block_counters
        if block_counters is not None
        else [EuclideanBallCounter(b, workers=workers) for b in blocks]
    )
    counts: list[np.ndarray] = []
    for block, counter in zip(blocks, counters):
        if variant == "paper":
            diff = block - block[knn_idx[:, -1]]
            thresholds = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            counts.append(counter.counts_within(thresholds))
        else:
            diff = block[:, None, :] - block[knn_idx]  # (m, k, d)
            dists = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            counts.append(counter.counts_within(dists.max(axis=1), inclusive=True))
    return counts


def _ksg_tree_counts(
    blocks: list[np.ndarray],
    k: int,
    variant: str,
    block_counters: list[EuclideanBallCounter] | None = None,
    *,
    workers: int = 1,
) -> list[np.ndarray]:
    """Variant dispatch for the tree-backed count tables."""
    if variant == "ksg1":
        return _ksg1_tree_counts(blocks, k, block_counters, workers=workers)
    return _rect_tree_counts(blocks, k, variant, block_counters, workers=workers)


def _ksg1_kdtree(
    blocks: list[np.ndarray],
    k: int,
    *,
    block_counters: list[EuclideanBallCounter] | None = None,
    workers: int = 1,
) -> float:
    """Tree-backed KSG algorithm 1 (strict counts, ``ψ(c_i + 1)`` average)."""
    counts = _ksg1_tree_counts(blocks, k, block_counters, workers=workers)
    return _ksg1_value_from_counts(counts, k, blocks[0].shape[0])


def _ksg_kdtree(
    blocks: list[np.ndarray],
    k: int,
    variant: str,
    *,
    block_counters: list[EuclideanBallCounter] | None = None,
    workers: int = 1,
) -> float:
    """Tree-backed KSG value for any variant (used by the §7.3 matrix rows)."""
    counts = _ksg_tree_counts(blocks, k, variant, block_counters, workers=workers)
    if variant == "ksg1":
        return _ksg1_value_from_counts(counts, k, blocks[0].shape[0])
    return _rect_value_from_counts(np.stack(counts), k, blocks[0].shape[0], variant)


@dataclass(frozen=True)
class KSGDiagnostics:
    """Intermediate quantities of one KSG evaluation (useful for tests/debugging).

    Attributes
    ----------
    value_bits:
        The multi-information estimate in bits.
    counts:
        ``(n_vars, m)`` neighbour counts ``c_i`` entering the digamma average.
    k:
        Neighbour order used.
    variant:
        Which estimator variant produced the value.
    """

    value_bits: float
    counts: np.ndarray
    k: int
    variant: str


def _validate_k(k: int, m: int) -> None:
    if not 1 <= k <= m - 1:
        raise ValueError(f"k must satisfy 1 <= k <= m-1 (m={m}), got {k}")


def ksg_multi_information(
    variables: list[np.ndarray] | np.ndarray,
    k: int = 5,
    *,
    variant: str = "ksg2",
    backend: str = "dense",
    workers: int = 1,
) -> float:
    """KSG estimate of the multi-information ``I(W_1, …, W_n)`` in bits.

    Parameters
    ----------
    variables:
        Observer samples; a list of ``(m, d_i)`` arrays, an ``(m, n)`` array
        of scalar observers, or an ``(m, n, d)`` array of vector observers.
    k:
        Neighbour order.  The paper uses ``k = 5`` in the methods section and
        ``k = 4`` for the experiment figures; results are insensitive in that
        range.
    variant:
        ``"ksg2"`` (default), ``"ksg1"`` or ``"paper"`` — see module docstring.
    backend:
        ``"dense"`` (default), ``"kdtree"`` or ``"auto"`` — see the
        *Backends* section of the module docstring.
    workers:
        Thread count for the tree backend's cKDTree queries (scipy
        semantics, ``-1`` = all cores).  Pure throughput knob: never changes
        the result.  Ignored by the dense backend.
    """
    return ksg_multi_information_with_diagnostics(
        variables, k, variant=variant, backend=backend, workers=workers
    ).value_bits


def _resolve_ksg_backend(backend: str, variant: str, m: int) -> str:
    """Resolve the backend request for a variant (per-variant auto crossover)."""
    return resolve_estimator_backend(
        backend, n_samples=m, min_samples=_KSG_TREE_MIN_SAMPLES[variant]
    )


def ksg_multi_information_with_diagnostics(
    variables: list[np.ndarray] | np.ndarray,
    k: int = 5,
    *,
    variant: str = "ksg2",
    backend: str = "dense",
    workers: int = 1,
) -> KSGDiagnostics:
    """Same as :func:`ksg_multi_information` but returning intermediate counts."""
    var_list = as_variable_list(variables)
    n_vars = len(var_list)
    m = var_list[0].shape[0]
    _validate_k(k, m)
    if variant not in KSG_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected 'paper', 'ksg1' or 'ksg2'")

    if _resolve_ksg_backend(backend, variant, m) == "kdtree":
        tree_counts = _ksg_tree_counts(var_list, k, variant, workers=workers)
        if variant == "ksg1":
            value_bits = _ksg1_value_from_counts(tree_counts, k, m)
        else:
            value_bits = _rect_value_from_counts(np.stack(tree_counts), k, m, variant)
        return KSGDiagnostics(
            value_bits=value_bits,
            counts=np.stack(tree_counts),
            k=k,
            variant=variant,
        )

    per_var = per_variable_distances(var_list)  # (n_vars, m, m)
    joint = chebyshev_over_variables(per_var)  # (m, m)
    knn_idx = k_nearest_neighbor_indices(joint, k)  # (m, k), sorted by distance
    kth_idx = knn_idx[:, -1]  # (m,)
    sample_idx = np.arange(m)

    if variant == "ksg1":
        # Single joint epsilon per sample; strict inequality against it.
        epsilon = joint[sample_idx, kth_idx]  # (m,)
        thresholds = np.broadcast_to(epsilon, (n_vars, m))
        inside = per_var < thresholds[:, :, None]
    elif variant == "paper":
        # Eq. 20 literally: the per-observer distance to the joint k-th
        # neighbour, counting strictly inside it.
        thresholds = per_var[:, sample_idx, kth_idx]  # (n_vars, m)
        inside = per_var < thresholds[:, :, None]
    else:
        # KSG algorithm 2: the per-observer extent of the smallest rectangle
        # containing all k joint neighbours, counted inclusively.
        neighbor_dists = per_var[:, sample_idx[:, None], knn_idx]  # (n_vars, m, k)
        thresholds = neighbor_dists.max(axis=2)  # (n_vars, m)
        inside = per_var <= thresholds[:, :, None]

    # counts[i, s] = #{s' != s : d_i(s, s') inside threshold[i, s]}
    diag = np.zeros((m, m), dtype=bool)
    np.fill_diagonal(diag, True)
    inside &= ~diag[None, :, :]
    counts = inside.sum(axis=2)  # (n_vars, m)

    if variant == "ksg1":
        psi_terms = digamma(counts + 1).sum(axis=0)
        value_nats = digamma(k) + (n_vars - 1) * digamma(m) - psi_terms.mean()
        value_bits = float(value_nats / _LN2)
    else:
        value_bits = _rect_value_from_counts(counts, k, m, variant)

    return KSGDiagnostics(
        value_bits=value_bits,
        counts=counts,
        k=k,
        variant=variant,
    )
