"""Rigid (rotation + translation) alignment of 2-D point sets.

This is the inner solver of the ICP loop: given two point sets that are
already in correspondence, find the direct isometry (element of ``ISO+(2)``,
i.e. rotation and translation but no reflection) that minimises the summed
squared distance.  The optimal rotation follows from the Kabsch/Procrustes
construction via the SVD of the 2×2 cross-covariance matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RigidTransform", "kabsch_2d", "apply_rigid", "alignment_error"]


@dataclass(frozen=True)
class RigidTransform:
    """A direct planar isometry ``x ↦ R x + t`` with ``det(R) = +1``."""

    rotation: np.ndarray
    translation: np.ndarray

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation, dtype=float)
        translation = np.asarray(self.translation, dtype=float)
        if rotation.shape != (2, 2):
            raise ValueError("rotation must be a 2x2 matrix")
        if translation.shape != (2,):
            raise ValueError("translation must be a length-2 vector")
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "translation", translation)

    @property
    def angle(self) -> float:
        """Rotation angle in radians, in ``(-pi, pi]``."""
        return float(np.arctan2(self.rotation[1, 0], self.rotation[0, 0]))

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Apply the transform to points of shape ``(..., 2)``."""
        points = np.asarray(points, dtype=float)
        return points @ self.rotation.T + self.translation

    def compose(self, other: "RigidTransform") -> "RigidTransform":
        """Return the transform equivalent to applying ``other`` first, then ``self``."""
        return RigidTransform(
            rotation=self.rotation @ other.rotation,
            translation=self.rotation @ other.translation + self.translation,
        )

    def inverse(self) -> "RigidTransform":
        """The inverse isometry."""
        rot_inv = self.rotation.T
        return RigidTransform(rotation=rot_inv, translation=-rot_inv @ self.translation)

    @classmethod
    def identity(cls) -> "RigidTransform":
        """The identity transform."""
        return cls(rotation=np.eye(2), translation=np.zeros(2))

    @classmethod
    def from_angle(cls, angle: float, translation: np.ndarray | tuple[float, float] = (0.0, 0.0)) -> "RigidTransform":
        """Build from a rotation angle (radians) and a translation vector."""
        c, s = np.cos(angle), np.sin(angle)
        return cls(rotation=np.array([[c, -s], [s, c]]), translation=np.asarray(translation, dtype=float))


def kabsch_2d(
    source: np.ndarray,
    target: np.ndarray,
    weights: np.ndarray | None = None,
) -> RigidTransform:
    """Least-squares rigid transform mapping ``source`` onto ``target``.

    Both inputs have shape ``(n, 2)`` and are assumed to be in one-to-one
    correspondence (row ``i`` of source matches row ``i`` of target).
    ``weights`` optionally down-weights unreliable correspondences.

    The returned rotation is always proper (``det = +1``); reflections are
    excluded because they are not shape-preserving symmetries of the particle
    system (the paper factors out ``ISO+(2)``, not ``ISO(2)``).
    """
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 2:
        raise ValueError("source and target must both have shape (n, 2)")
    if source.shape[0] == 0:
        return RigidTransform.identity()
    if weights is None:
        weights = np.ones(source.shape[0])
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (source.shape[0],):
            raise ValueError("weights must have shape (n,)")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        return RigidTransform.identity()
    w = weights / total

    source_mean = w @ source
    target_mean = w @ target
    source_centered = source - source_mean
    target_centered = target - target_mean

    cross = (source_centered * w[:, None]).T @ target_centered
    u, _singular, vt = np.linalg.svd(cross)
    det = np.linalg.det(vt.T @ u.T)
    correction = np.diag([1.0, np.sign(det) if det != 0 else 1.0])
    rotation = vt.T @ correction @ u.T
    translation = target_mean - rotation @ source_mean
    return RigidTransform(rotation=rotation, translation=translation)


def apply_rigid(transform: RigidTransform, points: np.ndarray) -> np.ndarray:
    """Functional form of :meth:`RigidTransform.apply`."""
    return transform.apply(points)


def alignment_error(source: np.ndarray, target: np.ndarray) -> float:
    """Root-mean-square distance between corresponding points."""
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != target.shape:
        raise ValueError("source and target must have the same shape")
    if source.size == 0:
        return 0.0
    delta = source - target
    return float(np.sqrt(np.einsum("...k,...k->...", delta, delta).mean()))
