"""Shape-symmetry reduction: translation, rotation and permutation removal.

Implements §4.2/§5.2 of Harder & Polani (2012): particle configurations are
mapped to representatives of their orbit under ``F = ISO+(2) × S*_n`` so that
multi-information is measured between *shape* observers rather than raw
coordinates.
"""

from repro.alignment.procrustes import RigidTransform, alignment_error, apply_rigid, kabsch_2d
from repro.alignment.correspondences import (
    assignment_correspondence,
    correspondence_distances,
    is_type_preserving_permutation,
    nearest_neighbor_correspondence,
)
from repro.alignment.icp import ICPResult, TypeAwareICP, lift_with_types
from repro.alignment.symmetry import (
    ReducedEnsemble,
    SnapshotAlignment,
    align_snapshot,
    center_configurations,
    reduce_ensemble,
    select_reference,
)

__all__ = [
    "RigidTransform",
    "kabsch_2d",
    "apply_rigid",
    "alignment_error",
    "nearest_neighbor_correspondence",
    "assignment_correspondence",
    "is_type_preserving_permutation",
    "correspondence_distances",
    "TypeAwareICP",
    "ICPResult",
    "lift_with_types",
    "center_configurations",
    "select_reference",
    "align_snapshot",
    "SnapshotAlignment",
    "reduce_ensemble",
    "ReducedEnsemble",
]
