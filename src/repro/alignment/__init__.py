"""Shape-symmetry reduction: translation, rotation and permutation removal.

Implements §4.2/§5.2 of Harder & Polani (2012): particle configurations are
mapped to representatives of their orbit under ``F = ISO+(2) × S*_n`` so that
multi-information is measured between *shape* observers rather than raw
coordinates.  On wrapped domains (periodic torus, channel) the group is
different — translations mod L on the periodic axes plus per-axis flips —
and the same entry points dispatch to the torus-aware reduction when a
``domain`` is passed (see :mod:`repro.alignment.torus`).
"""

from repro.alignment.procrustes import RigidTransform, alignment_error, apply_rigid, kabsch_2d
from repro.alignment.correspondences import (
    assignment_correspondence,
    correspondence_distances,
    is_type_preserving_permutation,
    nearest_neighbor_correspondence,
)
from repro.alignment.icp import ICPResult, TypeAwareICP, lift_with_types
from repro.alignment.torus import TorusAligner, TorusICPResult, TorusTransform
from repro.alignment.symmetry import (
    ReducedEnsemble,
    SnapshotAlignment,
    align_snapshot,
    center_configurations,
    reduce_ensemble,
    select_reference,
    select_reference_wrapped,
)

__all__ = [
    "RigidTransform",
    "kabsch_2d",
    "apply_rigid",
    "alignment_error",
    "nearest_neighbor_correspondence",
    "assignment_correspondence",
    "is_type_preserving_permutation",
    "correspondence_distances",
    "TypeAwareICP",
    "ICPResult",
    "lift_with_types",
    "TorusAligner",
    "TorusICPResult",
    "TorusTransform",
    "center_configurations",
    "select_reference",
    "select_reference_wrapped",
    "align_snapshot",
    "SnapshotAlignment",
    "reduce_ensemble",
    "ReducedEnsemble",
]
