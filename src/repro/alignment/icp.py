"""Type-aware iterative closest point (ICP) registration.

The paper aligns all ensemble samples of a given time step to a common frame
with an ICP whose input is the particle configuration lifted to 3-D: the third
coordinate is the particle type scaled by a factor "a magnitude larger than
the diameter of the collective", so nearest-neighbour correspondences never
cross type boundaries (§5.2).  The rigid update itself acts only in the plane
— the transformation group being factored out is ``ISO+(2)``.

This implementation reproduces that construction with NumPy/SciPy:

1. find same-type nearest-neighbour correspondences (exactly equivalent to
   nearest neighbours in the lifted space once the type scale dominates),
2. solve the planar Kabsch problem for the matched pairs,
3. iterate until the correspondence set and error stabilise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alignment.correspondences import (
    assignment_correspondence,
    correspondence_distances,
    nearest_neighbor_correspondence,
)
from repro.alignment.procrustes import RigidTransform, kabsch_2d

__all__ = ["ICPResult", "TypeAwareICP", "lift_with_types"]


def lift_with_types(positions: np.ndarray, types: np.ndarray, type_scale: float) -> np.ndarray:
    """Lift a 2-D configuration to 3-D with the type as a scaled third coordinate.

    This is the representation the paper feeds to the point-cloud ICP.  It is
    exposed mainly for testing the equivalence with the per-type
    nearest-neighbour search used internally.
    """
    positions = np.asarray(positions, dtype=float)
    types = np.asarray(types, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must have shape (n, 2)")
    if types.shape != (positions.shape[0],):
        raise ValueError("types must have shape (n,)")
    return np.column_stack([positions, types * float(type_scale)])


@dataclass(frozen=True)
class ICPResult:
    """Outcome of an ICP registration.

    Attributes
    ----------
    transform:
        The fitted direct isometry mapping the source onto the target frame.
    aligned:
        The source configuration after applying ``transform``.
    correspondence:
        Final one-to-one, type-preserving permutation: ``correspondence[i]``
        is the target particle matched to source particle ``i``.
    rmse:
        Root-mean-square distance between matched pairs after alignment.
    n_iterations:
        Number of ICP iterations performed.
    converged:
        Whether the error improvement dropped below the tolerance before the
        iteration cap.
    """

    transform: RigidTransform
    aligned: np.ndarray
    correspondence: np.ndarray
    rmse: float
    n_iterations: int
    converged: bool


@dataclass
class TypeAwareICP:
    """Iterative closest point restricted to same-type correspondences.

    Parameters
    ----------
    max_iterations:
        Upper bound on ICP iterations.
    tolerance:
        Convergence threshold on the improvement of the RMS correspondence
        distance between consecutive iterations.
    use_assignment:
        When True the final correspondence (and optionally every iteration,
        see ``assignment_every_step``) is a one-to-one assignment; otherwise
        plain nearest neighbours are used throughout and only the final
        reordering step solves the assignment problem.
    assignment_every_step:
        Use the one-to-one assignment inside the ICP loop as well (slower,
        occasionally more robust for small collectives).
    global_init_angles:
        ICP is a local optimiser; when the source is rotated far from the
        target it can converge to a poor local minimum.  If the
        identity-initialised registration does not reach
        ``good_enough_rmse`` × (target radius of gyration), the search is
        restarted from this many evenly spaced initial rotations and the best
        result is kept.  Set to 0 to disable the multi-start search.
    good_enough_rmse:
        Relative RMSE below which the identity-initialised result is accepted
        without trying further initial rotations.
    """

    max_iterations: int = 50
    tolerance: float = 1e-6
    use_assignment: bool = True
    assignment_every_step: bool = False
    global_init_angles: int = 4
    good_enough_rmse: float = 0.1

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if self.global_init_angles < 0:
            raise ValueError("global_init_angles must be non-negative")
        if self.good_enough_rmse < 0:
            raise ValueError("good_enough_rmse must be non-negative")

    def align(
        self,
        source: np.ndarray,
        target: np.ndarray,
        types: np.ndarray,
        *,
        initial_transform: RigidTransform | None = None,
    ) -> ICPResult:
        """Register ``source`` onto ``target`` (both ``(n, 2)``, same type layout).

        When no ``initial_transform`` is given and the identity-initialised
        fit is poor, additional registrations are started from a grid of
        initial rotations (see ``global_init_angles``) and the best is kept.
        """
        source = np.asarray(source, dtype=float)
        target = np.asarray(target, dtype=float)
        types = np.asarray(types, dtype=int)
        if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 2:
            raise ValueError("source and target must both have shape (n, 2)")
        if types.shape != (source.shape[0],):
            raise ValueError("types must have shape (n,)")

        if initial_transform is None:
            best = self._align_once(source, target, types, RigidTransform.identity())
            centered = target - target.mean(axis=0)
            scale = float(np.sqrt(np.einsum("ij,ij->i", centered, centered).mean()))
            if best.rmse <= self.good_enough_rmse * max(scale, 1e-12) or self.global_init_angles == 0:
                return best
            source_mean = source.mean(axis=0)
            target_mean = target.mean(axis=0)
            for angle in np.linspace(0.0, 2.0 * np.pi, self.global_init_angles, endpoint=False)[1:]:
                rotation_only = RigidTransform.from_angle(float(angle))
                translation = target_mean - rotation_only.rotation @ source_mean
                start = RigidTransform(rotation=rotation_only.rotation, translation=translation)
                candidate = self._align_once(source, target, types, start)
                if candidate.rmse < best.rmse:
                    best = candidate
            return best
        return self._align_once(source, target, types, initial_transform)

    def _align_once(
        self,
        source: np.ndarray,
        target: np.ndarray,
        types: np.ndarray,
        initial_transform: RigidTransform,
    ) -> ICPResult:
        """One ICP descent from a fixed initial transform."""
        transform = initial_transform
        current = transform.apply(source)
        previous_error = np.inf
        converged = False
        iterations = 0

        for iterations in range(1, self.max_iterations + 1):
            if self.assignment_every_step:
                corr = assignment_correspondence(current, target, types)
            else:
                corr = nearest_neighbor_correspondence(current, target, types)
            step = kabsch_2d(current, target[corr])
            transform = step.compose(transform)
            current = transform.apply(source)
            error = float(correspondence_distances(current, target, corr).mean())
            if abs(previous_error - error) < self.tolerance:
                converged = True
                break
            previous_error = error

        if self.use_assignment:
            final_corr = assignment_correspondence(current, target, types)
        else:
            final_corr = nearest_neighbor_correspondence(current, target, types)
        rmse = float(np.sqrt((correspondence_distances(current, target, final_corr) ** 2).mean()))
        return ICPResult(
            transform=transform,
            aligned=current,
            correspondence=final_corr,
            rmse=rmse,
            n_iterations=iterations,
            converged=converged,
        )
