"""Type-restricted correspondence search between particle configurations.

Two flavours are used by the alignment stack:

* **Nearest-neighbour** matching (possibly many-to-one) drives the inner ICP
  iterations, mirroring the paper's use of a point-cloud-library ICP with the
  particle type lifted to a scaled third coordinate so that matches never
  cross type boundaries.
* **Assignment** (one-to-one, Hungarian algorithm within each type) produces
  the final permutation that reorders a sample's particles to the reference
  ordering — a true element of the permutation group ``S*_n`` that only
  permutes particles of the same type (§4.2.1).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment
from scipy.spatial import cKDTree

__all__ = [
    "nearest_neighbor_correspondence",
    "assignment_correspondence",
    "is_type_preserving_permutation",
    "correspondence_distances",
]


def _check_inputs(source: np.ndarray, target: np.ndarray, types: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    types = np.asarray(types, dtype=int)
    if source.ndim != 2 or source.shape[1] != 2:
        raise ValueError("source must have shape (n, 2)")
    if target.shape != source.shape:
        raise ValueError("target must have the same shape as source")
    if types.shape != (source.shape[0],):
        raise ValueError("types must have shape (n,)")
    return source, target, types


def nearest_neighbor_correspondence(
    source: np.ndarray,
    target: np.ndarray,
    types: np.ndarray,
) -> np.ndarray:
    """For every source particle, the index of the nearest target particle of the same type.

    The returned array ``corr`` satisfies ``types[corr[i]] == types[i]`` but is
    generally *not* a permutation (several source particles may share a target).
    """
    source, target, types = _check_inputs(source, target, types)
    corr = np.empty(source.shape[0], dtype=int)
    for type_id in np.unique(types):
        idx = np.nonzero(types == type_id)[0]
        tree = cKDTree(target[idx])
        _dist, local = tree.query(source[idx], k=1)
        corr[idx] = idx[np.atleast_1d(local)]
    return corr


def assignment_correspondence(
    source: np.ndarray,
    target: np.ndarray,
    types: np.ndarray,
) -> np.ndarray:
    """One-to-one, type-preserving correspondence minimising total squared distance.

    Solves a linear assignment problem independently within each type class;
    the result is a permutation of ``range(n)`` with ``types[perm[i]] ==
    types[i]``, i.e. an element of the paper's symmetry subgroup ``S*_n``.
    ``perm[i]`` is the target index matched to source particle ``i``.
    """
    source, target, types = _check_inputs(source, target, types)
    perm = np.empty(source.shape[0], dtype=int)
    for type_id in np.unique(types):
        idx = np.nonzero(types == type_id)[0]
        delta = source[idx][:, None, :] - target[idx][None, :, :]
        cost = np.einsum("ijk,ijk->ij", delta, delta)
        rows, cols = linear_sum_assignment(cost)
        perm[idx[rows]] = idx[cols]
    return perm


def is_type_preserving_permutation(perm: np.ndarray, types: np.ndarray) -> bool:
    """Check that ``perm`` is a permutation that never maps across type classes."""
    perm = np.asarray(perm, dtype=int)
    types = np.asarray(types, dtype=int)
    if perm.shape != types.shape:
        return False
    if sorted(perm.tolist()) != list(range(perm.size)):
        return False
    return bool(np.all(types[perm] == types))


def correspondence_distances(
    source: np.ndarray,
    target: np.ndarray,
    correspondence: np.ndarray,
) -> np.ndarray:
    """Euclidean distance between each source particle and its matched target."""
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    correspondence = np.asarray(correspondence, dtype=int)
    delta = source - target[correspondence]
    return np.sqrt(np.einsum("ij,ij->i", delta, delta))
