"""Factoring out the shape symmetries of a particle ensemble.

The observable shape of a configuration is invariant under the group
``F = ISO+(2) × S*_n`` of planar rotations, translations and permutations of
same-type particles (§4.2).  To measure multi-information between observer
variables, every ensemble snapshot is mapped to a symmetry-reduced
representative ``w`` (§5.2):

1. **translation** — express every sample relative to its centroid,
2. **rotation** — align every sample to a common reference sample with the
   type-aware ICP,
3. **permutation** — reorder each sample's particles so that index ``i``
   refers to "the same" particle across samples, via the one-to-one
   type-preserving correspondence found by the ICP.

The correspondence is established *across samples at a fixed time step*;
identity of a particle across time is deliberately lost (§5.2).

On a wrapped domain (any periodic axis: torus or channel) the free-space
group is the wrong one — there are no continuous rotations, translations act
modulo L on the periodic axes only, and centroids are not well defined mod L
— so passing ``domain=`` to :func:`align_snapshot` / :func:`reduce_ensemble`
dispatches to the :class:`~repro.alignment.torus.TorusAligner`: samples stay
in wrapped box coordinates and are registered by mod-L translation plus the
admissible per-axis flips.  Free and reflecting domains keep the free-space
path unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alignment.icp import TypeAwareICP
from repro.alignment.torus import TorusAligner
from repro.particles.domain import Domain, get_domain
from repro.particles.trajectory import EnsembleTrajectory

__all__ = [
    "center_configurations",
    "select_reference",
    "select_reference_wrapped",
    "align_snapshot",
    "SnapshotAlignment",
    "reduce_ensemble",
    "ReducedEnsemble",
]


def center_configurations(positions: np.ndarray) -> np.ndarray:
    """Subtract the centroid of each configuration.

    Accepts a single configuration ``(n, 2)`` or any batch ``(..., n, 2)``;
    the centroid is taken over the particle axis.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim < 2 or positions.shape[-1] != 2:
        raise ValueError("positions must have shape (..., n, 2)")
    return positions - positions.mean(axis=-2, keepdims=True)


def select_reference(snapshot: np.ndarray, strategy: str = "medoid") -> int:
    """Choose the reference sample all others are aligned to.

    Strategies
    ----------
    ``"first"``
        Sample 0 (cheapest; what a streaming implementation would do).
    ``"medoid"``
        The sample whose centred configuration minimises the summed distance
        of its sorted radial profile to all other samples' profiles — a cheap
        rotation/permutation-insensitive proxy for "the most typical shape",
        which makes the subsequent ICP alignments smaller on average.
    """
    snapshot = np.asarray(snapshot, dtype=float)
    if snapshot.ndim != 3 or snapshot.shape[-1] != 2:
        raise ValueError("snapshot must have shape (n_samples, n_particles, 2)")
    if strategy == "first":
        return 0
    if strategy != "medoid":
        raise ValueError(f"unknown reference strategy {strategy!r}")
    centered = center_configurations(snapshot)
    radii = np.sort(np.sqrt(np.einsum("mik,mik->mi", centered, centered)), axis=1)
    pairwise = np.abs(radii[:, None, :] - radii[None, :, :]).sum(axis=-1)
    return int(pairwise.sum(axis=1).argmin())


def select_reference_wrapped(
    snapshot: np.ndarray, domain: Domain, strategy: str = "medoid"
) -> int:
    """Reference selection on a wrapped domain (the mod-L medoid proxy).

    The free-space medoid compares sorted distance-to-centroid profiles, but
    a centroid is not well defined modulo L.  The wrapped analogue uses the
    per-axis *circular* mean on periodic axes (plain mean on reflecting
    ones) and measures radii with the domain's minimum-image metric — the
    profiles are invariant under the symmetries the torus aligner factors
    out, so the choice is as transformation-insensitive as the free-space
    one.
    """
    snapshot = np.asarray(snapshot, dtype=float)
    if snapshot.ndim != 3 or snapshot.shape[-1] != 2:
        raise ValueError("snapshot must have shape (n_samples, n_particles, 2)")
    if strategy == "first":
        return 0
    if strategy != "medoid":
        raise ValueError(f"unknown reference strategy {strategy!r}")
    wrapped = domain.wrap(snapshot)
    centroids = np.empty((snapshot.shape[0], 2))
    for axis in range(2):
        column = wrapped[:, :, axis]
        side = domain.extents[axis]
        if domain.periodic_axes[axis]:
            angle = column * (2.0 * np.pi / side)
            mean_angle = np.arctan2(np.sin(angle).mean(axis=1), np.cos(angle).mean(axis=1))
            centroids[:, axis] = np.mod(mean_angle, 2.0 * np.pi) * (side / (2.0 * np.pi))
        else:
            centroids[:, axis] = column.mean(axis=1)
    delta = domain.displacement(wrapped, centroids[:, None, :])
    radii = np.sort(np.sqrt(np.einsum("mik,mik->mi", delta, delta)), axis=1)
    pairwise = np.abs(radii[:, None, :] - radii[None, :, :]).sum(axis=-1)
    return int(pairwise.sum(axis=1).argmin())


@dataclass(frozen=True)
class SnapshotAlignment:
    """Symmetry-reduced ensemble snapshot at one time step.

    Attributes
    ----------
    reduced:
        ``(n_samples, n_particles, 2)`` aligned, permutation-reduced
        coordinates (the ``w`` samples of the paper).
    reference_index:
        Which sample served as the alignment reference.
    rmse:
        Per-sample ICP residual against the reference.
    """

    reduced: np.ndarray
    reference_index: int
    rmse: np.ndarray


def align_snapshot(
    snapshot: np.ndarray,
    types: np.ndarray,
    *,
    icp: TypeAwareICP | None = None,
    reference: int | np.ndarray | None = None,
    reference_strategy: str = "medoid",
    domain: "Domain | str | None" = None,
) -> SnapshotAlignment:
    """Reduce one ensemble snapshot to its symmetry-factored representation.

    Parameters
    ----------
    snapshot:
        ``(n_samples, n_particles, 2)`` raw simulation output at one step.
    types:
        ``(n_particles,)`` shared type assignment.
    icp:
        Registration engine (defaults to :class:`TypeAwareICP` defaults).  On
        a wrapped domain its ``max_iterations``/``tolerance`` parameterise
        the torus aligner instead.
    reference:
        Either the index of the reference sample, an explicit reference
        configuration of shape ``(n_particles, 2)``, or ``None`` to pick one
        with ``reference_strategy``.
    domain:
        The simulation domain the snapshot was produced on.  Any domain with
        a periodic axis dispatches to the mod-L torus reduction (samples stay
        in wrapped box coordinates); free/reflecting domains — and the
        default ``None`` — keep the free-space ``ISO+(2)`` path unchanged.
    """
    snapshot = np.asarray(snapshot, dtype=float)
    types = np.asarray(types, dtype=int)
    if snapshot.ndim != 3 or snapshot.shape[-1] != 2:
        raise ValueError("snapshot must have shape (n_samples, n_particles, 2)")
    if types.shape != (snapshot.shape[1],):
        raise ValueError("types must have shape (n_particles,)")
    resolved_domain = get_domain(domain)
    if resolved_domain.bounded and any(resolved_domain.periodic_axes):
        return _align_snapshot_wrapped(
            snapshot,
            types,
            resolved_domain,
            icp=icp,
            reference=reference,
            reference_strategy=reference_strategy,
        )
    icp = icp or TypeAwareICP()

    centered = center_configurations(snapshot)
    if reference is None:
        reference_index = select_reference(centered, reference_strategy)
        reference_config = centered[reference_index]
    elif isinstance(reference, (int, np.integer)):
        reference_index = int(reference)
        reference_config = centered[reference_index]
    else:
        reference_index = -1
        reference_config = center_configurations(np.asarray(reference, dtype=float))

    n_samples = snapshot.shape[0]
    reduced = np.empty_like(centered)
    rmse = np.empty(n_samples)
    for m in range(n_samples):
        if m == reference_index:
            reduced[m] = reference_config
            rmse[m] = 0.0
            continue
        result = icp.align(centered[m], reference_config, types)
        # Reorder so that slot i of every reduced sample corresponds to
        # reference particle i: particle j of the aligned sample is stored at
        # slot correspondence[j].
        reordered = np.empty_like(result.aligned)
        reordered[result.correspondence] = result.aligned
        reduced[m] = reordered
        rmse[m] = result.rmse
    return SnapshotAlignment(reduced=reduced, reference_index=reference_index, rmse=rmse)


def _align_snapshot_wrapped(
    snapshot: np.ndarray,
    types: np.ndarray,
    domain: Domain,
    *,
    icp: TypeAwareICP | None = None,
    reference: "int | np.ndarray | None" = None,
    reference_strategy: str = "medoid",
) -> SnapshotAlignment:
    """Torus-path snapshot reduction: mod-L registration in wrapped coordinates.

    No centring happens here — centroids are not well defined modulo L; the
    reduced coordinates are wrapped box coordinates registered to the
    reference by per-axis mod-L translation, the admissible flips and the
    wrapped-metric type-preserving permutation.
    """
    aligner = TorusAligner(
        domain=domain,
        max_iterations=icp.max_iterations if icp is not None else 50,
        tolerance=icp.tolerance if icp is not None else 1e-6,
    )
    wrapped = domain.wrap(snapshot)
    if reference is None:
        reference_index = select_reference_wrapped(wrapped, domain, reference_strategy)
        reference_config = wrapped[reference_index]
    elif isinstance(reference, (int, np.integer)):
        reference_index = int(reference)
        reference_config = wrapped[reference_index]
    else:
        reference_index = -1
        reference_config = domain.wrap(np.asarray(reference, dtype=float))

    n_samples = snapshot.shape[0]
    reduced = np.empty_like(wrapped)
    rmse = np.empty(n_samples)
    for m in range(n_samples):
        if m == reference_index:
            reduced[m] = reference_config
            rmse[m] = 0.0
            continue
        result = aligner.align(wrapped[m], reference_config, types)
        reordered = np.empty_like(result.aligned)
        reordered[result.correspondence] = result.aligned
        reduced[m] = reordered
        rmse[m] = result.rmse
    return SnapshotAlignment(reduced=reduced, reference_index=reference_index, rmse=rmse)


@dataclass(frozen=True)
class ReducedEnsemble:
    """Symmetry-reduced ensemble trajectory: the ``w^{(t)}`` samples of the paper.

    Attributes
    ----------
    positions:
        ``(n_steps, n_samples, n_particles, 2)`` reduced coordinates.
    types:
        Shared type assignment (the reduced slot ``i`` has type ``types[i]``).
    reference_indices:
        Reference sample chosen at each time step.
    rmse:
        ``(n_steps, n_samples)`` ICP residuals.
    """

    positions: np.ndarray
    types: np.ndarray
    reference_indices: np.ndarray
    rmse: np.ndarray

    @property
    def n_steps(self) -> int:
        return int(self.positions.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.positions.shape[1])

    @property
    def n_particles(self) -> int:
        return int(self.positions.shape[2])

    def snapshot(self, step: int) -> np.ndarray:
        """Reduced snapshot ``(n_samples, n_particles, 2)`` at the given step."""
        return self.positions[step]

    def observer_matrix(self, step: int) -> np.ndarray:
        """Snapshot flattened to ``(n_samples, n_particles * 2)`` for estimators."""
        snap = self.positions[step]
        return snap.reshape(snap.shape[0], -1)


def reduce_ensemble(
    ensemble: EnsembleTrajectory,
    *,
    icp: TypeAwareICP | None = None,
    reference_strategy: str = "medoid",
    steps: np.ndarray | list[int] | None = None,
    domain: "Domain | str | None" = None,
) -> ReducedEnsemble:
    """Symmetry-reduce every (or selected) time step of an ensemble trajectory.

    ``steps`` restricts the reduction to a subset of frames (e.g. every 10th
    step) — the estimation cost is dominated by the per-step alignment, so
    thinning here is the main lever for large experiments.  ``domain`` is the
    geometry the trajectory was simulated on: any periodic axis switches
    every step to the mod-L torus reduction (see :func:`align_snapshot`).
    """
    icp = icp or TypeAwareICP()
    if steps is None:
        step_indices = np.arange(ensemble.n_steps)
    else:
        step_indices = np.asarray(steps, dtype=int)
    reduced = np.empty((step_indices.size, ensemble.n_samples, ensemble.n_particles, 2))
    references = np.empty(step_indices.size, dtype=int)
    rmse = np.empty((step_indices.size, ensemble.n_samples))
    for out_index, step in enumerate(step_indices):
        alignment = align_snapshot(
            ensemble.snapshot(int(step)),
            ensemble.types,
            icp=icp,
            reference_strategy=reference_strategy,
            domain=domain,
        )
        reduced[out_index] = alignment.reduced
        references[out_index] = alignment.reference_index
        rmse[out_index] = alignment.rmse
    return ReducedEnsemble(
        positions=reduced,
        types=ensemble.types.copy(),
        reference_indices=references,
        rmse=rmse,
    )
