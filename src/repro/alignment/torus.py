"""Torus-aware symmetry reduction: registration on wrapped domains.

On the free plane the shape symmetries are ``ISO+(2) × S*_n`` and the
reduction runs Kabsch/ICP (:mod:`repro.alignment.icp`).  On a bounded domain
with periodic axes the isometry group is different: there are no continuous
rotations, the continuous part is **translation modulo L along each periodic
axis** (a reflecting wall pins its axis — no translational freedom there),
and the discrete part is the per-axis flips every box axis admits
(``x → Lx − x`` is a symmetry of both a periodic seam and a reflecting
wall).  Aligning wrapped ensembles with the free-space Procrustes machinery
is simply wrong — a sample rigidly translated across the seam looks like a
large deformation to Kabsch, and centroids are not even well defined mod L —
so multi-information on the torus would otherwise be measured against raw
wrapped coordinates.

:class:`TorusAligner` mirrors the :class:`~repro.alignment.icp.TypeAwareICP`
construction under the wrapped metric:

1. same-type nearest-neighbour correspondences in the domain's metric (a
   per-axis periodic :class:`scipy.spatial.cKDTree`),
2. the **exact** optimal translation mod L per periodic axis for the matched
   pairs (a sorted sweep over the circular breakpoints of the piecewise
   quadratic wrapped least-squares cost — not the circular-mean
   approximation),
3. iterate to convergence; the best of the admissible flip combinations is
   kept, and the final one-to-one assignment under the wrapped metric gives
   the type-preserving permutation (the ``S*_n`` factor).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment
from scipy.spatial import cKDTree

from repro.particles.domain import Domain

__all__ = ["TorusTransform", "TorusICPResult", "TorusAligner"]


@dataclass(frozen=True)
class TorusTransform:
    """Flip-then-translate isometry of a bounded per-axis box.

    ``flips[axis]`` applies ``x → L − x`` along that axis (a symmetry of both
    periodic and reflecting boundaries); ``translation[axis]`` shifts along
    the axis afterwards (non-zero only on periodic axes, where coordinates
    live mod L).  Applying the transform always re-wraps into the box.
    """

    flips: tuple[bool, bool]
    translation: tuple[float, float]

    def apply(self, positions: np.ndarray, domain: Domain) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        out = positions.copy()
        for axis in range(2):
            column = out[..., axis]
            if self.flips[axis]:
                column = domain.extents[axis] - column
            out[..., axis] = column + self.translation[axis]
        return domain.wrap(out)


@dataclass(frozen=True)
class TorusICPResult:
    """Outcome of a wrapped-domain registration (mirrors ``ICPResult``).

    Attributes
    ----------
    transform:
        The fitted :class:`TorusTransform` mapping the source onto the target
        frame.
    aligned:
        The source configuration after applying ``transform`` (wrapped box
        coordinates).
    correspondence:
        Final one-to-one, type-preserving permutation: ``correspondence[i]``
        is the target particle matched to source particle ``i``.
    rmse:
        Root-mean-square wrapped distance between matched pairs.
    n_iterations:
        Iterations of the best flip candidate's descent.
    converged:
        Whether that descent's error improvement dropped below tolerance.
    """

    transform: TorusTransform
    aligned: np.ndarray
    correspondence: np.ndarray
    rmse: float
    n_iterations: int
    converged: bool


def _optimal_axis_shift(residuals: np.ndarray, length: float) -> float:
    """Exact ``argmin_t Σ wrap_L(r_i − t)²`` for one periodic axis.

    The wrapped least-squares cost is piecewise quadratic in ``t``; on each
    piece the minimiser is the mean of one circular re-labelling of the
    residuals, and the pieces correspond to wrapping the ``j`` smallest
    residuals up by ``L``.  Sorting once and scoring the ``n`` candidate
    means under the wrapped metric finds the global minimum exactly —
    unlike the circular-mean estimator, which is only asymptotically optimal
    for concentrated residuals.
    """
    wrapped = np.sort(np.mod(residuals, length))
    n = wrapped.size
    if n == 0:
        return 0.0
    candidates = (wrapped.sum() + length * np.arange(n)) / n
    deltas = wrapped[None, :] - candidates[:, None]
    deltas -= length * np.round(deltas / length)
    costs = np.einsum("ij,ij->i", deltas, deltas)
    return float(np.mod(candidates[int(costs.argmin())], length))


def _wrapped_nearest(
    source: np.ndarray, target: np.ndarray, types: np.ndarray, domain: Domain
) -> np.ndarray:
    """Same-type nearest neighbours under the domain's wrapped metric."""
    boxsize = [
        side if periodic else 0.0
        for side, periodic in zip(domain.extents, domain.periodic_axes)
    ]
    corr = np.empty(source.shape[0], dtype=int)
    for type_id in np.unique(types):
        idx = np.nonzero(types == type_id)[0]
        tree = cKDTree(target[idx], boxsize=boxsize)
        _dist, local = tree.query(source[idx], k=1)
        corr[idx] = idx[np.atleast_1d(local)]
    return corr


def _wrapped_assignment(
    source: np.ndarray, target: np.ndarray, types: np.ndarray, domain: Domain
) -> np.ndarray:
    """One-to-one, type-preserving assignment minimising wrapped squared distance."""
    perm = np.empty(source.shape[0], dtype=int)
    for type_id in np.unique(types):
        idx = np.nonzero(types == type_id)[0]
        delta = domain.displacement(source[idx][:, None, :], target[idx][None, :, :])
        cost = np.einsum("ijk,ijk->ij", delta, delta)
        rows, cols = linear_sum_assignment(cost)
        perm[idx[rows]] = idx[cols]
    return perm


def _wrapped_distances(
    source: np.ndarray, target: np.ndarray, correspondence: np.ndarray, domain: Domain
) -> np.ndarray:
    """Wrapped distance between each source particle and its matched target."""
    delta = domain.displacement(source, target[np.asarray(correspondence, dtype=int)])
    return np.sqrt(np.einsum("ij,ij->i", delta, delta))


@dataclass
class TorusAligner:
    """ICP-style registration under the isometries of a wrapped box.

    Parameters
    ----------
    domain:
        The bounded per-axis domain (at least one periodic axis is what makes
        this aligner necessary; it degrades gracefully to flips-only on a
        purely reflecting box).
    max_iterations:
        Upper bound on correspondence/translation iterations per flip
        candidate.
    tolerance:
        Convergence threshold on the improvement of the mean correspondence
        distance between consecutive iterations.
    use_assignment:
        When True the final correspondence is the one-to-one wrapped-metric
        assignment; otherwise plain nearest neighbours are kept.
    try_flips:
        Search the per-axis flip combinations (``x → L − x``) and keep the
        best.  Every bounded axis — periodic seam or reflecting wall — admits
        its flip; the free-space notion of continuous rotation does not exist
        here, so flips are the entire discrete search space.
    """

    domain: Domain
    max_iterations: int = 50
    tolerance: float = 1e-6
    use_assignment: bool = True
    try_flips: bool = True

    def __post_init__(self) -> None:
        if not self.domain.bounded:
            raise ValueError("TorusAligner needs a bounded domain; use TypeAwareICP on the free plane")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def align(
        self, source: np.ndarray, target: np.ndarray, types: np.ndarray
    ) -> TorusICPResult:
        """Register ``source`` onto ``target`` (both ``(n, 2)``, same type layout)."""
        source = np.asarray(source, dtype=float)
        target = np.asarray(target, dtype=float)
        types = np.asarray(types, dtype=int)
        if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 2:
            raise ValueError("source and target must both have shape (n, 2)")
        if types.shape != (source.shape[0],):
            raise ValueError("types must have shape (n,)")
        source = self.domain.wrap(source)
        target = self.domain.wrap(target)
        flip_space = (
            itertools.product((False, True), repeat=2) if self.try_flips else [(False, False)]
        )
        best: TorusICPResult | None = None
        for flips in flip_space:
            candidate = self._align_once(source, target, types, tuple(flips))
            if best is None or candidate.rmse < best.rmse:
                best = candidate
        return best

    def _initial_translation(
        self, flipped: np.ndarray, target: np.ndarray, types: np.ndarray
    ) -> np.ndarray:
        """Global translation initialisation by anchor matching.

        Correspondence/translation descent is a local search and stalls when
        the initial shift exceeds the typical particle spacing (the torus
        analogue of ICP's rotation local minima, which ``TypeAwareICP``
        handles with ``global_init_angles``).  Translation is the *only*
        continuous degree of freedom here, so a complete candidate set
        exists: anchor one source particle of the rarest type and consider
        the translation carrying it onto each same-type target particle.
        For an exactly rigid shift the true translation is always among the
        candidates; for noisy data the best-scoring candidate is a strong
        basin to descend from.  Reflecting axes contribute no freedom and
        stay at zero.
        """
        domain = self.domain
        if not any(domain.periodic_axes):
            return np.zeros(2)
        unique, counts = np.unique(types, return_counts=True)
        anchor_type = int(unique[int(counts.argmin())])
        idx = np.nonzero(types == anchor_type)[0]
        anchor = flipped[idx[0]]
        offsets = domain.displacement(target[idx], anchor[None, :])
        candidates = np.zeros((offsets.shape[0] + 1, 2))
        for axis in range(2):
            if domain.periodic_axes[axis]:
                candidates[1:, axis] = offsets[:, axis]
        best_score = np.inf
        best = candidates[0]
        for translation in candidates:
            moved = domain.wrap(flipped + translation)
            corr = _wrapped_nearest(moved, target, types, domain)
            score = float(_wrapped_distances(moved, target, corr, domain).mean())
            if score < best_score:
                best_score = score
                best = translation
        return best.copy()

    def _align_once(
        self,
        source: np.ndarray,
        target: np.ndarray,
        types: np.ndarray,
        flips: tuple[bool, bool],
    ) -> TorusICPResult:
        """One correspondence/translation descent from a fixed flip choice."""
        domain = self.domain
        flipped = TorusTransform(flips=flips, translation=(0.0, 0.0)).apply(source, domain)
        translation = self._initial_translation(flipped, target, types)
        current = domain.wrap(flipped + translation)
        previous_error = np.inf
        converged = False
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            corr = _wrapped_nearest(current, target, types, domain)
            # Optimal translation update per periodic axis for the matched
            # pairs; reflecting axes have no translational freedom.
            residuals = domain.displacement(target[corr], current)
            for axis in range(2):
                if domain.periodic_axes[axis]:
                    translation[axis] += _optimal_axis_shift(
                        residuals[:, axis], domain.extents[axis]
                    )
            current = domain.wrap(flipped + translation)
            error = float(_wrapped_distances(current, target, corr, domain).mean())
            if abs(previous_error - error) < self.tolerance:
                converged = True
                break
            previous_error = error
        if self.use_assignment:
            final_corr = _wrapped_assignment(current, target, types, domain)
        else:
            final_corr = _wrapped_nearest(current, target, types, domain)
        rmse = float(np.sqrt((_wrapped_distances(current, target, final_corr, domain) ** 2).mean()))
        return TorusICPResult(
            transform=TorusTransform(flips=flips, translation=(float(translation[0]), float(translation[1]))),
            aligned=current,
            correspondence=final_corr,
            rmse=rmse,
            n_iterations=iterations,
            converged=converged,
        )
