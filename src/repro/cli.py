"""Command-line interface for running the paper's experiments.

The CLI exposes the experiment registry so the figures can be regenerated
without writing Python::

    python -m repro.cli list                       # show every figure experiment
    python -m repro.cli run fig5                   # run one figure's experiment(s)
    python -m repro.cli sweep fig9 --store results/store --n-jobs 4
    python -m repro.cli status fig9 --store results/store
    python -m repro.cli resume fig9 --store results/store
    python -m repro.cli serve-store --store results/store --port 8750
    python -m repro.cli sweep fig9 --store http://sweep-host:8750   # remote worker
    python -m repro.cli query fig9 --store http://sweep-host:8750
    python -m repro.cli curves                     # Fig. 2 force-scaling curves
    python -m repro.cli analyze fig5               # §7.3 pairwise transfer entropy
    python -m repro.cli watch fig4 --window 8      # live streaming metrics

``run`` prints the multi-information series as an ASCII plot and writes the
measurement JSON (plus a CSV of the series) into the output directory; it is
a thin wrapper over one-unit experiment plans (:mod:`repro.core.plan`).
``sweep`` executes a whole figure plan against a content-addressed
:class:`~repro.io.artifacts.RunStore`: units already in the store are served
from cache bit-identically, freshly computed units are persisted as they
finish, and ``--n-jobs`` fans the units out across processes.  ``status``
reports which units of a figure plan are cached/missing without running
anything, and ``resume`` re-executes a previously started sweep, computing
only the missing units (it refuses to create a new store).
``analyze`` runs the information-dynamics pipeline (pairwise transfer entropy
and/or lagged mutual information between particles) on a figure's simulated
ensemble or on a saved ``.npz`` trajectory, with ``--backend`` selecting the
estimator backend and ``--n-jobs`` fanning the pair matrix out across
processes.

Every ``--store`` flag accepts a directory path **or** an ``http(s)://`` URL
of a ``serve-store`` service (:func:`repro.io.remote.open_store` picks the
backend), so any number of workers on any number of hosts can drain one sweep
against one shared store — lease-based dispatch in the plan executor keeps
them from duplicating work.  ``serve-store`` runs that service over a local
store directory, and ``query`` answers "figure X at these params" cache-first
from a store without ever simulating (exit code 1 when units are missing).
``watch`` runs a figure spec with a live monitor attached
(:mod:`repro.monitor`): a sliding-window streaming estimator emits metric
lines and sparklines while the simulation runs, optionally appending the
stream as JSON Lines (``--emit``) and persisting it next to the run's unit in
any run store (``--store``), where ``query`` reports it as ``[metrics]``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.experiments import ExperimentSpec, all_figure_specs, fig2_force_curves, figure_plan
from repro.core.plan import ConsoleObserver, ExperimentPlan, PlanObserver
from repro.io.artifacts import RunStoreBackend, RunStoreError
from repro.io.remote import open_store
from repro.io.storage import save_measurement
from repro.particles.engine import DRIFT_ENGINES
from repro.particles.neighbors import NEIGHBOR_BACKENDS
from repro.viz import line_plot, save_json, save_series_csv

__all__ = ["main", "build_parser"]

DEFAULT_STORE = Path("results/run_store")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Harder & Polani (2012), 'Self-organizing particle systems'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the available figure experiments")
    list_parser.add_argument("--full", action="store_true", help="show the full-scale parameters")

    def add_engine_flags(sub) -> None:
        sub.add_argument(
            "--engine", choices=list(DRIFT_ENGINES), default=None,
            help="override the drift engine (dense all-pairs, sparse neighbour-pair, or auto)",
        )
        sub.add_argument(
            "--domain", default=None, metavar="SPEC",
            help="override the simulation domain: 'free' (the paper's plane), "
            "'periodic:L' / 'periodic:Lx,Ly' (torus, minimum-image interactions), "
            "'reflecting:L' / 'reflecting:Lx,Ly' (closed box, reflecting walls) or "
            "'channel:Lx,Ly' (periodic in x, reflecting walls in y)",
        )
        sub.add_argument(
            "--neighbor-backend", choices=sorted(NEIGHBOR_BACKENDS), default=None,
            help="override the neighbour-search backend of the sparse engine",
        )
        sub.add_argument(
            "--auto-reresolve-every", type=int, default=None, metavar="K",
            help="re-check the auto engine's dense/sparse choice every K recorded "
            "steps from the current bounding box (0 disables adaptivity)",
        )

    def add_estimator_flags(sub) -> None:
        sub.add_argument(
            "--estimator-backend", choices=("dense", "kdtree", "auto"), default=None,
            help="override the measurement pipeline's estimator backend "
            "(dense O(m^2) matrices, tree-backed queries, or pick by sample count); "
            "non-default backends enter the run-unit content hash",
        )
        sub.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="thread count for the tree backend's cKDTree queries "
            "(-1 = all cores); pure throughput knob, excluded from the content hash",
        )

    run_parser = subparsers.add_parser("run", help="run the experiment(s) behind one figure")
    run_parser.add_argument("figure", help="figure id, e.g. fig4, fig5, fig9")
    run_parser.add_argument("--full", action="store_true", help="use the paper's scale (m=500, t_max=250)")
    run_parser.add_argument("--output", type=Path, default=Path("results"), help="output directory")
    run_parser.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    run_parser.add_argument(
        "--max-specs", type=int, default=None,
        help="run at most this many specs of a sweep figure (default: all)",
    )
    run_parser.add_argument("--n-jobs", type=int, default=None, help="process-pool width for the simulation")
    add_engine_flags(run_parser)
    add_estimator_flags(run_parser)
    run_parser.add_argument("--quiet", action="store_true", help="suppress the ASCII plot")

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="execute a figure's experiment plan against a content-addressed run store",
    )
    resume_parser = subparsers.add_parser(
        "resume",
        help="re-execute an interrupted sweep: compute only the units missing from the store",
    )
    for sub in (sweep_parser, resume_parser):
        sub.add_argument("figure", help="figure id, e.g. fig8, fig9, fig10")
        sub.add_argument(
            "--store", type=str, default=str(DEFAULT_STORE),
            help="run-store directory, or http(s):// URL of a 'serve-store' "
            f"service shared between hosts (default: {DEFAULT_STORE})",
        )
        sub.add_argument("--full", action="store_true", help="use the paper's scale (m=500, t_max=250)")
        sub.add_argument("--n-jobs", type=int, default=None, help="process-pool width for the unit fan-out")
        sub.add_argument(
            "--max-units", type=int, default=None,
            help="execute at most this many units of the plan (default: all)",
        )
        sub.add_argument(
            "--fresh", action="store_true",
            help="ignore cache hits and recompute every unit (conflicts with 'resume')",
        )
        sub.add_argument(
            "--keep-ensembles", action="store_true",
            help="persist raw ensemble trajectories as .npz next to the JSON documents",
        )
        add_engine_flags(sub)
        add_estimator_flags(sub)
        sub.add_argument("--quiet", action="store_true", help="suppress the per-unit progress lines")

    status_parser = subparsers.add_parser(
        "status", help="show which units of a figure plan are cached in a run store"
    )
    status_parser.add_argument("figure", help="figure id, e.g. fig8, fig9, fig10")
    status_parser.add_argument(
        "--store", type=str, default=str(DEFAULT_STORE),
        help="run-store directory, or http(s):// URL of a 'serve-store' "
        f"service (default: {DEFAULT_STORE})",
    )
    status_parser.add_argument("--full", action="store_true", help="use the paper's scale")
    status_parser.add_argument(
        "--max-units", type=int, default=None,
        help="inspect at most this many units of the plan (default: all)",
    )
    status_parser.add_argument(
        "--sweep-orphans", action="store_true",
        help="delete aged orphaned files (crash leftovers) instead of only "
        "reporting them; opt-in because deleting on a store other hosts are "
        "writing to is not always safe under clock skew",
    )
    # Engine knobs (and a non-default estimator backend) enter the content
    # hash, so status must accept the same overrides as the sweep it
    # inspects to look up the same units.
    add_engine_flags(status_parser)
    add_estimator_flags(status_parser)

    query_parser = subparsers.add_parser(
        "query",
        help="answer a figure's results cache-first from a run store (never simulates)",
    )
    query_parser.add_argument("figure", help="figure id, e.g. fig8, fig9, fig10")
    query_parser.add_argument(
        "--store", type=str, default=str(DEFAULT_STORE),
        help="run-store directory, or http(s):// URL of a 'serve-store' "
        f"service (default: {DEFAULT_STORE})",
    )
    query_parser.add_argument("--full", action="store_true", help="use the paper's scale")
    query_parser.add_argument(
        "--max-units", type=int, default=None,
        help="query at most this many units of the plan (default: all)",
    )
    query_parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the per-unit payload as JSON to PATH",
    )
    # Same reasoning as status: overrides change the hashes being queried.
    add_engine_flags(query_parser)
    add_estimator_flags(query_parser)

    serve_parser = subparsers.add_parser(
        "serve-store",
        help="serve a filesystem run store over HTTP so remote workers can share it",
    )
    serve_parser.add_argument(
        "--store", type=str, default=str(DEFAULT_STORE),
        help=f"run-store directory to serve (default: {DEFAULT_STORE})",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: loopback only; bind 0.0.0.0 to serve other hosts)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8750,
        help="bind port (default: 8750; 0 picks a free port, printed at startup)",
    )
    serve_parser.add_argument("--verbose", action="store_true", help="log one line per request")

    watch_parser = subparsers.add_parser(
        "watch",
        help="run a figure spec with a live monitor attached and stream windowed metrics",
    )
    watch_parser.add_argument(
        "figure", help="figure id whose first spec is simulated, e.g. fig4, fig5"
    )
    watch_parser.add_argument("--full", action="store_true", help="use the paper's scale")
    watch_parser.add_argument(
        "--window", type=int, default=8,
        help="sliding window length in recorded steps (default: 8)",
    )
    watch_parser.add_argument(
        "--stride", type=int, default=1,
        help="emit every this-many steps once the window has filled (default: 1)",
    )
    watch_parser.add_argument(
        "--metrics", type=str, default="multi_information,transfer_entropy",
        help="comma-separated streaming metrics: 'multi_information' and/or "
        "'transfer_entropy' (default: both)",
    )
    watch_parser.add_argument(
        "--particles", type=str, default=None, metavar="I,J,...",
        help="particles pooled for multi-information; the first two are the "
        "transfer-entropy source and target (default: all particles / 0,1)",
    )
    watch_parser.add_argument(
        "--history", type=int, default=1, help="target own-history length for streaming TE"
    )
    watch_parser.add_argument("--k", type=int, default=4, help="neighbour order of the kNN estimators")
    watch_parser.add_argument(
        "--backend", choices=("dense", "kdtree"), default="dense",
        help="estimator backend for the streaming recomputation; each emission "
        "equals the post-hoc estimator on the same window (default: dense)",
    )
    watch_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="thread count for the tree backend's cKDTree queries (-1 = all cores)",
    )
    watch_parser.add_argument(
        "--emit", type=Path, default=None, metavar="PATH",
        help="append every emitted row as JSON Lines to PATH while streaming",
    )
    watch_parser.add_argument(
        "--store", type=str, default=None,
        help="persist the finished stream next to this run's unit in a run "
        "store (directory or http(s):// URL); 'query' reports it as [metrics]",
    )
    watch_parser.add_argument(
        "--samples", type=int, default=None, help="override the spec's sample count"
    )
    watch_parser.add_argument(
        "--steps", type=int, default=None, help="override the spec's recorded step count"
    )
    watch_parser.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    add_engine_flags(watch_parser)
    watch_parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-emission lines"
    )

    curves_parser = subparsers.add_parser("curves", help="print the Fig. 2 force-scaling curves")
    curves_parser.add_argument("--output", type=Path, default=None, help="optional CSV output path")

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="pairwise information dynamics (§7.3): transfer entropy between particles",
    )
    analyze_parser.add_argument(
        "figure", nargs="?", default=None,
        help="figure id whose first spec provides the simulated ensemble (omit with --ensemble)",
    )
    analyze_parser.add_argument(
        "--ensemble", type=Path, default=None,
        help="analyze a saved EnsembleTrajectory .npz instead of simulating a figure spec",
    )
    analyze_parser.add_argument(
        "--quantity", choices=("te", "lagged-mi", "both"), default="te",
        help="which pairwise matrix to compute (default: te)",
    )
    analyze_parser.add_argument(
        "--particles", type=str, default=None, metavar="I,J,...",
        help="comma-separated particle indices (default: the first --max-particles)",
    )
    analyze_parser.add_argument(
        "--max-particles", type=int, default=6,
        help="when --particles is omitted, analyze the first this-many particles (default: 6)",
    )
    analyze_parser.add_argument("--history", type=int, default=1, help="target own-history length for TE")
    analyze_parser.add_argument("--lag", type=int, default=1, help="lag for the lagged-MI matrix")
    analyze_parser.add_argument("--k", type=int, default=4, help="neighbour order of the kNN estimators")
    analyze_parser.add_argument(
        "--step-stride", type=int, default=1,
        help="thin the trajectories to every this-many recorded steps before embedding",
    )
    analyze_parser.add_argument(
        "--backend", choices=("dense", "kdtree", "auto"), default="auto",
        help="estimator backend: dense O(m^2) matrices, tree-backed queries, or pick by sample count",
    )
    analyze_parser.add_argument("--n-jobs", type=int, default=None, help="process-pool width for the pair fan-out")
    analyze_parser.add_argument(
        "--variant", default="ksg2",
        help="KSG estimator variant for the lagged-MI matrix: 'paper', 'ksg1' or "
        "'ksg2' (default: ksg2; the TE matrix always uses the KSG1-style CMI)",
    )
    analyze_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="thread count for the tree backend's cKDTree queries (-1 = all cores)",
    )
    analyze_parser.add_argument("--full", action="store_true", help="use the paper's scale for the figure spec")
    analyze_parser.add_argument("--seed", type=int, default=None, help="override the figure spec's seed")
    analyze_parser.add_argument("--output", type=Path, default=Path("results"), help="output directory")
    analyze_parser.add_argument("--quiet", action="store_true", help="suppress the matrix table")

    return parser


def _command_list(args: argparse.Namespace, stream) -> int:
    specs = all_figure_specs(full=args.full)
    stream.write(f"{'figure':8s} {'specs':>5s}  {'n':>4s} {'l':>3s} {'force':>5s} {'r_c':>6s}  description\n")
    for figure, entries in specs.items():
        first = entries[0]
        cutoff = "inf" if first.simulation.cutoff is None else f"{first.simulation.cutoff:g}"
        stream.write(
            f"{figure:8s} {len(entries):5d}  {first.simulation.n_particles:4d} "
            f"{first.simulation.n_types:3d} {first.simulation.force:>5s} {cutoff:>6s}  "
            f"{first.description}\n"
        )
    return 0


def _apply_engine_overrides(simulation, args: argparse.Namespace):
    overrides = {}
    if getattr(args, "engine", None) is not None:
        overrides["engine"] = args.engine
    if getattr(args, "neighbor_backend", None) is not None:
        overrides["neighbor_backend"] = args.neighbor_backend
    if getattr(args, "auto_reresolve_every", None) is not None:
        overrides["auto_reresolve_every"] = args.auto_reresolve_every
    if getattr(args, "domain", None) is not None:
        overrides["domain"] = args.domain
    return simulation.with_updates(**overrides) if overrides else simulation


def _apply_analysis_overrides(spec: ExperimentSpec, args: argparse.Namespace) -> ExperimentSpec:
    overrides = {}
    if getattr(args, "estimator_backend", None) is not None:
        overrides["estimator_backend"] = args.estimator_backend
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if not overrides:
        return spec
    return spec.with_updates(analysis=replace(spec.analysis, **overrides))


def _run_spec(spec: ExperimentSpec, args: argparse.Namespace, stream) -> dict:
    # `run` is a thin wrapper over a one-unit plan (no store: always compute).
    # Engine/domain overrides were already applied by _command_run.
    seed = spec.seed if args.seed is None else args.seed
    spec = spec.with_updates(seed=seed)
    execution = ExperimentPlan.single(spec).execute(store=None, n_jobs=args.n_jobs)
    result = execution.results[0]
    measurement = result.measurement
    output_dir: Path = args.output
    save_measurement(output_dir / f"{spec.name}.json", measurement)
    save_series_csv(
        output_dir / f"{spec.name}.csv",
        {"step": measurement.steps, "multi_information_bits": measurement.multi_information},
    )
    if not args.quiet:
        stream.write(
            line_plot(
                {"I(W_1,...,W_n)": measurement.multi_information},
                x=measurement.steps,
                title=f"{spec.name}: multi-information (bits) vs time step",
            )
            + "\n"
        )
    stream.write(
        f"{spec.name}: delta I = {measurement.delta_multi_information:+.3f} bits "
        f"(initial {measurement.initial_multi_information:.3f}, "
        f"final {measurement.final_multi_information:.3f}); "
        f"results written to {output_dir}/{spec.name}.json\n"
    )
    return {"name": spec.name, "delta": measurement.delta_multi_information}


def _command_run(args: argparse.Namespace, stream) -> int:
    registry = all_figure_specs(full=args.full)
    figure = args.figure.lower()
    if figure == "fig2":
        stream.write("fig2 is analytic; use the 'curves' command instead.\n")
        return 2
    if figure not in registry:
        stream.write(f"unknown figure {args.figure!r}; available: {', '.join(registry)} (and fig2 via 'curves')\n")
        return 2
    specs = registry[figure]
    if args.max_specs is not None:
        if args.max_specs < 1:
            stream.write(f"--max-specs must be >= 1, got {args.max_specs}\n")
            return 2
        specs = specs[: args.max_specs]
    # Apply the engine/domain overrides exactly once; a malformed --domain
    # spec or a periodic box incompatible with the figure's cut-off
    # surfaces here as a clean error instead of a traceback.
    try:
        specs = [
            _apply_analysis_overrides(
                spec.with_updates(simulation=_apply_engine_overrides(spec.simulation, args)),
                args,
            )
            for spec in specs
        ]
    except (KeyError, ValueError) as exc:
        stream.write(f"invalid engine/domain/estimator override: {exc}\n")
        return 2
    if args.neighbor_backend is not None and all(
        spec.simulation.resolved_engine == "dense" for spec in specs
    ):
        stream.write(
            "note: --neighbor-backend has no effect here — every run resolves to the "
            "dense engine; pass --engine sparse to force the sparse path.\n"
        )
    summaries = [_run_spec(spec, args, stream) for spec in specs]
    if len(summaries) > 1:
        mean_delta = float(np.mean([s["delta"] for s in summaries]))
        stream.write(f"{figure}: mean delta I over {len(summaries)} specs = {mean_delta:+.3f} bits\n")
    return 0


def _figure_plan(args: argparse.Namespace, stream) -> ExperimentPlan | None:
    """Build the (possibly limited, engine-overridden) plan of ``args.figure``."""
    try:
        plan = figure_plan(args.figure, full=getattr(args, "full", False))
    except KeyError as exc:
        stream.write(f"{exc.args[0]}\n")
        return None
    if (
        getattr(args, "engine", None)
        or getattr(args, "neighbor_backend", None)
        or getattr(args, "domain", None)
        or getattr(args, "auto_reresolve_every", None) is not None
        or getattr(args, "estimator_backend", None)
        or getattr(args, "workers", None) is not None
    ):
        try:
            plan = plan.map_specs(
                lambda spec: _apply_analysis_overrides(
                    spec.with_updates(
                        simulation=_apply_engine_overrides(spec.simulation, args)
                    ),
                    args,
                )
            )
        except (KeyError, ValueError) as exc:
            # e.g. a malformed --domain spec, a periodic box smaller than
            # twice the figure's cut-off radius, or workers=0.
            stream.write(f"invalid engine/domain/estimator override: {exc}\n")
            return None
    max_units = getattr(args, "max_units", None)
    if max_units is not None:
        if max_units < 1:
            stream.write(f"--max-units must be >= 1, got {max_units}\n")
            return None
        plan = plan.limit(max_units)
    return plan


def _open_store(args: argparse.Namespace, stream, *, create: bool) -> RunStoreBackend | None:
    try:
        return open_store(args.store, create=create)
    except RunStoreError as exc:
        stream.write(f"{exc}\n")
        # "Start the sweep" is the fix for a missing *directory*; an
        # unreachable or non-store URL needs the service fixed instead.
        if not create and not str(args.store).startswith(("http://", "https://")):
            stream.write("start the sweep first: repro sweep "
                         f"{args.figure} --store {args.store}\n")
        return None


def _command_sweep(args: argparse.Namespace, stream, *, resuming: bool = False) -> int:
    if resuming and args.fresh:
        stream.write(
            "conflicting flags: resume computes only missing units, --fresh recomputes "
            "everything; use 'sweep --fresh' to rebuild the store\n"
        )
        return 2
    plan = _figure_plan(args, stream)
    if plan is None:
        return 2
    store = _open_store(args, stream, create=not resuming)
    if store is None:
        return 2
    if resuming and len(store) > 0 and plan.status(store).n_cached == 0:
        # The store holds results, yet none match this plan's hashes — the
        # classic cause is a flag mismatch with the original sweep, which
        # would silently recompute everything resume exists to preserve.
        stream.write(
            f"warning: none of this plan's {len(plan)} unit(s) are in {args.store} "
            f"({len(store)} unrelated unit(s) present); if this store was produced by "
            "this figure's sweep, re-check --full and the engine flags.\n"
        )
    observer = PlanObserver() if args.quiet else ConsoleObserver(stream)
    try:
        execution = plan.execute(
            store,
            n_jobs=args.n_jobs,
            observer=observer,
            recompute=args.fresh,
            keep_ensembles=args.keep_ensembles,
        )
    except RunStoreError as exc:
        stream.write(f"{exc}\nthe store holds a damaged document; delete it and resume.\n")
        return 2
    stream.write(
        f"{args.figure.lower()}: {len(execution.units)} unit(s), "
        f"{execution.n_cached} cached, {execution.n_computed} computed; "
        f"mean delta I = {execution.mean_delta_multi_information():+.3f} bits "
        f"({execution.wall_time_seconds:.1f} s); store: {args.store}\n"
    )
    return 0


def _command_status(args: argparse.Namespace, stream) -> int:
    plan = _figure_plan(args, stream)
    if plan is None:
        return 2
    store = _open_store(args, stream, create=False)
    if store is None:
        return 2
    # A crash between the .npz and JSON writes (or mid-write) can leave
    # orphaned archives/temporaries (and expired leases) behind; no read
    # path uses them, so status reports them.  *Deleting* them is opt-in:
    # on a store shared between hosts, another machine's clock skew can
    # make a live writer's in-flight file look older than the grace
    # period, and an unconditional sweep would destroy its save.
    if args.sweep_orphans:
        swept = store.sweep_orphans()
        if swept:
            stream.write(f"swept {len(swept)} orphaned file(s) from {args.store}\n")
    else:
        orphans = store.orphaned_files()
        if orphans:
            stream.write(
                f"{len(orphans)} orphaned file(s) in {args.store} "
                "(pass --sweep-orphans to delete)\n"
            )
    status = plan.status(store)
    try:
        # Surface damaged documents before a resume trips on them — the full
        # reconstruction, not just JSON decoding, is what resume will do.
        for unit in status.cached:
            store.load(unit.content_hash, with_ensemble=False)
    except RunStoreError as exc:
        stream.write(f"{exc}\n")
        return 2
    stream.write(
        f"{args.figure.lower()}: {status.n_cached}/{status.n_units} unit(s) cached "
        f"in {args.store}\n"
    )
    for unit in status.missing:
        stream.write(f"  missing  {unit.name} ({unit.content_hash[:12]})\n")
    if status.complete:
        stream.write("plan complete; 'sweep' or 'resume' would recompute nothing.\n")
    else:
        stream.write(f"run: repro resume {args.figure.lower()} --store {args.store}\n")
    return 0


def _command_query(args: argparse.Namespace, stream) -> int:
    """Answer a figure's results from a store without simulating anything.

    Exit code 0 when every unit of the (possibly limited/overridden) plan is
    cached, 1 when some are missing — so scripts can branch to a sweep.
    """
    plan = _figure_plan(args, stream)
    if plan is None:
        return 2
    store = _open_store(args, stream, create=False)
    if store is None:
        return 2
    figure = args.figure.lower()
    rows: list[dict] = []
    deltas: list[float] = []
    try:
        for unit in plan.status(None).units:  # deduplicated, plan order
            # 'watch --store' leaves an auxiliary metrics stream next to the
            # unit; report it so the cached artifacts are fully enumerated.
            has_metrics = store.has_metrics(unit.content_hash)
            metrics_note = " [metrics]" if has_metrics else ""
            if store.has(unit.content_hash):
                result = store.load(unit.content_hash, with_ensemble=False)
                delta = float(result.delta_multi_information)
                deltas.append(delta)
                rows.append(
                    {
                        "name": unit.name,
                        "content_hash": unit.content_hash,
                        "cached": True,
                        "delta_multi_information_bits": delta,
                        "has_metrics": has_metrics,
                    }
                )
                stream.write(
                    f"  cached   {unit.name} ({unit.content_hash[:12]}): "
                    f"delta I = {delta:+.3f} bits{metrics_note}\n"
                )
            else:
                rows.append(
                    {
                        "name": unit.name,
                        "content_hash": unit.content_hash,
                        "cached": False,
                        "delta_multi_information_bits": None,
                        "has_metrics": has_metrics,
                    }
                )
                stream.write(
                    f"  missing  {unit.name} ({unit.content_hash[:12]}){metrics_note}\n"
                )
    except RunStoreError as exc:
        stream.write(f"{exc}\n")
        return 2
    stream.write(f"{figure}: {len(deltas)}/{len(rows)} unit(s) cached in {args.store}")
    if deltas:
        stream.write(f"; mean delta I over cached = {float(np.mean(deltas)):+.3f} bits")
    stream.write("\n")
    if args.json is not None:
        path = save_json(
            args.json, {"figure": figure, "store": str(args.store), "units": rows}
        )
        stream.write(f"query payload written to {path}\n")
    if len(deltas) == len(rows):
        return 0
    stream.write(f"complete the sweep: repro resume {figure} --store {args.store}\n")
    return 1


def _command_serve_store(args: argparse.Namespace, stream) -> int:
    from repro.io.service import serve_store

    if str(args.store).startswith(("http://", "https://")):
        stream.write("serve-store fronts a local filesystem store; pass a directory path\n")
        return 2
    try:
        server = serve_store(args.store, args.host, args.port, quiet=not args.verbose)
    except RunStoreError as exc:
        stream.write(f"{exc}\n")
        return 2
    except OSError as exc:
        stream.write(f"cannot bind {args.host}:{args.port}: {exc}\n")
        return 2
    stream.write(f"serving run store {args.store} at {server.url} (Ctrl-C to stop)\n")
    if hasattr(stream, "flush"):
        stream.flush()  # supervisors parse the bound URL before any request
    # A supervisor stop (docker stop, systemd, CI teardown) arrives as
    # SIGTERM, not Ctrl-C; fold it into the same clean shutdown so the
    # socket is released and in-flight PUTs finish (server_close joins the
    # per-connection handler threads).  Signal handlers only install on the
    # main thread; embedders driving this from a worker thread keep their
    # own handling.
    import signal
    import threading

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    on_main = threading.current_thread() is threading.main_thread()
    previous = signal.signal(signal.SIGTERM, _terminate) if on_main else None
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        stream.write("stopped\n")
    finally:
        if on_main:
            signal.signal(signal.SIGTERM, previous)
        server.server_close()
    return 0


def _parse_particles(spec: str | None, n_particles: int, max_particles: int) -> list[int]:
    if spec is None:
        if max_particles < 1:
            raise SystemExit(f"--max-particles must be >= 1, got {max_particles}")
        return list(range(min(max_particles, n_particles)))
    try:
        indices = [int(token) for token in spec.split(",") if token.strip() != ""]
    except ValueError as exc:
        raise SystemExit(f"--particles must be a comma-separated list of integers, got {spec!r}") from exc
    if not indices:
        raise SystemExit("--particles must name at least one particle")
    out_of_range = [index for index in indices if not 0 <= index < n_particles]
    if out_of_range:
        raise SystemExit(
            f"--particles indices {out_of_range} out of range [0, {n_particles}) "
            f"for this {n_particles}-particle ensemble"
        )
    return indices


def _matrix_table(matrix: np.ndarray, particles: list[int], value_name: str) -> str:
    from repro.viz import series_table

    # Particle ids are indices: keep them integer so the table reads
    # "3", not "3.000" (series_table only float-formats floating cells).
    columns = {"target \\ source": np.asarray(particles, dtype=np.int64)}
    for j_index, j in enumerate(particles):
        columns[f"{value_name}<-{j}"] = matrix[:, j_index]
    return series_table(columns, float_format="{:.3f}")


def _command_analyze(args: argparse.Namespace, stream) -> int:
    from repro.analysis.information_dynamics import (
        net_information_flow,
        pairwise_lagged_mutual_information,
        pairwise_transfer_entropy,
    )
    from repro.infotheory.ksg import KSG_VARIANTS
    from repro.particles.trajectory import EnsembleTrajectory

    # Validate upfront: under the default --quantity te the variant is never
    # consulted (TE always uses KSG1-style CMI), so a lazy check would let a
    # typo exit 0 silently.
    if args.variant not in KSG_VARIANTS:
        stream.write(
            f"analyze: unknown variant {args.variant!r}; expected 'paper', 'ksg1' or 'ksg2'\n"
        )
        return 2

    if args.ensemble is not None:
        ensemble = EnsembleTrajectory.load(args.ensemble)
        name = args.ensemble.stem
    elif args.figure is not None:
        from repro.core.pipeline import run_simulation_only

        registry = all_figure_specs(full=args.full)
        figure = args.figure.lower()
        if figure not in registry:
            stream.write(
                f"unknown figure {args.figure!r}; available: {', '.join(registry)}\n"
            )
            return 2
        spec = registry[figure][0]
        simulation = _apply_engine_overrides(spec.simulation, args)
        seed = spec.seed if args.seed is None else args.seed
        ensemble, _simulator = run_simulation_only(
            simulation, spec.n_samples, seed=seed, n_jobs=args.n_jobs
        )
        name = spec.name
    else:
        stream.write("analyze needs a figure id or --ensemble PATH\n")
        return 2

    particles = _parse_particles(args.particles, ensemble.n_particles, args.max_particles)
    common = dict(
        particles=particles,
        k=args.k,
        step_stride=args.step_stride,
        backend=args.backend,
        n_jobs=args.n_jobs,
        workers=args.workers,
    )
    payload: dict = {
        "source": name,
        "particles": particles,
        "k": args.k,
        "step_stride": args.step_stride,
        "backend": args.backend,
        "workers": args.workers,
        "n_samples": ensemble.n_samples,
        "n_steps": ensemble.n_steps,
    }
    # An unknown variant/backend combination (or a bad k for this sample
    # count) surfaces from the estimator layer as ValueError; turn it into a
    # one-line message and exit code 2 instead of a traceback.
    try:
        if args.quantity in ("te", "both"):
            te = pairwise_transfer_entropy(ensemble, history=args.history, **common)
            flow = net_information_flow(te)
            payload["history"] = args.history
            payload["transfer_entropy_bits"] = te.tolist()
            payload["net_information_flow_bits"] = flow.tolist()
            if not args.quiet:
                stream.write(_matrix_table(te, particles, "T") + "\n")
            ranked = sorted(zip(particles, flow), key=lambda item: -item[1])
            stream.write(
                f"{name}: strongest net source is particle {ranked[0][0]} "
                f"({ranked[0][1]:+.3f} bits), strongest sink is particle {ranked[-1][0]} "
                f"({ranked[-1][1]:+.3f} bits)\n"
            )
        if args.quantity in ("lagged-mi", "both"):
            lagged = pairwise_lagged_mutual_information(
                ensemble, lag=args.lag, variant=args.variant, **common
            )
            payload["lag"] = args.lag
            payload["variant"] = args.variant
            payload["lagged_mutual_information_bits"] = lagged.tolist()
            if not args.quiet:
                stream.write(_matrix_table(lagged, particles, "I") + "\n")
    except ValueError as exc:
        stream.write(f"analyze: {exc}\n")
        return 2
    path = save_json(args.output / f"{name}_infodynamics.json", payload)
    stream.write(f"information-dynamics results written to {path}\n")
    return 0


def _command_watch(args: argparse.Namespace, stream) -> int:
    """Run a figure spec with a live monitor attached and stream its metrics.

    The monitor observes every recorded ensemble frame without perturbing the
    run (the trajectory stays bit-identical to an unobserved one) and each
    emitted value equals the post-hoc estimator on the same window.
    """
    from repro.core.plan import RunUnit
    from repro.monitor import (
        InformationMonitor,
        MetricsStream,
        StreamingMultiInformation,
        StreamingTransferEntropy,
    )
    from repro.particles.ensemble import EnsembleSimulator
    from repro.viz import sparkline

    registry = all_figure_specs(full=args.full)
    figure = args.figure.lower()
    if figure not in registry:
        stream.write(f"unknown figure {args.figure!r}; available: {', '.join(registry)}\n")
        return 2
    spec = registry[figure][0]
    try:
        simulation = _apply_engine_overrides(spec.simulation, args)
        if args.steps is not None:
            simulation = simulation.with_updates(n_steps=args.steps)
    except (KeyError, ValueError) as exc:
        stream.write(f"invalid engine/domain override: {exc}\n")
        return 2
    overrides: dict = {"simulation": simulation}
    if args.samples is not None:
        overrides["n_samples"] = args.samples
    if args.seed is not None:
        overrides["seed"] = args.seed
    spec = spec.with_updates(**overrides)

    if args.window < 2:
        stream.write(f"--window must be >= 2, got {args.window}\n")
        return 2
    if args.stride < 1:
        stream.write(f"--stride must be >= 1, got {args.stride}\n")
        return 2
    if args.window > simulation.n_steps + 1:
        stream.write(
            f"--window {args.window} never fills: this run records "
            f"{simulation.n_steps + 1} frame(s); lower --window or raise --steps\n"
        )
        return 2

    particles = None
    if args.particles is not None:
        particles = _parse_particles(args.particles, simulation.n_particles, 1)
    names = [token.strip() for token in args.metrics.split(",") if token.strip()]
    if not names:
        stream.write("watch: --metrics named no metric\n")
        return 2
    estimators = []
    for name in names:
        if name == "multi_information":
            estimators.append(
                StreamingMultiInformation(
                    particles, k=args.k, backend=args.backend, workers=args.workers
                )
            )
        elif name == "transfer_entropy":
            pair = particles[:2] if particles is not None else [0, 1]
            if len(pair) < 2 or simulation.n_particles < 2:
                stream.write(
                    "watch: transfer_entropy needs two particles; pass "
                    "--particles I,J or drop it from --metrics\n"
                )
                return 2
            if args.window <= args.history:
                stream.write(
                    f"watch: --window {args.window} leaves no transitions for "
                    f"--history {args.history}; widen the window\n"
                )
                return 2
            estimators.append(
                StreamingTransferEntropy(
                    pair[0], pair[1], history=args.history, k=args.k,
                    backend=args.backend, workers=args.workers,
                )
            )
        else:
            stream.write(
                f"watch: unknown metric {name!r}; expected 'multi_information' "
                "or 'transfer_entropy'\n"
            )
            return 2

    store = None
    if args.store is not None:
        # Open before simulating so a bad store spec fails in milliseconds,
        # not after the run.
        store = _open_store(args, stream, create=True)
        if store is None:
            return 2

    metrics = MetricsStream(path=args.emit)

    def _echo(row) -> None:
        if args.quiet:
            return
        spark = sparkline(metrics.values(row.metric), width=32)
        stream.write(
            f"step {row.step:>4d}  {row.metric:<18s}{row.value:+9.4f} bits  "
            f"{row.wall_ms:7.2f} ms  |{spark}|\n"
        )
        if hasattr(stream, "flush"):
            stream.flush()

    monitor = InformationMonitor(
        estimators, window=args.window, stride=args.stride, stream=metrics, on_emit=_echo
    )
    simulator = EnsembleSimulator(spec.simulation, spec.n_samples, seed=spec.seed)
    simulator.add_observer(monitor)
    try:
        simulator.run()
    except ValueError as exc:
        # e.g. an ensemble too large for one observer batch, or a k too
        # large for this window's sample count.
        stream.write(f"watch: {exc}\n")
        return 2
    finally:
        metrics.close()

    for name in metrics.metrics():
        values = metrics.values(name)
        stream.write(
            f"{figure}: {name}: {len(values)} emission(s), last {values[-1]:+.4f} "
            f"bits  |{sparkline(values, width=48)}|\n"
        )
    if args.emit is not None:
        stream.write(f"metrics stream written to {args.emit}\n")
    if store is not None:
        unit = RunUnit(spec)
        try:
            store.save_metrics(unit.content_hash, metrics.to_jsonl())
        except RunStoreError as exc:
            stream.write(f"{exc}\n")
            return 2
        stream.write(
            f"metrics stream persisted for unit {unit.content_hash[:12]} in {args.store}\n"
        )
    return 0


def _command_curves(args: argparse.Namespace, stream) -> int:
    curves = fig2_force_curves()
    stream.write(
        line_plot(
            {"F1": curves["F1"], "F2": curves["F2"]},
            x=curves["distance"],
            title="Fig. 2 — force-scaling functions",
        )
        + "\n"
    )
    if args.output is not None:
        path = save_series_csv(
            args.output, {"distance": curves["distance"], "F1": curves["F1"], "F2": curves["F2"]}
        )
        stream.write(f"series written to {path}\n")
    return 0


def main(argv: list[str] | None = None, stream=None) -> int:
    """Entry point; returns the process exit code."""
    stream = stream or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list(args, stream)
    if args.command == "run":
        return _command_run(args, stream)
    if args.command == "sweep":
        return _command_sweep(args, stream)
    if args.command == "resume":
        return _command_sweep(args, stream, resuming=True)
    if args.command == "status":
        return _command_status(args, stream)
    if args.command == "query":
        return _command_query(args, stream)
    if args.command == "serve-store":
        return _command_serve_store(args, stream)
    if args.command == "watch":
        return _command_watch(args, stream)
    if args.command == "curves":
        return _command_curves(args, stream)
    if args.command == "analyze":
        return _command_analyze(args, stream)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
