"""Command-line interface for running the paper's experiments.

The CLI exposes the experiment registry so the figures can be regenerated
without writing Python::

    python -m repro.cli list                       # show every figure experiment
    python -m repro.cli run fig5                   # run one figure's experiment(s)
    python -m repro.cli run fig9 --full --output results/
    python -m repro.cli curves                     # Fig. 2 force-scaling curves

``run`` prints the multi-information series as an ASCII plot and writes the
measurement JSON (plus a CSV of the series) into the output directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.experiments import ExperimentSpec, all_figure_specs, fig2_force_curves
from repro.core.pipeline import run_experiment
from repro.io.storage import save_measurement
from repro.particles.engine import DRIFT_ENGINES
from repro.particles.neighbors import NEIGHBOR_BACKENDS
from repro.viz import line_plot, save_series_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Harder & Polani (2012), 'Self-organizing particle systems'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the available figure experiments")
    list_parser.add_argument("--full", action="store_true", help="show the full-scale parameters")

    run_parser = subparsers.add_parser("run", help="run the experiment(s) behind one figure")
    run_parser.add_argument("figure", help="figure id, e.g. fig4, fig5, fig9")
    run_parser.add_argument("--full", action="store_true", help="use the paper's scale (m=500, t_max=250)")
    run_parser.add_argument("--output", type=Path, default=Path("results"), help="output directory")
    run_parser.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    run_parser.add_argument(
        "--max-specs", type=int, default=None,
        help="run at most this many specs of a sweep figure (default: all)",
    )
    run_parser.add_argument("--n-jobs", type=int, default=None, help="process-pool width for the simulation")
    run_parser.add_argument(
        "--engine", choices=list(DRIFT_ENGINES), default=None,
        help="override the drift engine (dense all-pairs, sparse neighbour-pair, or auto)",
    )
    run_parser.add_argument(
        "--neighbor-backend", choices=sorted(NEIGHBOR_BACKENDS), default=None,
        help="override the neighbour-search backend of the sparse engine",
    )
    run_parser.add_argument(
        "--auto-reresolve-every", type=int, default=None, metavar="K",
        help="re-check the auto engine's dense/sparse choice every K recorded "
        "steps from the current bounding box (0 disables adaptivity)",
    )
    run_parser.add_argument("--quiet", action="store_true", help="suppress the ASCII plot")

    curves_parser = subparsers.add_parser("curves", help="print the Fig. 2 force-scaling curves")
    curves_parser.add_argument("--output", type=Path, default=None, help="optional CSV output path")

    return parser


def _command_list(args: argparse.Namespace, stream) -> int:
    specs = all_figure_specs(full=args.full)
    stream.write(f"{'figure':8s} {'specs':>5s}  {'n':>4s} {'l':>3s} {'force':>5s} {'r_c':>6s}  description\n")
    for figure, entries in specs.items():
        first = entries[0]
        cutoff = "inf" if first.simulation.cutoff is None else f"{first.simulation.cutoff:g}"
        stream.write(
            f"{figure:8s} {len(entries):5d}  {first.simulation.n_particles:4d} "
            f"{first.simulation.n_types:3d} {first.simulation.force:>5s} {cutoff:>6s}  "
            f"{first.description}\n"
        )
    return 0


def _apply_engine_overrides(simulation, args: argparse.Namespace):
    overrides = {}
    if getattr(args, "engine", None) is not None:
        overrides["engine"] = args.engine
    if getattr(args, "neighbor_backend", None) is not None:
        overrides["neighbor_backend"] = args.neighbor_backend
    if getattr(args, "auto_reresolve_every", None) is not None:
        overrides["auto_reresolve_every"] = args.auto_reresolve_every
    return simulation.with_updates(**overrides) if overrides else simulation


def _run_spec(spec: ExperimentSpec, args: argparse.Namespace, stream) -> dict:
    seed = spec.seed if args.seed is None else args.seed
    simulation = _apply_engine_overrides(spec.simulation, args)
    result = run_experiment(
        simulation,
        spec.n_samples,
        analysis_config=spec.analysis,
        seed=seed,
        n_jobs=args.n_jobs,
    )
    measurement = result.measurement
    output_dir: Path = args.output
    save_measurement(output_dir / f"{spec.name}.json", measurement)
    save_series_csv(
        output_dir / f"{spec.name}.csv",
        {"step": measurement.steps, "multi_information_bits": measurement.multi_information},
    )
    if not args.quiet:
        stream.write(
            line_plot(
                {"I(W_1,...,W_n)": measurement.multi_information},
                x=measurement.steps,
                title=f"{spec.name}: multi-information (bits) vs time step",
            )
            + "\n"
        )
    stream.write(
        f"{spec.name}: delta I = {measurement.delta_multi_information:+.3f} bits "
        f"(initial {measurement.initial_multi_information:.3f}, "
        f"final {measurement.final_multi_information:.3f}); "
        f"results written to {output_dir}/{spec.name}.json\n"
    )
    return {"name": spec.name, "delta": measurement.delta_multi_information}


def _command_run(args: argparse.Namespace, stream) -> int:
    registry = all_figure_specs(full=args.full)
    figure = args.figure.lower()
    if figure == "fig2":
        stream.write("fig2 is analytic; use the 'curves' command instead.\n")
        return 2
    if figure not in registry:
        stream.write(f"unknown figure {args.figure!r}; available: {', '.join(registry)} (and fig2 via 'curves')\n")
        return 2
    specs = registry[figure]
    if args.max_specs is not None:
        specs = specs[: max(1, args.max_specs)]
    if args.neighbor_backend is not None and all(
        _apply_engine_overrides(spec.simulation, args).resolved_engine == "dense"
        for spec in specs
    ):
        stream.write(
            "note: --neighbor-backend has no effect here — every run resolves to the "
            "dense engine; pass --engine sparse to force the sparse path.\n"
        )
    summaries = [_run_spec(spec, args, stream) for spec in specs]
    if len(summaries) > 1:
        mean_delta = float(np.mean([s["delta"] for s in summaries]))
        stream.write(f"{figure}: mean delta I over {len(summaries)} specs = {mean_delta:+.3f} bits\n")
    return 0


def _command_curves(args: argparse.Namespace, stream) -> int:
    curves = fig2_force_curves()
    stream.write(
        line_plot(
            {"F1": curves["F1"], "F2": curves["F2"]},
            x=curves["distance"],
            title="Fig. 2 — force-scaling functions",
        )
        + "\n"
    )
    if args.output is not None:
        path = save_series_csv(
            args.output, {"distance": curves["distance"], "F1": curves["F1"], "F2": curves["F2"]}
        )
        stream.write(f"series written to {path}\n")
    return 0


def main(argv: list[str] | None = None, stream=None) -> int:
    """Entry point; returns the process exit code."""
    stream = stream or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list(args, stream)
    if args.command == "run":
        return _command_run(args, stream)
    if args.command == "curves":
        return _command_curves(args, stream)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
