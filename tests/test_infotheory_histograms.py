"""Tests for repro.infotheory.histograms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.histograms import (
    discretize,
    histogram_entropy,
    histogram_multi_information,
    js_shrinkage_probabilities,
    shrinkage_entropy,
)


class TestDiscretize:
    def test_bins_cover_range(self, rng):
        samples = rng.uniform(0, 1, size=(200, 3))
        binned = discretize(samples, 8)
        assert binned.min() >= 0
        assert binned.max() <= 7

    def test_maximum_lands_in_last_bin(self):
        samples = np.array([[0.0], [0.5], [1.0]])
        binned = discretize(samples, 4)
        assert binned[-1, 0] == 3

    def test_constant_column(self):
        samples = np.full((10, 1), 3.0)
        binned = discretize(samples, 5)
        assert np.all(binned == 0)

    def test_explicit_ranges(self):
        samples = np.array([[0.1], [0.9]])
        binned = discretize(samples, 10, ranges=(0.0, 1.0))
        np.testing.assert_array_equal(binned[:, 0], [1, 9])

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            discretize(np.zeros((3, 1)), 0)


class TestJsShrinkage:
    def test_returns_probability_vector(self):
        probs = js_shrinkage_probabilities(np.array([5.0, 3.0, 0.0, 0.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    def test_shrinks_towards_uniform(self):
        counts = np.array([9.0, 1.0, 0.0, 0.0])
        ml = counts / counts.sum()
        probs = js_shrinkage_probabilities(counts)
        # Shrinkage moves extreme frequencies towards 1/4.
        assert probs[0] < ml[0]
        assert probs[2] > ml[2]

    def test_single_observation_returns_target(self):
        probs = js_shrinkage_probabilities(np.array([1.0, 0.0]))
        np.testing.assert_allclose(probs, [0.5, 0.5])

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            js_shrinkage_probabilities(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            js_shrinkage_probabilities(np.array([0.0, 0.0]))


class TestHistogramEntropy:
    def test_uniform_samples_reach_log_bins(self, rng):
        samples = rng.uniform(0, 1, size=(20000, 1))
        assert histogram_entropy(samples, 8) == pytest.approx(3.0, abs=0.02)

    def test_shrinkage_at_least_plugin(self, rng):
        samples = rng.normal(size=(50, 1))
        assert shrinkage_entropy(samples, 16) >= histogram_entropy(samples, 16) - 1e-9


class TestHistogramMultiInformation:
    def test_perfectly_dependent_columns(self, rng):
        x = rng.uniform(0, 1, size=(5000, 1))
        value = histogram_multi_information([x, x.copy()], n_bins=8)
        # Two identical uniform variables share ~log2(8) bits after binning.
        assert value == pytest.approx(3.0, abs=0.1)

    def test_independent_columns_near_zero(self, rng):
        variables = [rng.uniform(0, 1, size=(8000, 1)) for _ in range(2)]
        assert histogram_multi_information(variables, n_bins=6) < 0.05

    def test_overestimates_in_high_dimension_with_few_samples(self, rng):
        # The failure mode the paper reports for binning estimators: sparse
        # sampling of a high-dimensional joint space inflates the estimate.
        variables = [rng.standard_normal((60, 2)) for _ in range(6)]
        binned = histogram_multi_information(variables, n_bins=6)
        from repro.infotheory.ksg import ksg_multi_information

        ksg = ksg_multi_information(variables, k=4)
        assert binned > ksg + 1.0

    def test_shrinkage_variant_runs(self, rng):
        variables = [rng.standard_normal((100, 1)) for _ in range(3)]
        value = histogram_multi_information(variables, n_bins=5, shrinkage=True)
        assert np.isfinite(value)
