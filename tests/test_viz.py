"""Tests for repro.viz (ASCII plots and series export)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz.ascii_plots import bar_chart, line_plot, scatter_plot, series_table, sparkline
from repro.viz.export import load_series_csv, save_json, save_series_csv


class TestLinePlot:
    def test_contains_title_and_legend(self):
        text = line_plot({"mi": [0.0, 1.0, 2.0]}, title="Multi-information")
        assert "Multi-information" in text
        assert "legend:" in text
        assert "mi" in text

    def test_multiple_series(self):
        text = line_plot({"a": [0, 1, 2], "b": [2, 1, 0]})
        assert "a" in text and "b" in text

    def test_constant_series_does_not_crash(self):
        assert isinstance(line_plot({"flat": [1.0, 1.0, 1.0]}), str)

    def test_nan_values_skipped(self):
        assert isinstance(line_plot({"x": [0.0, np.nan, 2.0]}), str)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"a": [1, 2], "b": [1, 2, 3]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": []})


class TestScatterPlot:
    def test_distinct_glyphs_per_type(self):
        positions = np.array([[0.0, 0.0], [5.0, 5.0]])
        text = scatter_plot(positions, np.array([0, 1]))
        assert "o" in text and "x" in text

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            scatter_plot(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            scatter_plot(np.zeros((3, 2)), np.zeros(2, dtype=int))


class TestBarChart:
    def test_values_rendered(self):
        text = bar_chart({"l=1": 0.5, "l=2": 2.0})
        assert "l=1" in text and "l=2" in text
        assert "2.000" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestSeriesTable:
    def test_header_and_rows(self):
        text = series_table({"t": np.arange(3), "value": np.array([0.1, 0.2, 0.3])})
        assert "value" in text
        assert text.count("\n") >= 4

    def test_max_rows_subsamples(self):
        text = series_table({"t": np.arange(100)}, max_rows=5)
        assert len(text.splitlines()) <= 8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            series_table({"a": np.arange(3), "b": np.arange(4)})


class TestSparkline:
    def test_monotone_series_uses_the_full_ramp(self):
        text = sparkline([0.0, 1.0, 2.0, 3.0], glyphs=" .:#")
        assert text == " .:#"

    def test_empty_series_is_an_empty_string(self):
        assert sparkline([]) == ""

    def test_constant_series_renders_the_lowest_glyph(self):
        assert sparkline([2.5, 2.5, 2.5], glyphs=".#") == "..."

    def test_non_finite_values_render_as_spaces(self):
        text = sparkline([0.0, np.nan, 1.0], glyphs=".#")
        assert text == ". #"

    def test_width_keeps_the_trailing_values(self):
        # The live-stream view: only the most recent `width` values matter.
        text = sparkline([0.0, 0.0, 0.0, 1.0, 2.0], width=2, glyphs=".#")
        assert text == ".#"  # scaled to the tail's own min/max

    def test_bad_arguments_are_rejected(self):
        with pytest.raises(ValueError, match="two levels"):
            sparkline([1.0], glyphs="#")
        with pytest.raises(ValueError, match="width"):
            sparkline([1.0], width=0)


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        columns = {"t": np.arange(5, dtype=float), "mi": np.linspace(0, 1, 5)}
        path = save_series_csv(tmp_path / "out" / "series.csv", columns)
        loaded = load_series_csv(path)
        np.testing.assert_allclose(loaded["mi"], columns["mi"])
        np.testing.assert_allclose(loaded["t"], columns["t"])

    def test_csv_requires_aligned_columns(self, tmp_path):
        with pytest.raises(ValueError):
            save_series_csv(tmp_path / "x.csv", {"a": np.arange(2), "b": np.arange(3)})

    def test_json_handles_numpy_types(self, tmp_path):
        payload = {"value": np.float64(1.5), "series": np.arange(3), "nested": {"n": np.int64(2)}}
        path = save_json(tmp_path / "payload.json", payload)
        import json

        loaded = json.loads(path.read_text())
        assert loaded["value"] == 1.5
        assert loaded["series"] == [0, 1, 2]
        assert loaded["nested"]["n"] == 2
