"""Tests for repro.particles.forces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.particles.forces import (
    _DISTANCE_FLOOR,
    FORCE_SCALINGS,
    GaussianAdhesionForce,
    LinearAdhesionForce,
    drift_batch,
    drift_single,
    get_force_scaling,
    net_force_norms,
    pair_interaction_weights,
    pairwise_distance_matrix,
    preferred_distance_curve,
)
from repro.particles.types import InteractionParams


class TestForceScalingFunctions:
    def test_f1_zero_at_preferred_distance(self):
        f1 = LinearAdhesionForce()
        value = f1(np.array([2.0]), 1.0, 2.0, 1.0, 1.0)
        np.testing.assert_allclose(value, 0.0, atol=1e-12)

    def test_f1_sign_structure(self):
        f1 = LinearAdhesionForce()
        # Below the preferred distance the scaling is negative (repulsion);
        # beyond it positive (attraction).
        assert f1(np.array([1.0]), 1.0, 2.0, 1.0, 1.0)[0] < 0
        assert f1(np.array([3.0]), 1.0, 2.0, 1.0, 1.0)[0] > 0

    def test_f1_saturates_at_k(self):
        f1 = LinearAdhesionForce()
        value = f1(np.array([1e9]), 3.0, 2.0, 1.0, 1.0)
        np.testing.assert_allclose(value, 3.0, rtol=1e-6)

    def test_f1_finite_at_zero_distance(self):
        f1 = LinearAdhesionForce()
        assert np.isfinite(f1(np.array([0.0]), 1.0, 2.0, 1.0, 1.0)).all()

    def test_f2_zero_at_origin_with_unit_sigma(self):
        f2 = GaussianAdhesionForce()
        np.testing.assert_allclose(f2(np.array([0.0]), 1.0, 1.0, 1.0, 2.0), 0.0, atol=1e-12)

    def test_f2_repulsive_everywhere_when_tau_exceeds_sigma(self):
        # With sigma = 1 (the paper's setting) and tau > 1 the repulsion term
        # decays slower, so F2 <= 0 at every distance: a purely repulsive,
        # finite-range interaction.
        f2 = GaussianAdhesionForce()
        x = np.linspace(0.0, 10.0, 200)
        assert np.all(f2(x, 2.0, 1.0, 1.0, 4.0) <= 1e-12)

    def test_f2_sign_change_when_sigma_exceeds_tau(self):
        f2 = GaussianAdhesionForce()
        x = np.linspace(0.01, 8.0, 400)
        values = f2(x, 1.0, 1.0, 2.0, 1.0)
        assert values.min() < 0 < values.max()

    def test_f2_vanishes_at_long_range(self):
        f2 = GaussianAdhesionForce()
        np.testing.assert_allclose(f2(np.array([50.0]), 5.0, 1.0, 1.0, 3.0), 0.0, atol=1e-12)

    def test_preferred_distance_f1_matches_r(self):
        f1 = LinearAdhesionForce()
        assert np.isclose(f1.preferred_distance(1.0, 2.5, 1.0, 1.0), 2.5, atol=1e-2)

    def test_preferred_distance_curve_shape(self):
        params = InteractionParams.clustering(2, self_distance=1.0, cross_distance=3.0)
        curve = preferred_distance_curve("F1", params)
        assert curve.shape == (2, 2)
        np.testing.assert_allclose(np.diag(curve), 1.0, atol=1e-2)

    def test_registry_lookup(self):
        assert get_force_scaling("F1") is FORCE_SCALINGS["F1"]
        assert get_force_scaling("f2").name == "F2"
        assert get_force_scaling(FORCE_SCALINGS["F1"]) is FORCE_SCALINGS["F1"]

    def test_registry_unknown(self):
        with pytest.raises(KeyError):
            get_force_scaling("F3")


class TestForceInvariantProperties:
    """Property-based tests of the Eq. 7/8 invariants the paper relies on."""

    @given(
        k=st.floats(min_value=0.1, max_value=10.0),
        r=st.floats(min_value=0.1, max_value=8.0),
    )
    def test_f1_zero_crossing_exactly_at_r(self, k, r):
        # F1(r) = k (1 - r/r) is exactly zero in floating point, for every k, r.
        f1 = LinearAdhesionForce()
        assert f1(np.array([r]), k, r, 1.0, 1.0)[0] == 0.0
        # And the sign flips across the crossing: repulsive below, attractive above.
        assert f1(np.array([0.5 * r]), k, r, 1.0, 1.0)[0] < 0
        assert f1(np.array([2.0 * r]), k, r, 1.0, 1.0)[0] > 0

    @given(
        k=st.floats(min_value=0.1, max_value=10.0),
        tau=st.floats(min_value=1.5, max_value=10.0),
    )
    def test_f2_pure_repulsion_when_tau_exceeds_unit_sigma(self, k, tau):
        # The paper's setting: sigma = 1, tau > 1 makes the repulsion term
        # dominate at every distance, so F2 <= 0 everywhere.
        f2 = GaussianAdhesionForce()
        x = np.linspace(0.0, 12.0, 300)
        assert np.all(f2(x, k, 1.0, 1.0, tau) <= 1e-12)

    @given(
        k=st.floats(min_value=0.1, max_value=10.0),
        sigma=st.floats(min_value=2.0, max_value=6.0),
    )
    def test_f2_sign_structure_when_sigma_exceeds_tau(self, k, sigma):
        # sigma > tau: short-range repulsion, longer-range attraction — the
        # scaling must take both signs and decay to zero at long range.
        f2 = GaussianAdhesionForce()
        x = np.linspace(0.01, 12.0, 600)
        values = f2(x, k, 1.0, sigma, 1.0)
        assert values.min() < 0 < values.max()
        np.testing.assert_allclose(f2(np.array([60.0]), k, 1.0, sigma, 1.0), 0.0, atol=1e-12)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        force=st.sampled_from(["F1", "F2"]),
        cutoff=st.one_of(st.none(), st.floats(min_value=0.5, max_value=5.0)),
    )
    def test_drift_antisymmetry_total_momentum_vanishes(self, seed, force, cutoff):
        # Symmetric parameters + antisymmetric Δz_ij make the pairwise drift
        # obey Newton's third law, so absent noise the total momentum is ~0.
        rng = np.random.default_rng(seed)
        params = InteractionParams.random(2, rng=rng)
        types = rng.integers(0, 2, size=10)
        positions = rng.uniform(-3, 3, size=(10, 2))
        drift = drift_single(positions, types, params, force, cutoff=cutoff)
        np.testing.assert_allclose(drift.sum(axis=0), 0.0, atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_coincident_particles_are_safe(self, seed):
        # Two particles at the same point hit F1's r/x singularity; the
        # distance floor keeps the drift finite (and the Δz = 0 prefactor
        # makes the coincident pair contribute nothing).
        rng = np.random.default_rng(seed)
        params = InteractionParams.random(2, rng=rng)
        positions = rng.uniform(-3, 3, size=(6, 2))
        positions[1] = positions[0]
        types = rng.integers(0, 2, size=6)
        for force in ("F1", "F2"):
            drift = drift_single(positions, types, params, force)
            assert np.isfinite(drift).all()

    def test_distance_floor_bounds_f1(self):
        f1 = LinearAdhesionForce()
        at_zero = f1(np.array([0.0]), 1.0, 2.0, 1.0, 1.0)[0]
        at_floor = f1(np.array([_DISTANCE_FLOOR]), 1.0, 2.0, 1.0, 1.0)[0]
        assert at_zero == at_floor
        assert np.isfinite(at_zero)


class TestPairInteractionWeights:
    def test_matches_scaling_with_cutoff_mask(self):
        params = InteractionParams.clustering(2, self_distance=1.0, cross_distance=2.5, k=2.0)
        dist = np.array([0.5, 1.5, 4.0])
        ti = np.array([0, 0, 1])
        tj = np.array([0, 1, 1])
        weights = pair_interaction_weights(dist, ti, tj, params, "F1", cutoff=2.0)
        f1 = get_force_scaling("F1")
        expected = -f1(
            dist, params.k[ti, tj], params.r[ti, tj], params.sigma[ti, tj], params.tau[ti, tj]
        )
        expected[dist > 2.0] = 0.0
        np.testing.assert_array_equal(weights, expected)

    def test_no_cutoff_keeps_every_pair(self):
        params = InteractionParams.single_type(k=1.0, r=1.0)
        dist = np.array([0.5, 100.0])
        zero = np.zeros(2, dtype=int)
        weights = pair_interaction_weights(dist, zero, zero, params, "F1", cutoff=None)
        assert np.all(weights != 0.0)


class TestPairwiseDistances:
    def test_known_values(self):
        pos = np.array([[0.0, 0.0], [3.0, 4.0]])
        dist = pairwise_distance_matrix(pos)
        np.testing.assert_allclose(dist, [[0.0, 5.0], [5.0, 0.0]])

    def test_batch_shape(self):
        pos = np.zeros((4, 7, 2))
        assert pairwise_distance_matrix(pos).shape == (4, 7, 7)

    @given(st.integers(min_value=2, max_value=10))
    def test_symmetry_and_zero_diagonal(self, n):
        pos = np.random.default_rng(n).uniform(-5, 5, size=(n, 2))
        dist = pairwise_distance_matrix(pos)
        np.testing.assert_allclose(dist, dist.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(dist), 0.0, atol=1e-12)


def _random_system(rng, n=8, n_types=2):
    params = InteractionParams.random(n_types, rng=rng)
    types = rng.integers(0, n_types, size=n)
    positions = rng.uniform(-3, 3, size=(n, 2))
    return positions, types, params


class TestDriftSingle:
    def test_two_particles_attract_beyond_preferred_distance(self):
        params = InteractionParams.single_type(k=1.0, r=1.0)
        positions = np.array([[0.0, 0.0], [3.0, 0.0]])
        types = np.zeros(2, dtype=int)
        drift = drift_single(positions, types, params, "F1")
        # particle 0 should be pushed towards +x, particle 1 towards -x
        assert drift[0, 0] > 0
        assert drift[1, 0] < 0
        np.testing.assert_allclose(drift[:, 1], 0.0, atol=1e-12)

    def test_two_particles_repel_below_preferred_distance(self):
        params = InteractionParams.single_type(k=1.0, r=2.0)
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        types = np.zeros(2, dtype=int)
        drift = drift_single(positions, types, params, "F1")
        assert drift[0, 0] < 0
        assert drift[1, 0] > 0

    def test_momentum_conservation_for_symmetric_params(self, rng):
        positions, types, params = _random_system(rng)
        drift = drift_single(positions, types, params, "F1")
        # Newton's third law: pairwise forces cancel in the sum.
        np.testing.assert_allclose(drift.sum(axis=0), 0.0, atol=1e-9)

    def test_cutoff_removes_interactions(self):
        params = InteractionParams.single_type(k=1.0, r=1.0)
        positions = np.array([[0.0, 0.0], [10.0, 0.0]])
        types = np.zeros(2, dtype=int)
        drift = drift_single(positions, types, params, "F1", cutoff=5.0)
        np.testing.assert_allclose(drift, 0.0, atol=1e-12)

    def test_infinite_cutoff_equals_none(self, rng):
        positions, types, params = _random_system(rng)
        a = drift_single(positions, types, params, "F2", cutoff=None)
        b = drift_single(positions, types, params, "F2", cutoff=np.inf)
        np.testing.assert_allclose(a, b)

    def test_translation_invariance(self, rng):
        positions, types, params = _random_system(rng)
        shifted = positions + np.array([11.0, -4.0])
        a = drift_single(positions, types, params, "F1")
        b = drift_single(shifted, types, params, "F1")
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_rotation_equivariance(self, rng):
        positions, types, params = _random_system(rng)
        theta = 0.7
        rot = np.array([[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]])
        a = drift_single(positions @ rot.T, types, params, "F1")
        b = drift_single(positions, types, params, "F1") @ rot.T
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_same_type_permutation_equivariance(self, rng):
        positions, types, params = _random_system(rng, n=8, n_types=2)
        # Permute two particles of the same type; the drift permutes the same way.
        same_type = np.nonzero(types == types[0])[0]
        if same_type.size < 2:
            pytest.skip("random draw produced fewer than 2 particles of type 0")
        i, j = same_type[:2]
        perm = np.arange(positions.shape[0])
        perm[[i, j]] = perm[[j, i]]
        a = drift_single(positions[perm], types, params, "F1")
        b = drift_single(positions, types, params, "F1")[perm]
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_sparse_pairs_match_dense(self, rng):
        positions, types, params = _random_system(rng, n=12)
        cutoff = 2.5
        from repro.particles.neighbors import BruteForceNeighbors

        pairs = BruteForceNeighbors().pairs(positions, cutoff)
        dense = drift_single(positions, types, params, "F1", cutoff=cutoff)
        sparse = drift_single(
            positions, types, params, "F1", cutoff=cutoff, neighbor_pairs=pairs
        )
        np.testing.assert_allclose(sparse, dense, atol=1e-9)

    def test_pair_matrices_can_be_reused(self, rng):
        positions, types, params = _random_system(rng)
        pair = params.pair_matrices(types)
        a = drift_single(positions, types, params, "F1", cutoff=2.0, pair=pair)
        b = drift_single(positions, types, params, "F1", cutoff=2.0)
        np.testing.assert_array_equal(a, b)

    def test_shape_validation(self):
        params = InteractionParams.single_type()
        with pytest.raises(ValueError):
            drift_single(np.zeros((3, 3)), np.zeros(3, dtype=int), params, "F1")
        with pytest.raises(ValueError):
            drift_single(np.zeros((3, 2)), np.zeros(4, dtype=int), params, "F1")


class TestDriftBatch:
    def test_matches_single_per_sample(self, rng):
        params = InteractionParams.random(3, rng=rng)
        types = rng.integers(0, 3, size=9)
        batch = rng.uniform(-3, 3, size=(5, 9, 2))
        batched = drift_batch(batch, types, params, "F1", cutoff=4.0)
        for m in range(batch.shape[0]):
            single = drift_single(batch[m], types, params, "F1", cutoff=4.0)
            np.testing.assert_allclose(batched[m], single, atol=1e-9)

    def test_requires_batch_shape(self):
        params = InteractionParams.single_type()
        with pytest.raises(ValueError):
            drift_batch(np.zeros((3, 2)), np.zeros(3, dtype=int), params, "F1")

    def test_pair_matrices_can_be_reused(self, rng):
        params = InteractionParams.random(2, rng=rng)
        types = rng.integers(0, 2, size=6)
        batch = rng.uniform(-2, 2, size=(3, 6, 2))
        pair = params.pair_matrices(types)
        a = drift_batch(batch, types, params, "F2", pair=pair)
        b = drift_batch(batch, types, params, "F2")
        np.testing.assert_allclose(a, b)


class TestNetForceNorms:
    def test_single_configuration(self):
        drift = np.array([[3.0, 4.0], [0.0, 0.0]])
        np.testing.assert_allclose(net_force_norms(drift), [5.0, 0.0])

    def test_batch_shape(self):
        drift = np.ones((4, 6, 2))
        assert net_force_norms(drift).shape == (4, 6)
