"""Tests for repro.infotheory.kde."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.kde import kde_entropy, kde_multi_information


class TestKdeEntropy:
    def test_gaussian_entropy(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0, 1, size=(3000, 1))
        true = 0.5 * np.log2(2 * np.pi * np.e)
        assert kde_entropy(samples) == pytest.approx(true, abs=0.15)

    def test_scaling_behaviour(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=(2000, 1))
        assert kde_entropy(4 * samples) - kde_entropy(samples) == pytest.approx(2.0, abs=0.2)

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            kde_entropy(np.zeros((2, 1)))


class TestKdeMultiInformation:
    def test_correlated_gaussians(self):
        rng = np.random.default_rng(2)
        rho = 0.8
        xy = rng.multivariate_normal([0, 0], [[1, rho], [rho, 1]], size=2500)
        true = -0.5 * np.log2(1 - rho**2)
        estimate = kde_multi_information([xy[:, :1], xy[:, 1:]])
        assert estimate == pytest.approx(true, abs=0.2)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(3)
        variables = [rng.standard_normal((2500, 1)) for _ in range(2)]
        assert abs(kde_multi_information(variables)) < 0.15
