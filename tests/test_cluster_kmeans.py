"""Tests for repro.cluster.kmeans."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.kmeans import kmeans, kmeans_plus_plus_init


def _blobs(rng, centers, n_per_blob=30, spread=0.1):
    centers = np.asarray(centers, dtype=float)
    points = []
    for center in centers:
        points.append(center + spread * rng.standard_normal((n_per_blob, 2)))
    return np.concatenate(points, axis=0)


class TestKMeansPlusPlus:
    def test_centers_are_data_points(self, rng):
        points = rng.uniform(-5, 5, size=(40, 2))
        centers = kmeans_plus_plus_init(points, 4, rng)
        for center in centers:
            assert np.any(np.all(np.isclose(points, center), axis=1))

    def test_duplicate_points_handled(self, rng):
        points = np.zeros((10, 2))
        centers = kmeans_plus_plus_init(points, 3, rng)
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_recovers_well_separated_blobs(self, rng):
        true_centers = [[-5.0, -5.0], [5.0, 5.0], [5.0, -5.0]]
        points = _blobs(rng, true_centers)
        result = kmeans(points, 3, rng=rng)
        # Every true centre has a fitted centre nearby.
        for center in true_centers:
            distances = np.linalg.norm(result.centers - center, axis=1)
            assert distances.min() < 0.3

    def test_labels_match_nearest_center(self, rng):
        points = _blobs(rng, [[-3.0, 0.0], [3.0, 0.0]])
        result = kmeans(points, 2, rng=rng)
        delta = points[:, None, :] - result.centers[None, :, :]
        nearest = np.einsum("nkd,nkd->nk", delta, delta).argmin(axis=1)
        np.testing.assert_array_equal(result.labels, nearest)

    def test_inertia_decreases_with_more_clusters(self, rng):
        points = rng.uniform(-5, 5, size=(60, 2))
        inertia = [kmeans(points, k, rng=rng).inertia for k in (1, 2, 4, 8)]
        assert all(np.diff(inertia) <= 1e-9)

    def test_deterministic_given_seed(self):
        points = np.random.default_rng(0).uniform(-3, 3, size=(50, 2))
        a = kmeans(points, 4, rng=7)
        b = kmeans(points, 4, rng=7)
        np.testing.assert_allclose(a.centers, b.centers)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_canonical_center_ordering(self, rng):
        points = _blobs(rng, [[4.0, 0.0], [-4.0, 0.0]])
        result = kmeans(points, 2, rng=rng)
        # Centres are sorted lexicographically by (x, y).
        assert result.centers[0, 0] < result.centers[1, 0]

    def test_single_cluster_is_mean(self, rng):
        points = rng.uniform(-2, 2, size=(30, 2))
        result = kmeans(points, 1, rng=rng)
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0), atol=1e-9)
        assert np.all(result.labels == 0)

    def test_k_equals_n_gives_zero_inertia(self, rng):
        points = rng.uniform(-2, 2, size=(6, 2))
        result = kmeans(points, 6, rng=rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_invalid_inputs(self, rng):
        points = rng.uniform(size=(5, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0, rng=rng)
        with pytest.raises(ValueError):
            kmeans(points, 6, rng=rng)
        with pytest.raises(ValueError):
            kmeans(points, 2, rng=rng, n_init=0)
        with pytest.raises(ValueError):
            kmeans(points, 2, rng=rng, max_iterations=0)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=100))
    def test_partition_property(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(-3, 3, size=(20, 2))
        result = kmeans(points, k, rng=rng)
        assert result.labels.shape == (20,)
        assert set(np.unique(result.labels)) <= set(range(k))
        assert result.centers.shape == (k, 2)
        assert result.inertia >= 0
