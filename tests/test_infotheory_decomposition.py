"""Tests for repro.infotheory.decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.decomposition import (
    decompose_multi_information,
    groups_from_labels,
    validate_groups,
)
from repro.infotheory.discrete import multi_information_from_samples


class TestGroupsFromLabels:
    def test_groups_by_value(self):
        groups = groups_from_labels([0, 1, 0, 2, 1])
        assert groups == [[0, 2], [1, 4], [3]]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            groups_from_labels([])


class TestValidateGroups:
    def test_accepts_partition(self):
        assert validate_groups([[0, 2], [1]], 3) == [[0, 2], [1]]

    def test_rejects_missing_index(self):
        with pytest.raises(ValueError):
            validate_groups([[0], [1]], 3)

    def test_rejects_duplicate_index(self):
        with pytest.raises(ValueError):
            validate_groups([[0, 1], [1, 2]], 3)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            validate_groups([[0, 1, 2], []], 3)


class TestDecomposeWithDiscreteEstimator:
    """Use the exact discrete estimator so the identity of Eq. 5 holds exactly."""

    @staticmethod
    def _discrete_estimator(var_list):
        # Each variable is (m, d) of small integers; merge columns into tuples
        # by mixed-radix encoding so the exact discrete estimator applies.
        encoded = []
        for var in var_list:
            arr = np.asarray(var, dtype=int)
            code = np.zeros(arr.shape[0], dtype=np.int64)
            for col in range(arr.shape[1]):
                code = code * 10 + arr[:, col]
            encoded.append(code)
        return multi_information_from_samples(np.stack(encoded, axis=1))

    def test_exact_decomposition_identity(self, rng):
        # Build 4 discrete observers with structure inside and between groups.
        m = 4000
        shared = rng.integers(0, 2, size=m)
        x1 = shared
        x2 = (shared + rng.integers(0, 2, size=m)) % 3
        y1 = rng.integers(0, 2, size=m)
        y2 = (y1 + shared) % 2
        variables = [v.reshape(-1, 1) for v in (x1, x2, y1, y2)]
        groups = [[0, 1], [2, 3]]
        result = decompose_multi_information(
            variables, groups, estimator=self._discrete_estimator
        )
        # Eq. 5: total = between + sum(within); exact for the plug-in estimator
        # because the underlying empirical distribution is the same everywhere.
        assert result.total == pytest.approx(result.reconstructed_total, abs=1e-9)
        assert result.residual == pytest.approx(0.0, abs=1e-9)

    def test_singleton_groups_reduce_to_total(self, rng):
        m = 3000
        a = rng.integers(0, 3, size=m)
        b = (a + rng.integers(0, 2, size=m)) % 3
        variables = [a.reshape(-1, 1), b.reshape(-1, 1)]
        result = decompose_multi_information(
            variables, [[0], [1]], estimator=self._discrete_estimator
        )
        assert result.within_groups == (0.0, 0.0)
        assert result.between_groups == pytest.approx(result.total)


class TestDecomposeWithKSG:
    def test_between_term_detects_cross_group_coupling(self, rng):
        m = 800
        shared = rng.standard_normal((m, 1))
        group_a = [shared + 0.3 * rng.standard_normal((m, 1)) for _ in range(2)]
        group_b = [shared + 0.3 * rng.standard_normal((m, 1)) for _ in range(2)]
        result = decompose_multi_information(group_a + group_b, [[0, 1], [2, 3]], k=4)
        assert result.between_groups > 0.5
        assert all(w > 0.2 for w in result.within_groups)

    def test_normalized_contributions_sum_close_to_one_for_exact_estimator(self, rng):
        m = 600
        shared = rng.standard_normal((m, 1))
        variables = [shared + 0.5 * rng.standard_normal((m, 1)) for _ in range(4)]
        result = decompose_multi_information(variables, [[0, 1], [2, 3]], k=4)
        contributions = result.normalized_contributions()
        assert set(contributions) == {"between", "within_0", "within_1"}
        # With a consistent estimator the decomposition approximately
        # reconstructs the total (within estimator error).
        assert sum(contributions.values()) == pytest.approx(1.0, abs=0.35)

    def test_zero_total_gives_zero_contributions(self):
        result = decompose_multi_information(
            [np.zeros((50, 1)), np.ones((50, 1))],
            [[0], [1]],
            estimator=lambda vs: 0.0,
        )
        contributions = result.normalized_contributions()
        assert all(value == 0.0 for value in contributions.values())

    def test_group_validation(self, rng):
        variables = [rng.standard_normal((100, 1)) for _ in range(3)]
        with pytest.raises(ValueError):
            decompose_multi_information(variables, [[0, 1]], k=3)
