"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.self_organization import AnalysisConfig
from repro.particles.model import SimulationConfig
from repro.particles.types import InteractionParams

# Property-based tests exercise numerical kernels whose runtime varies a lot
# between examples; disable the per-example deadline and keep example counts
# moderate so the whole suite stays fast.  The nightly CI job selects the
# "nightly" profile (REPRO_HYPOTHESIS_PROFILE=nightly) to fuzz much harder
# than any per-push run would tolerate.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    deadline=None,
    max_examples=400,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_type_params() -> InteractionParams:
    """Small two-type parameter set with same-type clustering."""
    return InteractionParams.clustering(2, self_distance=1.0, cross_distance=2.5, k=2.0)


@pytest.fixture
def small_config(two_type_params: InteractionParams) -> SimulationConfig:
    """A cheap simulation configuration used across integration-style tests."""
    return SimulationConfig(
        type_counts=(6, 6),
        params=two_type_params,
        force="F1",
        cutoff=None,
        dt=0.02,
        substeps=2,
        n_steps=15,
        init_radius=3.0,
    )


@pytest.fixture
def fast_analysis() -> AnalysisConfig:
    """Analysis configuration that keeps per-test runtime small."""
    return AnalysisConfig(step_stride=5, k_neighbors=3)
