"""Tests for repro.infotheory.knn."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.infotheory.knn import (
    EuclideanBallCounter,
    ProductMetricTree,
    chebyshev_over_variables,
    k_nearest_neighbor_indices,
    kozachenko_leonenko_entropy,
    kth_neighbor_distances,
    kth_neighbor_indices,
    pairwise_euclidean,
    per_variable_distances,
)


class TestPairwiseEuclidean:
    def test_matches_scipy(self, rng):
        samples = rng.normal(size=(40, 3))
        np.testing.assert_allclose(pairwise_euclidean(samples), cdist(samples, samples), atol=1e-9)

    def test_one_dimensional_input(self):
        samples = np.array([[0.0], [3.0]])
        np.testing.assert_allclose(pairwise_euclidean(samples), [[0.0, 3.0], [3.0, 0.0]])


class TestPerVariableAndChebyshev:
    def test_shapes(self, rng):
        var_list = [rng.normal(size=(20, 2)), rng.normal(size=(20, 1))]
        per_var = per_variable_distances(var_list)
        assert per_var.shape == (2, 20, 20)
        joint = chebyshev_over_variables(per_var)
        assert joint.shape == (20, 20)

    def test_chebyshev_is_elementwise_max(self, rng):
        var_list = [rng.normal(size=(10, 2)), rng.normal(size=(10, 2))]
        per_var = per_variable_distances(var_list)
        joint = chebyshev_over_variables(per_var)
        np.testing.assert_allclose(joint, np.maximum(per_var[0], per_var[1]))

    def test_chebyshev_validates_ndim(self):
        with pytest.raises(ValueError):
            chebyshev_over_variables(np.zeros((3, 3)))


class TestNeighborIndices:
    def test_known_configuration(self):
        # Points on a line: 0, 1, 3, 7
        x = np.array([[0.0], [1.0], [3.0], [7.0]])
        dist = pairwise_euclidean(x)
        nn1 = kth_neighbor_indices(dist, 1)
        np.testing.assert_array_equal(nn1, [1, 0, 1, 2])
        nn2 = kth_neighbor_indices(dist, 2)
        np.testing.assert_array_equal(nn2, [2, 2, 0, 1])

    def test_k_nearest_sorted(self, rng):
        samples = rng.normal(size=(30, 2))
        dist = pairwise_euclidean(samples)
        idx = k_nearest_neighbor_indices(dist, 5)
        assert idx.shape == (30, 5)
        gathered = np.take_along_axis(
            dist + np.diag(np.full(30, np.inf)), idx, axis=1
        )
        assert np.all(np.diff(gathered, axis=1) >= -1e-12)

    def test_invalid_k(self):
        dist = pairwise_euclidean(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            kth_neighbor_indices(dist, 0)
        with pytest.raises(ValueError):
            kth_neighbor_indices(dist, 5)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            kth_neighbor_indices(np.zeros((3, 4)), 1)


class TestKthNeighborDistances:
    def test_backends_agree(self, rng):
        samples = rng.normal(size=(60, 3))
        dense = kth_neighbor_distances(samples, 4, backend="dense")
        tree = kth_neighbor_distances(samples, 4, backend="kdtree")
        np.testing.assert_allclose(dense, tree, atol=1e-9)

    def test_unknown_backend(self, rng):
        with pytest.raises(ValueError):
            kth_neighbor_distances(rng.normal(size=(10, 2)), 2, backend="balltree")

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            kth_neighbor_distances(rng.normal(size=(10, 2)), 10)


class TestKozachenkoLeonenkoEntropy:
    def test_gaussian_entropy_1d(self):
        rng = np.random.default_rng(0)
        sigma = 2.0
        samples = rng.normal(0.0, sigma, size=(4000, 1))
        true = 0.5 * np.log2(2 * np.pi * np.e * sigma**2)
        estimate = kozachenko_leonenko_entropy(samples, k=5)
        assert estimate == pytest.approx(true, abs=0.1)

    def test_gaussian_entropy_2d(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=(4000, 2))
        true = 2 * 0.5 * np.log2(2 * np.pi * np.e)
        estimate = kozachenko_leonenko_entropy(samples, k=5)
        assert estimate == pytest.approx(true, abs=0.15)

    def test_uniform_entropy(self):
        rng = np.random.default_rng(2)
        width = 4.0
        samples = rng.uniform(0, width, size=(4000, 1))
        estimate = kozachenko_leonenko_entropy(samples, k=5)
        assert estimate == pytest.approx(np.log2(width), abs=0.1)

    def test_scaling_shifts_entropy_by_log_factor(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(size=(2000, 1))
        base = kozachenko_leonenko_entropy(samples, k=4)
        scaled = kozachenko_leonenko_entropy(4.0 * samples, k=4)
        assert scaled - base == pytest.approx(2.0, abs=0.1)


class TestWorkers:
    """workers= threads the scipy queries without changing any result."""

    def test_product_metric_tree_is_workers_invariant(self):
        rng = np.random.default_rng(21)
        blocks = [rng.standard_normal((300, 2)) for _ in range(3)]
        eps_serial = ProductMetricTree(blocks).kth_neighbor_distances(4)
        eps_threaded = ProductMetricTree(blocks, workers=-1).kth_neighbor_distances(4)
        np.testing.assert_array_equal(eps_serial, eps_threaded)
        counts_serial = ProductMetricTree(blocks).counts_within(eps_serial)
        counts_threaded = ProductMetricTree(blocks, workers=2).counts_within(eps_serial)
        np.testing.assert_array_equal(counts_serial, counts_threaded)

    def test_euclidean_ball_counter_is_workers_invariant(self):
        rng = np.random.default_rng(22)
        block = rng.standard_normal((400, 2))
        radii = np.abs(rng.standard_normal(400)) + 0.1
        np.testing.assert_array_equal(
            EuclideanBallCounter(block).counts_within(radii),
            EuclideanBallCounter(block, workers=-1).counts_within(radii),
        )

    def test_kth_neighbor_distances_is_workers_invariant(self):
        rng = np.random.default_rng(23)
        samples = rng.standard_normal((500, 3))
        np.testing.assert_array_equal(
            kth_neighbor_distances(samples, 5, backend="kdtree"),
            kth_neighbor_distances(samples, 5, backend="kdtree", workers=2),
        )

    def test_entropy_accepts_workers(self):
        rng = np.random.default_rng(24)
        samples = rng.standard_normal((300, 2))
        serial = kozachenko_leonenko_entropy(samples, k=4, backend="kdtree")
        threaded = kozachenko_leonenko_entropy(samples, k=4, backend="kdtree", workers=2)
        assert serial == threaded

    def test_workers_default_is_serial(self):
        rng = np.random.default_rng(25)
        tree = ProductMetricTree([rng.standard_normal((50, 2))])
        assert tree.workers == 1
        counter = EuclideanBallCounter(rng.standard_normal((50, 2)))
        assert counter.workers == 1
