"""Tests for repro.particles.equilibrium."""

from __future__ import annotations

import numpy as np
import pytest

from repro.particles.equilibrium import (
    EquilibriumDetector,
    detect_limit_cycle,
    total_force_norm,
)


class TestTotalForceNorm:
    def test_single_configuration(self):
        drift = np.array([[3.0, 4.0], [1.0, 0.0]])
        assert total_force_norm(drift) == pytest.approx(6.0)

    def test_batch(self):
        drift = np.ones((3, 4, 2))
        np.testing.assert_allclose(total_force_norm(drift), np.full(3, 4 * np.sqrt(2)))


class TestEquilibriumDetector:
    def test_requires_consecutive_quiet_steps(self):
        detector = EquilibriumDetector(threshold=1.0, patience=3)
        quiet = np.zeros((2, 2))
        loud = np.full((2, 2), 10.0)
        assert detector.update(quiet) is False
        assert detector.update(quiet) is False
        assert detector.update(loud) is False  # resets the counter
        assert detector.update(quiet) is False
        assert detector.update(quiet) is False
        assert detector.update(quiet) is True

    def test_history_records_every_update(self):
        detector = EquilibriumDetector(threshold=0.5, patience=2)
        for _ in range(4):
            detector.update(np.zeros((1, 2)))
        assert detector.history.shape == (4,)

    def test_reset(self):
        detector = EquilibriumDetector(threshold=1.0, patience=1)
        detector.update(np.zeros((1, 2)))
        detector.reset()
        assert detector.quiet_steps == 0
        assert detector.history.size == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EquilibriumDetector(threshold=0.0)
        with pytest.raises(ValueError):
            EquilibriumDetector(patience=0)


class TestDetectLimitCycle:
    def _oscillating_trajectory(self, period: int, n_steps: int = 120) -> np.ndarray:
        t = np.arange(n_steps)
        angle = 2 * np.pi * t / period
        x = np.cos(angle)
        y = np.sin(angle)
        # Two particles rotating rigidly around the origin.
        particle0 = np.stack([x, y], axis=1)
        particle1 = -particle0
        return np.stack([particle0, particle1], axis=1)

    def test_detects_period(self):
        report = detect_limit_cycle(self._oscillating_trajectory(period=12), max_period=30)
        assert report.is_periodic
        assert report.period == 12

    def test_static_trajectory_is_not_periodic(self):
        positions = np.zeros((100, 3, 2))
        report = detect_limit_cycle(positions)
        assert not report.is_periodic

    def test_noisy_drift_is_not_periodic(self, rng):
        positions = np.cumsum(rng.normal(size=(120, 3, 2)), axis=0)
        report = detect_limit_cycle(positions, tolerance=1e-3)
        assert not report.is_periodic

    def test_short_trajectory_handled(self):
        report = detect_limit_cycle(np.zeros((3, 2, 2)))
        assert not report.is_periodic

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            detect_limit_cycle(np.zeros((10, 3)))
        with pytest.raises(ValueError):
            detect_limit_cycle(np.zeros((10, 3, 2)), tail_fraction=0.0)
