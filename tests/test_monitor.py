"""Tests for the streaming-analysis subsystem (repro.monitor).

The subsystem's contract has three legs, each pinned here:

* observers are **free and invisible**: a run with a no-op (or real)
  observer attached produces a bit-identical trajectory to an unobserved
  run, and an empty observer list costs nothing;
* streaming emissions are **exact**: every emitted value equals the
  post-hoc estimator applied to the same window — bitwise on the dense
  backend, within tight tolerance across backends;
* finished streams are **first-class store artifacts**: the metrics JSONL
  round-trips through both run-store backends without ever entering the
  unit key space or the orphan sweep.
"""

from __future__ import annotations

import json
from collections import deque

import numpy as np
import pytest

from repro.monitor import (
    InformationMonitor,
    MetricRow,
    MetricsStream,
    StreamingMultiInformation,
    StreamingTransferEntropy,
    WindowBuffer,
    posthoc_window_value,
    replay_ensemble,
)
from repro.particles.ensemble import EnsembleSimulator
from repro.particles.model import ParticleSystem, SimulationConfig
from repro.particles.types import InteractionParams


def tiny_config(n_steps: int = 6) -> SimulationConfig:
    params = InteractionParams.clustering(2, self_distance=1.0, cross_distance=2.0)
    return SimulationConfig(
        type_counts=(4, 4), params=params, force="F1", dt=0.02,
        n_steps=n_steps, init_radius=2.0,
    )


@pytest.fixture
def ensemble():
    """A small recorded ensemble trajectory, deterministic under seed 7."""
    return EnsembleSimulator(tiny_config(), 10, seed=7).run()


class RecordingObserver:
    def __init__(self) -> None:
        self.steps: list[int] = []
        self.frames: list[np.ndarray] = []

    def on_step(self, step: int, positions: np.ndarray) -> None:
        self.steps.append(step)
        self.frames.append(positions.copy())


class TestWindowBuffer:
    def test_view_matches_a_naive_deque_reference(self):
        rng = np.random.default_rng(0)
        window = 7
        buffer = WindowBuffer(window)
        reference: deque = deque(maxlen=window)
        for _ in range(50):  # several compactions at capacity 2*window
            frame = rng.standard_normal((3, 2))
            buffer.push(frame)
            reference.append(frame)
            np.testing.assert_array_equal(buffer.view(), np.stack(list(reference)))

    def test_partial_buffer_shows_everything_seen(self):
        buffer = WindowBuffer(5)
        frames = [np.full((2, 2), float(i)) for i in range(3)]
        for frame in frames:
            buffer.push(frame)
        assert not buffer.full and buffer.n_seen == 3
        np.testing.assert_array_equal(buffer.view(), np.stack(frames))

    def test_view_is_zero_copy(self):
        buffer = WindowBuffer(4)
        for i in range(4):
            buffer.push(np.full((2, 2), float(i)))
        view = buffer.view()
        assert view.base is not None  # a slice of the storage, not a copy

    def test_empty_buffer_and_shape_mismatch_raise(self):
        buffer = WindowBuffer(3)
        with pytest.raises(ValueError, match="empty"):
            buffer.view()
        buffer.push(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="shape"):
            buffer.push(np.zeros((3, 2)))

    def test_nonpositive_window_is_rejected(self):
        with pytest.raises(ValueError):
            WindowBuffer(0)


class TestObserverTransparency:
    """Observed runs are bit-identical to unobserved ones (the engines' contract)."""

    def test_particle_system_frames_are_bit_identical(self):
        config = tiny_config()
        baseline = ParticleSystem(config, rng=3).run()
        observer = RecordingObserver()
        observed_system = ParticleSystem(config, rng=3)
        observed_system.add_observer(observer)
        observed = observed_system.run()
        np.testing.assert_array_equal(baseline.positions, observed.positions)
        assert observer.steps == list(range(config.n_steps + 1))
        np.testing.assert_array_equal(np.stack(observer.frames), observed.positions)

    def test_ensemble_trajectory_is_bit_identical(self, ensemble):
        observer = RecordingObserver()
        simulator = EnsembleSimulator(tiny_config(), 10, seed=7)
        simulator.add_observer(observer)
        observed = simulator.run()
        np.testing.assert_array_equal(ensemble.positions, observed.positions)
        assert observer.steps == list(range(tiny_config().n_steps + 1))

    def test_removed_observer_hears_nothing(self):
        observer = RecordingObserver()
        simulator = EnsembleSimulator(tiny_config(), 6, seed=1)
        simulator.add_observer(observer)
        simulator.remove_observer(observer)
        simulator.run()
        assert observer.steps == []

    def test_observer_frames_are_read_only(self):
        class Mutator:
            def on_step(self, step, positions):
                positions[0] = 0.0

        simulator = EnsembleSimulator(tiny_config(), 6, seed=1)
        simulator.add_observer(Mutator())
        with pytest.raises(ValueError, match="read-only"):
            simulator.run()

    def test_multi_batch_observed_run_is_refused(self):
        # Streaming needs the full (m, n, 2) snapshot per step; a batched
        # run would hand the observer per-batch slices.
        simulator = EnsembleSimulator(tiny_config(), 64, seed=1, bytes_budget=4096)
        simulator.add_observer(RecordingObserver())
        with pytest.raises(ValueError, match="one batch"):
            simulator.run()


class TestStreamingEquivalence:
    """Each emission equals the post-hoc estimator on the same window."""

    WINDOW = 4

    def _estimators(self, backend: str):
        return [
            StreamingMultiInformation(k=2, backend=backend),
            StreamingTransferEntropy(0, 1, history=1, k=2, backend=backend),
        ]

    def test_dense_emissions_are_bitwise_posthoc(self, ensemble):
        estimators = self._estimators("dense")
        stream = replay_ensemble(ensemble, estimators, window=self.WINDOW)
        assert len(stream) > 0
        by_name = {estimator.name: estimator for estimator in estimators}
        for row in stream.rows:
            reference = posthoc_window_value(
                by_name[row.metric], ensemble.positions, row.step, self.WINDOW
            )
            assert row.value == reference  # bitwise, not approximate

    def test_kdtree_emissions_are_bitwise_posthoc_and_near_dense(self, ensemble):
        kdtree_stream = replay_ensemble(
            ensemble, self._estimators("kdtree"), window=self.WINDOW
        )
        dense_stream = replay_ensemble(
            ensemble, self._estimators("dense"), window=self.WINDOW
        )
        by_name = {e.name: e for e in self._estimators("kdtree")}
        for row, dense_row in zip(kdtree_stream.rows, dense_stream.rows):
            reference = posthoc_window_value(
                by_name[row.metric], ensemble.positions, row.step, self.WINDOW
            )
            assert row.value == reference  # same backend: still bitwise
            assert (row.step, row.metric) == (dense_row.step, dense_row.metric)
            assert row.value == pytest.approx(dense_row.value, abs=1e-7)

    def test_live_run_equals_replay(self, ensemble):
        live = MetricsStream()
        monitor = InformationMonitor(
            self._estimators("dense"), window=self.WINDOW, stride=2, stream=live
        )
        simulator = EnsembleSimulator(tiny_config(), 10, seed=7)
        simulator.add_observer(monitor)
        simulator.run()
        replayed = replay_ensemble(
            ensemble, self._estimators("dense"), window=self.WINDOW, stride=2
        )
        assert [(r.step, r.metric, r.value) for r in live.rows] == [
            (r.step, r.metric, r.value) for r in replayed.rows
        ]
        assert monitor.n_emissions == len(live.rows) // 2  # two estimators

    def test_stride_rations_the_emissions(self, ensemble):
        # 7 recorded frames, window 4 -> full at steps 3..6; stride 3 emits
        # at steps 3 and 6 only.
        stream = replay_ensemble(
            ensemble, [StreamingMultiInformation(k=2)], window=4, stride=3
        )
        assert [row.step for row in stream.rows] == [3, 6]

    def test_window_never_filling_emits_nothing(self, ensemble):
        stream = replay_ensemble(
            ensemble, [StreamingMultiInformation(k=2)], window=ensemble.n_steps + 1
        )
        assert len(stream) == 0

    def test_te_rejects_a_window_shorter_than_history(self, ensemble):
        estimator = StreamingTransferEntropy(0, 1, history=3, k=2)
        with pytest.raises(ValueError, match="history"):
            estimator.compute(np.asarray(ensemble.positions[:3], dtype=float))

    def test_te_rejects_identical_source_and_target(self):
        with pytest.raises(ValueError, match="source"):
            StreamingTransferEntropy(2, 2)

    def test_monitor_validates_its_arguments(self):
        with pytest.raises(ValueError, match="at least one"):
            InformationMonitor([], window=4)
        with pytest.raises(ValueError, match="stride"):
            InformationMonitor([StreamingMultiInformation()], window=4, stride=0)


class TestMetricsStream:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsStream(path=path) as stream:
            stream.record(step=3, window=4, metric="mi", value=1.5, wall_ms=0.25)
            stream.record(step=4, window=4, metric="te", value=0.5, wall_ms=0.5)
        loaded = MetricsStream.from_rows(MetricsStream.load(path))
        assert loaded.rows == stream.rows
        assert loaded.to_jsonl() == stream.to_jsonl()
        for line in path.read_text().splitlines():
            row = json.loads(line)
            assert set(row) == {"step", "window", "metric", "value", "wall_ms"}

    def test_values_and_metric_order(self):
        stream = MetricsStream()
        stream.record(step=1, window=2, metric="b", value=1.0, wall_ms=0.1)
        stream.record(step=1, window=2, metric="a", value=2.0, wall_ms=0.1)
        stream.record(step=2, window=2, metric="b", value=3.0, wall_ms=0.1)
        assert stream.metrics() == ["b", "a"]  # first-emission order
        assert stream.values("b") == [1.0, 3.0]
        assert len(stream) == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            MetricsStream.parse("{ not json\n")

    def test_row_is_immutable(self):
        row = MetricRow(step=1, window=2, metric="mi", value=1.0, wall_ms=0.1)
        with pytest.raises(AttributeError):
            row.value = 2.0


class TestMetricsArtifacts:
    """The finished stream persists next to the unit in both store backends."""

    HASH = "ab" * 32
    PAYLOAD = '{"metric": "mi", "step": 3, "value": 1.5, "wall_ms": 0.2, "window": 4}\n'

    @pytest.fixture(params=["filesystem", "http"])
    def store(self, request, tmp_path):
        from repro.io.artifacts import RunStore

        if request.param == "filesystem":
            yield RunStore(tmp_path / "store")
            return
        from repro.io.remote import open_store
        from repro.io.service import serve_store

        server = serve_store(tmp_path / "store", port=0)
        thread = server.serve_in_background()
        yield open_store(server.url)
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)

    def test_round_trip_and_overwrite_semantics(self, store):
        from repro.io.artifacts import RunStoreError

        assert not store.has_metrics(self.HASH)
        with pytest.raises(RunStoreError, match="no metrics artifact"):
            store.load_metrics(self.HASH)
        store.save_metrics(self.HASH, self.PAYLOAD)
        assert store.has_metrics(self.HASH)
        assert store.load_metrics(self.HASH) == self.PAYLOAD
        # Default save overwrites (wall times are volatile)...
        store.save_metrics(self.HASH, self.PAYLOAD * 2)
        assert store.load_metrics(self.HASH) == self.PAYLOAD * 2
        # ...but overwrite=False keeps the existing stream.
        store.save_metrics(self.HASH, self.PAYLOAD, overwrite=False)
        assert store.load_metrics(self.HASH) == self.PAYLOAD * 2

    def test_metrics_stay_out_of_keys_and_orphan_sweep(self, tmp_path):
        from repro.io.artifacts import RunStore

        store = RunStore(tmp_path / "store")
        store.save_metrics(self.HASH, self.PAYLOAD)
        assert store.keys() == []
        assert store.orphaned_files(min_age_seconds=0.0) == []
        assert store.sweep_orphans(min_age_seconds=0.0) == []
        assert store.has_metrics(self.HASH)
