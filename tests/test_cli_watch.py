"""CLI tests for live monitoring (`repro watch`) and store-service robustness.

Covers the watch command end to end (emission lines, JSONL emit, store
persistence, the query-side ``[metrics]`` marker), clean ``serve-store``
shutdown on SIGTERM/SIGINT with ``--port 0``, and the exit-2 error paths of
``query``/``status`` against unreachable or non-store HTTP endpoints.
"""

from __future__ import annotations

import io
import json
import signal
import socket
import subprocess
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture
def tiny_scale(monkeypatch):
    """Shrink the reduced experiment scale so watch runs stay fast."""
    from repro.core import experiments as exp_mod

    tiny = exp_mod.ExperimentScale(n_samples=12, n_steps=6, step_stride=3, sweep_repeats=1)
    monkeypatch.setattr(exp_mod, "default_scale", lambda full=None: tiny)
    return tiny


def _dead_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestWatchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["watch", "fig4"])
        assert args.window == 8 and args.stride == 1
        assert args.metrics == "multi_information,transfer_entropy"
        assert args.backend == "dense" and args.workers == 1
        assert args.emit is None and args.store is None
        assert args.samples is None and args.steps is None

    def test_help_text_lists_watch(self):
        assert "watch" in build_parser().format_help()

    def test_invalid_backend_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["watch", "fig4", "--backend", "warp"])


class TestWatchCommand:
    def test_unknown_figure_is_an_error(self, tiny_scale):
        stream = io.StringIO()
        assert main(["watch", "fig99"], stream=stream) == 2
        assert "unknown figure" in stream.getvalue()

    def test_unknown_metric_is_an_error(self, tiny_scale):
        stream = io.StringIO()
        code = main(
            ["watch", "fig4", "--window", "4", "--metrics", "entropy_rate"], stream=stream
        )
        assert code == 2
        assert "unknown metric" in stream.getvalue()

    def test_never_filling_window_is_an_error(self, tiny_scale):
        # tiny scale records 7 frames; a window of 20 would never emit.
        stream = io.StringIO()
        assert main(["watch", "fig4", "--window", "20"], stream=stream) == 2
        assert "never fills" in stream.getvalue()

    def test_window_shorter_than_te_history_is_an_error(self, tiny_scale):
        stream = io.StringIO()
        code = main(["watch", "fig4", "--window", "3", "--history", "3"], stream=stream)
        assert code == 2
        assert "no transitions" in stream.getvalue()

    def test_streams_metrics_and_persists_them(self, tmp_path, tiny_scale):
        from repro.io.artifacts import RunStore
        from repro.monitor import MetricsStream

        emit_path = tmp_path / "rows.jsonl"
        store_dir = tmp_path / "store"
        stream = io.StringIO()
        code = main(
            [
                "watch", "fig4", "--window", "4", "--k", "2",
                "--emit", str(emit_path), "--store", str(store_dir),
            ],
            stream=stream,
        )
        assert code == 0
        output = stream.getvalue()
        assert "multi_information" in output and "transfer_entropy" in output
        assert "emission(s)" in output and "persisted" in output
        # The emitted JSONL parses back into the same rows the run printed.
        rows = MetricsStream.load(emit_path)
        assert len(rows) > 0
        assert {row.metric for row in rows} == {"multi_information", "transfer_entropy"}
        assert all(row.window == 4 for row in rows)
        # The persisted store artifact is byte-identical to the stream.
        store = RunStore(store_dir, create=False)
        artifacts = list(store.units_dir.glob("*.metrics.jsonl"))
        assert len(artifacts) == 1
        assert artifacts[0].read_text() == emit_path.read_text()

    def test_watch_emissions_match_the_posthoc_estimator(self, tmp_path, tiny_scale):
        # The CLI wires spec -> simulator -> monitor; re-simulating the same
        # spec without a monitor and applying the estimator post hoc must
        # reproduce every emitted value bitwise (dense backend).
        from repro.core.experiments import all_figure_specs
        from repro.monitor import (
            MetricsStream,
            StreamingMultiInformation,
            posthoc_window_value,
        )
        from repro.particles.ensemble import EnsembleSimulator

        emit_path = tmp_path / "rows.jsonl"
        code = main(
            ["watch", "fig4", "--window", "4", "--k", "2",
             "--metrics", "multi_information", "--emit", str(emit_path), "--quiet"],
            stream=io.StringIO(),
        )
        assert code == 0
        spec = all_figure_specs(full=False)["fig4"][0]
        ensemble = EnsembleSimulator(spec.simulation, spec.n_samples, seed=spec.seed).run()
        estimator = StreamingMultiInformation(k=2, backend="dense")
        rows = MetricsStream.load(emit_path)
        assert len(rows) > 0
        for row in rows:
            assert row.value == posthoc_window_value(
                estimator, ensemble.positions, row.step, 4
            )

    def test_query_reports_the_metrics_artifact(self, tmp_path, tiny_scale):
        store_dir = str(tmp_path / "store")
        code = main(
            ["watch", "fig4", "--window", "4", "--k", "2", "--quiet",
             "--store", store_dir],
            stream=io.StringIO(),
        )
        assert code == 0
        # Before the sweep: the unit is missing but its stream is reported.
        stream = io.StringIO()
        assert main(["query", "fig4", "--store", store_dir], stream=stream) == 1
        assert "missing" in stream.getvalue() and "[metrics]" in stream.getvalue()
        # After the sweep the same unit is cached — still carrying the marker.
        assert main(["sweep", "fig4", "--store", store_dir, "--quiet"],
                    stream=io.StringIO()) == 0
        stream = io.StringIO()
        payload_path = tmp_path / "query.json"
        assert main(["query", "fig4", "--store", store_dir,
                     "--json", str(payload_path)], stream=stream) == 0
        assert "cached" in stream.getvalue() and "[metrics]" in stream.getvalue()
        payload = json.loads(payload_path.read_text())
        assert all(unit["has_metrics"] for unit in payload["units"])


class TestServeStoreShutdown:
    def _spawn(self, store_dir: Path):
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve-store",
             "--store", str(store_dir), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
        )

    def test_port_zero_prints_the_bound_url_and_sigterm_stops_cleanly(self, tmp_path):
        import urllib.request

        proc = self._spawn(tmp_path / "store")
        try:
            line = proc.stdout.readline()  # flushed before serve_forever
            assert "serving run store" in line
            url = line.split(" at ")[1].split(" ")[0]
            port = int(url.rsplit(":", 1)[1])
            assert port != 0  # --port 0 resolved to a real bound port
            with urllib.request.urlopen(url, timeout=5.0) as response:
                marker = json.load(response)
            assert marker["format"] == "repro-run-store"
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=10.0)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert "stopped" in output
        # The socket is released: the same port binds again immediately.
        with socket.socket() as rebind:
            rebind.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            rebind.bind(("127.0.0.1", port))

    def test_sigint_stops_cleanly_too(self, tmp_path):
        import urllib.request

        proc = self._spawn(tmp_path / "store")
        try:
            line = proc.stdout.readline()
            assert "serving" in line
            # An answered request proves serve_forever is running, so the
            # signal cannot race the startup code.
            url = line.split(" at ")[1].split(" ")[0]
            urllib.request.urlopen(url, timeout=5.0).close()
            proc.send_signal(signal.SIGINT)
            output, _ = proc.communicate(timeout=10.0)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert "stopped" in output


class _NotAStoreHandler(BaseHTTPRequestHandler):
    """Answers 200 with JSON that is not a run-store marker."""

    def do_GET(self):  # noqa: N802 - stdlib naming
        body = json.dumps({"service": "definitely-not-a-run-store"}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_HEAD = do_GET

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass


class TestStoreErrorExits:
    """query/status against a bad HTTP store spec: exit 2, one-line error."""

    def test_query_and_status_against_a_dead_port_exit_2(self):
        url = f"http://127.0.0.1:{_dead_port()}"
        for command in ("query", "status"):
            stream = io.StringIO()
            assert main([command, "fig4", "--store", url], stream=stream) == 2
            output = stream.getvalue()
            assert "unreachable" in output
            assert len(output.strip().splitlines()) == 1  # one line, no traceback
            assert "start the sweep first" not in output  # wrong advice for URLs

    def test_query_against_a_non_store_service_exits_2(self):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _NotAStoreHandler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            stream = io.StringIO()
            code = main(["query", "fig4", "--store", f"http://{host}:{port}"], stream=stream)
            assert code == 2
            output = stream.getvalue()
            assert "not a run store" in output
            assert len(output.strip().splitlines()) == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_watch_fails_fast_on_a_dead_store(self, tiny_scale):
        url = f"http://127.0.0.1:{_dead_port()}"
        stream = io.StringIO()
        assert main(["watch", "fig4", "--window", "4", "--store", url], stream=stream) == 2
        output = stream.getvalue()
        assert "unreachable" in output
        assert "emission" not in output  # failed before simulating
