"""Tests for repro.parallel.batch."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.batch import batch_slices, max_batch_for_budget, split_batches


class TestMaxBatchForBudget:
    def test_at_least_one(self):
        assert max_batch_for_budget(10_000, bytes_budget=1) == 1

    def test_scales_inversely_with_particles(self):
        small = max_batch_for_budget(10)
        large = max_batch_for_budget(100)
        assert small > large

    def test_invalid_particles(self):
        with pytest.raises(ValueError):
            max_batch_for_budget(0)

    def test_budget_formula(self):
        # 4 buffers * n^2 * 2 coords * 8 bytes per sample
        n = 16
        per_sample = 4 * n * n * 2 * 8
        assert max_batch_for_budget(n, bytes_budget=10 * per_sample) == 10


class TestBatchSlices:
    def test_covers_range(self):
        slices = batch_slices(10, 3)
        covered = [i for sl in slices for i in range(sl.start, sl.stop)]
        assert covered == list(range(10))

    def test_zero_items(self):
        assert batch_slices(0, 5) == []

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            batch_slices(-1, 1)
        with pytest.raises(ValueError):
            batch_slices(5, 0)

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=64))
    def test_partition_property(self, n_items, batch_size):
        slices = batch_slices(n_items, batch_size)
        covered = [i for sl in slices for i in range(sl.start, sl.stop)]
        assert covered == list(range(n_items))
        assert all(sl.stop - sl.start <= batch_size for sl in slices)


class TestSplitBatches:
    def test_concatenation_recovers_array(self):
        array = np.arange(23).reshape(23, 1)
        parts = split_batches(array, 5)
        np.testing.assert_array_equal(np.concatenate(parts, axis=0), array)

    def test_respects_axis(self):
        array = np.arange(24).reshape(2, 12)
        parts = split_batches(array, 5, axis=1)
        assert [p.shape[1] for p in parts] == [5, 5, 2]
        np.testing.assert_array_equal(np.concatenate(parts, axis=1), array)
