"""Tests for repro.particles.neighbors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.particles.neighbors import (
    NEIGHBOR_BACKENDS,
    BruteForceNeighbors,
    CellListNeighbors,
    KDTreeNeighbors,
    get_neighbor_search,
)


def _pairs_as_set(i_idx, j_idx):
    return set(zip(i_idx.tolist(), j_idx.tolist()))


BACKENDS = [BruteForceNeighbors(), CellListNeighbors(), KDTreeNeighbors()]


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestBackendsAgainstBruteForce:
    def test_simple_triangle(self, backend):
        positions = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        i_idx, j_idx = backend.pairs(positions, radius=2.0)
        assert _pairs_as_set(i_idx, j_idx) == {(0, 1), (1, 0)}

    def test_no_self_pairs(self, backend):
        positions = np.random.default_rng(0).uniform(-3, 3, size=(20, 2))
        i_idx, j_idx = backend.pairs(positions, radius=2.0)
        assert np.all(i_idx != j_idx)

    def test_symmetric_pairs(self, backend):
        positions = np.random.default_rng(1).uniform(-3, 3, size=(15, 2))
        pairs = _pairs_as_set(*backend.pairs(positions, radius=1.5))
        assert all((j, i) in pairs for (i, j) in pairs)

    def test_matches_brute_force(self, backend):
        rng = np.random.default_rng(7)
        positions = rng.uniform(-5, 5, size=(40, 2))
        reference = _pairs_as_set(*BruteForceNeighbors().pairs(positions, radius=2.2))
        result = _pairs_as_set(*backend.pairs(positions, radius=2.2))
        assert result == reference

    def test_infinite_radius_gives_all_pairs(self, backend):
        positions = np.random.default_rng(3).uniform(-2, 2, size=(6, 2))
        pairs = _pairs_as_set(*backend.pairs(positions, radius=np.inf))
        assert len(pairs) == 6 * 5

    def test_empty_input(self, backend):
        i_idx, j_idx = backend.pairs(np.zeros((0, 2)), radius=1.0)
        assert i_idx.size == 0 and j_idx.size == 0

    def test_invalid_radius(self, backend):
        with pytest.raises(ValueError):
            backend.pairs(np.zeros((3, 2)), radius=0.0)

    def test_invalid_shape(self, backend):
        with pytest.raises(ValueError):
            backend.pairs(np.zeros((3, 3)), radius=1.0)


@given(
    st.integers(min_value=2, max_value=30),
    st.floats(min_value=0.3, max_value=4.0),
    st.integers(min_value=0, max_value=1000),
)
def test_cell_list_matches_brute_force_property(n, radius, seed):
    positions = np.random.default_rng(seed).uniform(-4, 4, size=(n, 2))
    brute = _pairs_as_set(*BruteForceNeighbors().pairs(positions, radius))
    cell = _pairs_as_set(*CellListNeighbors().pairs(positions, radius))
    assert cell == brute


class TestNeighborLists:
    def test_lists_match_pairs(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [5.0, 5.0]])
        lists = BruteForceNeighbors().neighbor_lists(positions, radius=1.5)
        assert lists[0].tolist() == [1, 2]
        assert lists[3].tolist() == []


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_neighbor_search("cell"), CellListNeighbors)
        assert isinstance(get_neighbor_search("kdtree"), KDTreeNeighbors)

    def test_instance_passthrough(self):
        backend = CellListNeighbors()
        assert get_neighbor_search(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_neighbor_search("octree")

    def test_registry_complete(self):
        assert set(NEIGHBOR_BACKENDS) == {"brute", "cell", "kdtree"}
