"""Tests for repro.particles.neighbors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.particles.neighbors import (
    NEIGHBOR_BACKENDS,
    BruteForceNeighbors,
    CellListNeighbors,
    KDTreeNeighbors,
    get_neighbor_search,
)


def _pairs_as_set(i_idx, j_idx):
    return set(zip(i_idx.tolist(), j_idx.tolist()))


BACKENDS = [BruteForceNeighbors(), CellListNeighbors(), KDTreeNeighbors()]


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestBackendsAgainstBruteForce:
    def test_simple_triangle(self, backend):
        positions = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        i_idx, j_idx = backend.pairs(positions, radius=2.0)
        assert _pairs_as_set(i_idx, j_idx) == {(0, 1), (1, 0)}

    def test_no_self_pairs(self, backend):
        positions = np.random.default_rng(0).uniform(-3, 3, size=(20, 2))
        i_idx, j_idx = backend.pairs(positions, radius=2.0)
        assert np.all(i_idx != j_idx)

    def test_symmetric_pairs(self, backend):
        positions = np.random.default_rng(1).uniform(-3, 3, size=(15, 2))
        pairs = _pairs_as_set(*backend.pairs(positions, radius=1.5))
        assert all((j, i) in pairs for (i, j) in pairs)

    def test_matches_brute_force(self, backend):
        rng = np.random.default_rng(7)
        positions = rng.uniform(-5, 5, size=(40, 2))
        reference = _pairs_as_set(*BruteForceNeighbors().pairs(positions, radius=2.2))
        result = _pairs_as_set(*backend.pairs(positions, radius=2.2))
        assert result == reference

    def test_infinite_radius_gives_all_pairs(self, backend):
        positions = np.random.default_rng(3).uniform(-2, 2, size=(6, 2))
        pairs = _pairs_as_set(*backend.pairs(positions, radius=np.inf))
        assert len(pairs) == 6 * 5

    def test_empty_input(self, backend):
        i_idx, j_idx = backend.pairs(np.zeros((0, 2)), radius=1.0)
        assert i_idx.size == 0 and j_idx.size == 0

    def test_invalid_radius(self, backend):
        with pytest.raises(ValueError):
            backend.pairs(np.zeros((3, 2)), radius=0.0)

    def test_invalid_shape(self, backend):
        with pytest.raises(ValueError):
            backend.pairs(np.zeros((3, 3)), radius=1.0)


def _boundary_offset(radius: float) -> np.ndarray | None:
    """A 2-vector whose squared norm exceeds ``radius**2`` while its rounded
    Euclidean norm equals ``radius`` — the cut-off edge case where squared-
    distance and sqrt-based comparisons disagree."""
    rng = np.random.default_rng(123)
    for _ in range(10_000):
        v = rng.normal(size=2)
        v = v / np.sqrt(v @ v) * radius
        q = v[0] * v[0] + v[1] * v[1]
        if q > radius * radius and np.sqrt(q) <= radius:
            return v
    return None


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
def test_cutoff_boundary_pairs_match_brute_force(backend):
    # Regression: cell/kdtree used to prune on squared distances, dropping
    # pairs whose rounded distance lands exactly on the radius — pairs the
    # dense drift kernel (and brute force) includes.
    radius = 2.0
    offset = _boundary_offset(radius)
    assert offset is not None, "no representable boundary pair found"
    positions = np.array([[0.0, 0.0], offset])
    pairs = _pairs_as_set(*backend.pairs(positions, radius))
    assert pairs == {(0, 1), (1, 0)}


@given(
    st.integers(min_value=2, max_value=30),
    st.floats(min_value=0.3, max_value=4.0),
    st.integers(min_value=0, max_value=1000),
)
def test_cell_list_matches_brute_force_property(n, radius, seed):
    positions = np.random.default_rng(seed).uniform(-4, 4, size=(n, 2))
    brute = _pairs_as_set(*BruteForceNeighbors().pairs(positions, radius))
    cell = _pairs_as_set(*CellListNeighbors().pairs(positions, radius))
    assert cell == brute


class TestNeighborLists:
    def test_lists_match_pairs(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [5.0, 5.0]])
        lists = BruteForceNeighbors().neighbor_lists(positions, radius=1.5)
        assert lists[0].tolist() == [1, 2]
        assert lists[3].tolist() == []

    def test_all_backends_identical_and_sorted_on_seeded_cloud(self):
        # Regression for the vectorised argsort/split implementation: every
        # backend must produce the same per-particle lists, each sorted
        # ascending, with one (possibly empty) integer array per particle.
        positions = np.random.default_rng(42).uniform(-6, 6, size=(60, 2))
        reference = BruteForceNeighbors().neighbor_lists(positions, radius=2.0)
        assert len(reference) == 60
        for backend in BACKENDS:
            lists = backend.neighbor_lists(positions, radius=2.0)
            assert len(lists) == len(reference)
            for mine, ref in zip(lists, reference):
                assert np.issubdtype(mine.dtype, np.integer)
                assert np.all(np.diff(mine) > 0)  # strictly ascending, no duplicates
                np.testing.assert_array_equal(mine, ref)

    def test_isolated_particles_get_empty_arrays(self):
        positions = np.array([[0.0, 0.0], [100.0, 0.0]])
        lists = BruteForceNeighbors().neighbor_lists(positions, radius=1.0)
        assert [lst.size for lst in lists] == [0, 0]

    def test_empty_input(self):
        assert BruteForceNeighbors().neighbor_lists(np.zeros((0, 2)), radius=1.0) == []


class TestPairsBatch:
    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
    def test_matches_per_sample_pairs(self, backend):
        rng = np.random.default_rng(5)
        batch = rng.uniform(-4, 4, size=(3, 20, 2))
        i_idx, j_idx = backend.pairs_batch(batch, radius=2.0)
        expected = set()
        for sample in range(3):
            si, sj = backend.pairs(batch[sample], radius=2.0)
            expected |= {(sample * 20 + a, sample * 20 + b) for a, b in zip(si, sj)}
        assert _pairs_as_set(i_idx, j_idx) == expected

    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
    def test_lexicographic_order(self, backend):
        rng = np.random.default_rng(6)
        batch = rng.uniform(-4, 4, size=(2, 15, 2))
        i_idx, j_idx = backend.pairs_batch(batch, radius=2.5)
        keys = list(zip(i_idx.tolist(), j_idx.tolist()))
        assert keys == sorted(keys)

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            BruteForceNeighbors().pairs_batch(np.zeros((4, 2)), radius=1.0)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_neighbor_search("cell"), CellListNeighbors)
        assert isinstance(get_neighbor_search("kdtree"), KDTreeNeighbors)

    def test_instance_passthrough(self):
        backend = CellListNeighbors()
        assert get_neighbor_search(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_neighbor_search("octree")

    def test_registry_complete(self):
        assert set(NEIGHBOR_BACKENDS) == {"brute", "cell", "kdtree"}


class TestGridIdOverflowFallback:
    """The int64-overflow escape hatch of the vectorised spatial hash.

    A bounding box astronomically wider than the cell size makes the padded
    id space overflow int64; ``_grid_ids`` then returns ``None`` and the
    cell list falls back to the kdtree (single snapshot) or the per-sample
    loop (batched query).  These paths were previously unexercised.
    """

    def _overflow_cloud(self) -> np.ndarray:
        # Two interacting points amid far-flung loners: the extent/radius
        # ratio is ~1e13 per axis, so the padded id space would need ~1e26
        # cells — far past int64.
        return np.array(
            [
                [0.0, 0.0],
                [1e-3, 0.0],
                [1e10, 1e10],
                [-1e10, 3e9],
            ]
        )

    def test_grid_ids_returns_none_on_overflow(self):
        from repro.particles.neighbors import _grid_ids

        positions = self._overflow_cloud()
        assert _grid_ids(positions, radius=2e-3) is None
        # A benign cloud still hashes.
        assert _grid_ids(np.zeros((3, 2)), radius=1.0) is not None

    def test_grid_ids_overflow_via_sample_blocks(self):
        from repro.particles.neighbors import _grid_ids

        # Each sample's block is ~(1.5e9)^2 cells; a handful of samples pushes
        # the flattened id space over int64 even though one block fits.
        positions = np.concatenate([np.zeros((2, 2)), np.full((2, 2), 1.5e9)])
        tiled = np.tile(positions, (4, 1))
        sample = np.repeat(np.arange(4, dtype=np.int64), positions.shape[0])
        assert _grid_ids(positions, radius=1.0) is not None
        assert _grid_ids(tiled, radius=1.0, sample=sample) is None

    def test_pairs_falls_back_and_matches_brute(self):
        positions = self._overflow_cloud()
        reference = _pairs_as_set(*BruteForceNeighbors().pairs(positions, radius=2e-3))
        result = _pairs_as_set(*CellListNeighbors().pairs(positions, radius=2e-3))
        assert result == reference == {(0, 1), (1, 0)}

    def test_pairs_batch_falls_back_to_the_per_sample_loop(self):
        rng = np.random.default_rng(8)
        base = self._overflow_cloud()
        batch = np.stack([base + rng.normal(scale=1e-4, size=base.shape) for _ in range(3)])
        i_idx, j_idx = CellListNeighbors().pairs_batch(batch, radius=2e-3)
        expected = set()
        for s in range(3):
            si, sj = BruteForceNeighbors().pairs(batch[s], radius=2e-3)
            expected |= {(s * 4 + a, s * 4 + b) for a, b in zip(si.tolist(), sj.tolist())}
        assert _pairs_as_set(i_idx, j_idx) == expected
        assert len(expected) == 3 * 2

    def test_batch_fallback_preserves_lexicographic_order(self):
        batch = np.stack([self._overflow_cloud()] * 2)
        i_idx, j_idx = CellListNeighbors().pairs_batch(batch, radius=2e-3)
        keys = list(zip(i_idx.tolist(), j_idx.tolist()))
        assert keys == sorted(keys)


class TestPairDtypes:
    @pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
    def test_pairs_are_int64(self, backend):
        rng = np.random.default_rng(11)
        positions = rng.uniform(-3, 3, size=(12, 2))
        for radius in (1.5, np.inf):
            i_idx, j_idx = backend.pairs(positions, radius)
            assert i_idx.dtype == np.int64 and j_idx.dtype == np.int64, radius
        i_idx, j_idx = backend.pairs_batch(positions[None], 1.5)
        assert i_idx.dtype == np.int64 and j_idx.dtype == np.int64
