"""Tests for repro.alignment.symmetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.procrustes import RigidTransform
from repro.alignment.symmetry import (
    align_snapshot,
    center_configurations,
    reduce_ensemble,
    select_reference,
)
from repro.particles.trajectory import EnsembleTrajectory


def _snapshot_from_shape(rng, n_samples=6, n_per_type=6, n_types=2, jitter=0.0):
    """Build an ensemble snapshot whose samples are random isometries +
    same-type permutations of one base shape (plus optional jitter)."""
    types = np.repeat(np.arange(n_types), n_per_type)
    base = rng.uniform(-3, 3, size=(types.size, 2))
    samples = np.empty((n_samples, types.size, 2))
    for m in range(n_samples):
        perm = np.arange(types.size)
        for t in range(n_types):
            idx = np.nonzero(types == t)[0]
            perm[idx] = rng.permutation(idx)
        transform = RigidTransform.from_angle(
            rng.uniform(-np.pi, np.pi), rng.uniform(-5, 5, size=2)
        )
        samples[m] = transform.apply(base[perm]) + jitter * rng.standard_normal((types.size, 2))
    return samples, types, base


class TestCenterConfigurations:
    def test_single_configuration(self, rng):
        positions = rng.uniform(-3, 3, size=(10, 2))
        centered = center_configurations(positions)
        np.testing.assert_allclose(centered.mean(axis=0), 0.0, atol=1e-12)

    def test_batch(self, rng):
        batch = rng.uniform(-3, 3, size=(4, 10, 2))
        centered = center_configurations(batch)
        np.testing.assert_allclose(centered.mean(axis=1), 0.0, atol=1e-12)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            center_configurations(np.zeros((5, 3)))


class TestSelectReference:
    def test_first_strategy(self, rng):
        snapshot, _types, _base = _snapshot_from_shape(rng)
        assert select_reference(snapshot, "first") == 0

    def test_medoid_in_range(self, rng):
        snapshot, _types, _base = _snapshot_from_shape(rng)
        idx = select_reference(snapshot, "medoid")
        assert 0 <= idx < snapshot.shape[0]

    def test_medoid_picks_typical_sample(self, rng):
        snapshot, _types, _base = _snapshot_from_shape(rng, n_samples=5, jitter=0.0)
        # Make sample 3 a gross outlier (blown up by a large scale factor).
        snapshot[3] *= 25.0
        assert select_reference(snapshot, "medoid") != 3

    def test_unknown_strategy(self, rng):
        snapshot, _types, _base = _snapshot_from_shape(rng)
        with pytest.raises(ValueError):
            select_reference(snapshot, "random")


class TestAlignSnapshot:
    def test_identical_shapes_collapse_after_reduction(self, rng):
        # All samples are isometries + permutations of one shape, so after the
        # symmetry reduction every sample must coincide with the reference.
        snapshot, types, _base = _snapshot_from_shape(rng, jitter=0.0)
        result = align_snapshot(snapshot, types)
        reference = result.reduced[0]
        for m in range(snapshot.shape[0]):
            np.testing.assert_allclose(result.reduced[m], result.reduced[0], atol=1e-4)
        assert np.all(result.rmse < 1e-4)
        assert reference.shape == (types.size, 2)

    def test_reduced_samples_are_centered(self, rng):
        snapshot, types, _base = _snapshot_from_shape(rng, jitter=0.05)
        result = align_snapshot(snapshot, types)
        np.testing.assert_allclose(result.reduced.mean(axis=1), 0.0, atol=1e-6)

    def test_type_layout_preserved(self, rng):
        # After permutation reduction, slot i must still hold a particle of
        # type types[i]: the per-slot positions of different samples must be
        # closer to same-type positions of the reference than implied by a
        # cross-type mix-up.  We verify indirectly: reduction of a pure-shape
        # ensemble reproduces the reference slots exactly (tested above), and
        # the permutation applied per sample is type-preserving by construction.
        snapshot, types, _base = _snapshot_from_shape(rng, jitter=0.0, n_types=3, n_per_type=4)
        result = align_snapshot(snapshot, types)
        assert result.reduced.shape == snapshot.shape

    def test_explicit_reference_index(self, rng):
        snapshot, types, _base = _snapshot_from_shape(rng)
        result = align_snapshot(snapshot, types, reference=2)
        assert result.reference_index == 2
        assert result.rmse[2] == 0.0

    def test_explicit_reference_configuration(self, rng):
        snapshot, types, base = _snapshot_from_shape(rng, jitter=0.0)
        result = align_snapshot(snapshot, types, reference=base)
        assert result.reference_index == -1
        assert np.all(result.rmse < 1e-4)

    def test_validation(self, rng):
        snapshot, types, _base = _snapshot_from_shape(rng)
        with pytest.raises(ValueError):
            align_snapshot(snapshot[..., :1], types)
        with pytest.raises(ValueError):
            align_snapshot(snapshot, types[:-1])


class TestReduceEnsemble:
    def _ensemble(self, rng, n_steps=4, n_samples=5):
        types = np.array([0, 0, 0, 1, 1, 1])
        positions = rng.uniform(-2, 2, size=(n_steps, n_samples, types.size, 2))
        return EnsembleTrajectory(positions=positions, types=types, dt=0.1)

    def test_shapes(self, rng):
        ensemble = self._ensemble(rng)
        reduced = reduce_ensemble(ensemble)
        assert reduced.positions.shape == ensemble.positions.shape
        assert reduced.n_steps == ensemble.n_steps
        assert reduced.rmse.shape == (ensemble.n_steps, ensemble.n_samples)
        assert reduced.reference_indices.shape == (ensemble.n_steps,)

    def test_step_subset(self, rng):
        ensemble = self._ensemble(rng, n_steps=6)
        reduced = reduce_ensemble(ensemble, steps=[0, 3, 5])
        assert reduced.n_steps == 3

    def test_observer_matrix_shape(self, rng):
        ensemble = self._ensemble(rng)
        reduced = reduce_ensemble(ensemble)
        matrix = reduced.observer_matrix(0)
        assert matrix.shape == (ensemble.n_samples, ensemble.n_particles * 2)
