"""Tests for the HTTP run-store service and client (repro.io.{service,remote}).

A live server on a loopback port backs most tests: the point of the HTTP
backend is byte-identity with the filesystem store, and that is only
checkable end to end.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.core.plan import RunUnit
from repro.io.artifacts import RunStore, RunStoreError
from repro.io.remote import HTTPRunStore, open_store
from repro.io.service import serve_store

from test_core_plan import tiny_spec


@pytest.fixture
def served(tmp_path):
    """A filesystem store, a live server over it, and a connected client."""
    server = serve_store(tmp_path / "store", port=0)
    thread = server.serve_in_background()
    client = HTTPRunStore(server.url, timeout=5.0, retries=2, backoff_seconds=0.01)
    yield server.store, client, server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


@pytest.fixture
def unit() -> RunUnit:
    return RunUnit(tiny_spec())


class TestRoundTrip:
    def test_ping_reports_the_store_marker(self, served):
        _, client, _ = served
        marker = client.ping()
        assert marker["format"] == RunStore.FORMAT["format"]

    def test_save_produces_byte_identical_documents(self, tmp_path, served, unit):
        fs_store, client, _ = served
        result = unit.execute()
        client.save(unit, result)
        reference = RunStore(tmp_path / "reference")
        reference.save(unit, result)
        assert (
            fs_store.path_for(unit).read_bytes()
            == reference.path_for(unit).read_bytes()
        )

    def test_load_round_trips_the_result(self, served, unit):
        _, client, _ = served
        result = unit.execute()
        client.save(unit, result)
        assert client.has(unit) and unit.content_hash in client
        assert client.keys() == [unit.content_hash]
        loaded = client.load(unit)
        np.testing.assert_array_equal(
            loaded.measurement.multi_information, result.measurement.multi_information
        )
        assert loaded.analysis_config == result.analysis_config
        assert loaded.seed == result.seed

    def test_ensemble_round_trips_over_http(self, tmp_path, served, unit):
        fs_store, client, _ = served
        result = unit.execute(keep_ensemble=True)
        client.save(unit, result)
        assert fs_store.ensemble_path_for(unit).is_file()
        loaded = client.load(unit)
        np.testing.assert_array_equal(loaded.ensemble.positions, result.ensemble.positions)
        assert client.load(unit, with_ensemble=False).ensemble is None
        # The archive is byte-identical to a locally written one too.
        reference = RunStore(tmp_path / "reference")
        reference.save(unit, result)
        assert (
            fs_store.path_for(unit).read_bytes()
            == reference.path_for(unit).read_bytes()
        )

    def test_missing_unit_raises_the_store_error(self, served, unit):
        _, client, _ = served
        assert not client.has(unit)
        with pytest.raises(RunStoreError, match="no persisted result"):
            client.load(unit)


class TestConditionalCommit:
    def test_committed_documents_are_not_rewritten(self, served, unit):
        fs_store, client, _ = served
        client.save(unit, unit.execute())
        before = fs_store.path_for(unit).stat()
        client.save(unit, unit.execute(), overwrite=False)
        after = fs_store.path_for(unit).stat()
        assert (before.st_mtime_ns, before.st_ino) == (after.st_mtime_ns, after.st_ino)

    def test_committed_archives_are_not_reuploaded(self, served, unit):
        fs_store, client, _ = served
        client.save(unit, unit.execute(keep_ensemble=True))
        before = fs_store.ensemble_path_for(unit).stat()
        client.save(unit, unit.execute(keep_ensemble=True), overwrite=False)
        after = fs_store.ensemble_path_for(unit).stat()
        assert (before.st_mtime_ns, before.st_ino) == (after.st_mtime_ns, after.st_ino)

    def test_ensembleless_document_is_upgraded_in_place(self, served, unit):
        _, client, _ = served
        client.save(unit, unit.execute(), overwrite=False)
        assert not client.provides_ensemble(unit)
        client.save(unit, unit.execute(keep_ensemble=True), overwrite=False)
        assert client.provides_ensemble(unit)
        assert client.load(unit).ensemble is not None

    def test_default_save_overwrites(self, served, unit):
        fs_store, client, _ = served
        client.save(unit, unit.execute())
        first = fs_store.path_for(unit).read_bytes()
        client.save(unit, unit.execute())
        assert fs_store.path_for(unit).read_bytes() == first  # deterministic bytes


class TestServerValidation:
    def test_mismatched_document_hash_is_rejected(self, served, unit):
        fs_store, client, _ = served
        fake_hash = "f" * 64
        body = json.dumps({"unit": {"content_hash": unit.content_hash}}).encode()
        with pytest.raises(RunStoreError, match="does not match URL hash"):
            client._request("PUT", f"/units/{fake_hash}.json", body)
        assert not (fs_store.units_dir / f"{fake_hash}.json").exists()

    def test_invalid_json_document_is_rejected(self, served):
        fs_store, client, _ = served
        bad_hash = "e" * 64
        with pytest.raises(RunStoreError, match="not valid JSON"):
            client._request("PUT", f"/units/{bad_hash}.json", b"{ nope")
        assert not (fs_store.units_dir / f"{bad_hash}.json").exists()

    def test_malformed_paths_are_404(self, served):
        _, client, _ = served
        for path in ("/units/deadbeef.json", "/units/../../etc/passwd", "/nope"):
            status, _ = client._request("GET", path, allow=(404,))
            assert status == 404

    def test_truncated_upload_leaves_the_store_untouched(self, served, unit):
        """Fault injection: a PUT whose connection drops mid-body commits nothing."""
        fs_store, client, server = served
        host, port = server.server_address[:2]
        target = f"/units/{unit.content_hash}.json"
        with socket.create_connection((host, port), timeout=5.0) as raw:
            raw.sendall(
                f"PUT {target} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: 500000\r\n"
                "\r\n".encode()
                + b'{"unit": {"content_hash": '  # then hang up mid-body
            )
            raw.shutdown(socket.SHUT_WR)
            raw.settimeout(5.0)
            raw.recv(4096)  # 400, or an empty reply if the server just closed
        assert not fs_store.path_for(unit).exists()
        assert not list(fs_store.units_dir.glob("*.tmp*"))
        # The store still works: a well-formed save commits normally.
        client.save(unit, unit.execute())
        assert client.has(unit)


class TestLeasesOverHTTP:
    HASH = "a" * 64

    def test_acquire_conflict_release_cycle(self, served):
        _, client, _ = served
        assert client.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=30.0)
        assert not client.try_acquire_lease(self.HASH, "worker-2", ttl_seconds=30.0)
        assert client.renew_lease(self.HASH, "worker-1", ttl_seconds=30.0)
        assert not client.renew_lease(self.HASH, "worker-2", ttl_seconds=30.0)
        client.release_lease(self.HASH, "worker-1")
        assert client.try_acquire_lease(self.HASH, "worker-2", ttl_seconds=30.0)

    def test_lease_state_is_shared_with_the_filesystem_backend(self, served):
        fs_store, client, _ = served
        assert client.try_acquire_lease(self.HASH, "remote-worker", ttl_seconds=30.0)
        assert not fs_store.try_acquire_lease(self.HASH, "local-worker", ttl_seconds=30.0)


class TestOrphanMaintenanceOverHTTP:
    def test_report_and_sweep(self, served, unit):
        import os

        fs_store, client, _ = served
        client.save(unit, unit.execute())
        stray = fs_store.ensemble_path_for(unit)
        stray.write_bytes(b"orphaned archive")
        assert client.orphaned_files(min_age_seconds=0.0) == [stray.name]
        assert client.orphaned_files() == []  # still inside the grace window
        os.utime(stray, (0, 0))
        assert client.sweep_orphans() == [stray.name]
        assert not stray.exists()


class TestClientRobustness:
    def test_dead_port_raises_after_bounded_retries(self, tmp_path):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        client = HTTPRunStore(
            f"http://127.0.0.1:{dead_port}", timeout=0.5, retries=2, backoff_seconds=0.01
        )
        with pytest.raises(RunStoreError, match="unreachable"):
            client.ping()

    def test_non_store_service_fails_the_ping(self, served):
        _, client, server = served
        impostor = HTTPRunStore(server.url + "/units", timeout=5.0, retries=1)
        with pytest.raises(RunStoreError):
            impostor.ping()

    def test_corrupt_remote_document_raises(self, served, unit):
        fs_store, client, _ = served
        client.save(unit, unit.execute())
        fs_store.path_for(unit).write_text("{ not json")
        with pytest.raises(RunStoreError, match="corrupt run-store document"):
            client.load(unit)

    def test_corrupt_remote_archive_raises(self, served, unit):
        fs_store, client, _ = served
        client.save(unit, unit.execute(keep_ensemble=True))
        fs_store.ensemble_path_for(unit).write_bytes(b"PK\x03\x04 truncated")
        with pytest.raises(RunStoreError, match="corrupt run-store ensemble"):
            client.load(unit)


class TestOpenStore:
    def test_path_spec_opens_a_filesystem_store(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert isinstance(store, RunStore)

    def test_url_spec_opens_an_http_store(self, served):
        _, _, server = served
        store = open_store(server.url)
        assert isinstance(store, HTTPRunStore)

    def test_unreachable_url_raises_immediately(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        with pytest.raises(RunStoreError, match="unreachable"):
            open_store(f"http://127.0.0.1:{dead_port}")

    def test_create_false_still_guards_filesystem_paths(self, tmp_path):
        with pytest.raises(RunStoreError, match="does not exist"):
            open_store(tmp_path / "nope", create=False)
