"""Tests for repro.particles.model (SimulationConfig and ParticleSystem)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.particles.model import ParticleSystem, SimulationConfig
from repro.particles.types import InteractionParams


@pytest.fixture
def config(two_type_params) -> SimulationConfig:
    return SimulationConfig(
        type_counts=(4, 4),
        params=two_type_params,
        force="F1",
        cutoff=None,
        dt=0.02,
        n_steps=10,
        init_radius=2.0,
    )


class TestSimulationConfig:
    def test_derived_properties(self, config):
        assert config.n_particles == 8
        assert config.n_types == 2
        np.testing.assert_array_equal(config.types, [0, 0, 0, 0, 1, 1, 1, 1])
        assert config.disc_radius == 2.0
        assert config.effective_cutoff == np.inf

    def test_default_disc_radius_from_density(self, two_type_params):
        config = SimulationConfig(type_counts=(10, 10), params=two_type_params)
        assert np.isclose(np.pi * config.disc_radius**2, 20.0)

    def test_type_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(type_counts=(5,), params=InteractionParams.clustering(2))

    def test_invalid_values_rejected(self, two_type_params):
        with pytest.raises(ValueError):
            SimulationConfig(type_counts=(2, 2), params=two_type_params, dt=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(type_counts=(2, 2), params=two_type_params, substeps=0)
        with pytest.raises(ValueError):
            SimulationConfig(type_counts=(2, 2), params=two_type_params, cutoff=-1.0)
        with pytest.raises(ValueError):
            SimulationConfig(type_counts=(2, 2), params=two_type_params, noise_variance=-0.1)
        with pytest.raises(ValueError):
            SimulationConfig(type_counts=(0, 0), params=two_type_params)

    def test_unknown_force_rejected_eagerly(self, two_type_params):
        with pytest.raises(KeyError):
            SimulationConfig(type_counts=(2, 2), params=two_type_params, force="F9")

    def test_with_updates(self, config):
        updated = config.with_updates(n_steps=99)
        assert updated.n_steps == 99
        assert config.n_steps == 10

    def test_dict_roundtrip(self, config):
        restored = SimulationConfig.from_dict(config.to_dict())
        assert restored.type_counts == config.type_counts
        assert restored.force == config.force
        assert restored.dt == config.dt
        np.testing.assert_allclose(restored.params.r, config.params.r)


class TestParticleSystem:
    def test_initial_positions_inside_disc(self, config):
        system = ParticleSystem(config, rng=0)
        radii = np.linalg.norm(system.positions, axis=1)
        assert radii.max() <= config.disc_radius + 1e-12

    def test_explicit_initial_positions(self, config):
        initial = np.zeros((8, 2))
        system = ParticleSystem(config, rng=0, initial_positions=initial)
        np.testing.assert_array_equal(system.positions, initial)
        assert system.positions is not initial  # defensive copy

    def test_initial_positions_shape_checked(self, config):
        with pytest.raises(ValueError):
            ParticleSystem(config, initial_positions=np.zeros((3, 2)))

    def test_step_advances_counter_and_positions(self, config):
        system = ParticleSystem(config, rng=1)
        before = system.positions.copy()
        system.step()
        assert system.step_count == 1
        assert not np.allclose(system.positions, before)

    def test_run_records_trajectory(self, config):
        system = ParticleSystem(config, rng=2)
        trajectory = system.run(5)
        assert trajectory.n_steps == 6  # initial frame + 5 steps
        assert trajectory.n_particles == 8
        assert trajectory.dt == pytest.approx(config.dt * config.substeps)

    def test_run_without_recording(self, config):
        trajectory = ParticleSystem(config, rng=3).run(4, record=False)
        assert trajectory.n_steps == 1

    def test_reproducibility(self, config):
        a = ParticleSystem(config, rng=7).run(5).positions
        b = ParticleSystem(config, rng=7).run(5).positions
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, config):
        a = ParticleSystem(config, rng=1).run(5).positions
        b = ParticleSystem(config, rng=2).run(5).positions
        assert not np.allclose(a, b)

    def test_two_particles_reach_preferred_distance(self):
        params = InteractionParams.single_type(k=2.0, r=1.5)
        config = SimulationConfig(
            type_counts=(2,),
            params=params,
            force="F1",
            dt=0.05,
            n_steps=300,
            noise_variance=0.0,
            init_radius=0.5,
        )
        system = ParticleSystem(config, rng=4)
        trajectory = system.run()
        final_distance = np.linalg.norm(trajectory.final()[0] - trajectory.final()[1])
        assert np.isclose(final_distance, 1.5, atol=0.05)

    def test_equilibrium_detected_for_noiseless_pair(self):
        params = InteractionParams.single_type(k=2.0, r=1.0)
        config = SimulationConfig(
            type_counts=(2,),
            params=params,
            force="F1",
            dt=0.05,
            n_steps=400,
            noise_variance=0.0,
            init_radius=0.5,
            equilibrium_threshold=1e-3,
            equilibrium_patience=3,
        )
        system = ParticleSystem(config, rng=5)
        trajectory = system.run(stop_at_equilibrium=True)
        assert system.at_equilibrium
        assert trajectory.n_steps < 401

    def test_sparse_backend_matches_dense(self, two_type_params):
        base = dict(
            type_counts=(5, 5),
            params=two_type_params,
            force="F1",
            cutoff=2.0,
            dt=0.02,
            n_steps=5,
            noise_variance=0.0,
            init_radius=2.0,
        )
        dense_cfg = SimulationConfig(**base, engine="dense")
        sparse_cfg = SimulationConfig(**base, engine="sparse", neighbor_backend="cell")
        initial = ParticleSystem(dense_cfg, rng=0).positions
        dense = ParticleSystem(dense_cfg, rng=0, initial_positions=initial).run().positions
        sparse = ParticleSystem(sparse_cfg, rng=0, initial_positions=initial).run().positions
        np.testing.assert_allclose(dense, sparse, atol=1e-10)

    def test_max_drift_norm_clips(self, two_type_params):
        config = SimulationConfig(
            type_counts=(5, 5),
            params=two_type_params,
            force="F1",
            max_drift_norm=0.1,
            init_radius=1.0,
        )
        system = ParticleSystem(config, rng=0)
        norms = np.linalg.norm(system.drift(), axis=1)
        assert norms.max() <= 0.1 + 1e-9

    def test_force_history_grows_with_steps(self, config):
        system = ParticleSystem(config, rng=0)
        system.run(4)
        assert system.force_history.shape == (4,)
