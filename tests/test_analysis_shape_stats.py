"""Tests for repro.analysis.shape_stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.shape_stats import (
    detect_concentric_rings,
    nearest_neighbor_distances,
    pair_correlation,
    per_particle_dispersion,
    radial_profile,
    radius_of_gyration,
    type_radial_ordering,
    type_segregation_index,
)


def _ring(n: int, radius: float, center=(0.0, 0.0)) -> np.ndarray:
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return np.column_stack([radius * np.cos(angles), radius * np.sin(angles)]) + np.asarray(center)


class TestRadiusOfGyration:
    def test_ring_equals_radius(self):
        assert radius_of_gyration(_ring(20, 3.0)) == pytest.approx(3.0)

    def test_translation_invariant(self):
        assert radius_of_gyration(_ring(20, 3.0, center=(10, -4))) == pytest.approx(3.0)

    def test_batch_shape(self, rng):
        batch = rng.normal(size=(5, 10, 2))
        assert radius_of_gyration(batch).shape == (5,)


class TestNearestNeighborDistances:
    def test_pair(self):
        positions = np.array([[0.0, 0.0], [2.0, 0.0]])
        np.testing.assert_allclose(nearest_neighbor_distances(positions), [2.0, 2.0])

    def test_requires_two_particles(self):
        with pytest.raises(ValueError):
            nearest_neighbor_distances(np.zeros((1, 2)))


class TestPairCorrelation:
    def test_lattice_has_peak_at_spacing(self):
        from repro.particles.init_conditions import grid_layout

        positions = grid_layout(49, spacing=2.0)
        centers, g = pair_correlation(positions, n_bins=40, r_max=5.0)
        peak_location = centers[np.argmax(g)]
        assert abs(peak_location - 2.0) < 0.3

    def test_output_shapes(self, rng):
        positions = rng.uniform(-3, 3, size=(30, 2))
        centers, g = pair_correlation(positions, n_bins=10)
        assert centers.shape == g.shape == (10,)
        assert np.all(g >= 0)


class TestRings:
    def test_radial_profile_sorted(self, rng):
        profile = radial_profile(rng.normal(size=(30, 2)))
        assert np.all(np.diff(profile) >= 0)

    def test_detects_two_concentric_rings(self):
        positions = np.concatenate([_ring(8, 1.0), _ring(12, 4.0)], axis=0)
        report = detect_concentric_rings(positions)
        assert report.n_rings == 2
        assert report.ring_sizes == (8, 12)
        np.testing.assert_allclose(report.ring_radii, (1.0, 4.0), atol=1e-6)
        assert report.separation_score > 5.0

    def test_single_ring(self):
        report = detect_concentric_rings(_ring(15, 2.0))
        assert report.n_rings == 1

    def test_tiny_input(self):
        report = detect_concentric_rings(np.zeros((3, 2)))
        assert report.n_rings == 1


class TestTypeStatistics:
    def test_radial_ordering_detects_layers(self):
        inner = _ring(10, 1.0)
        outer = _ring(10, 5.0)
        positions = np.concatenate([inner, outer])
        types = np.array([0] * 10 + [1] * 10)
        ordering = type_radial_ordering(positions, types)
        assert ordering[0] < ordering[1]

    def test_segregation_index_sorted_vs_mixed(self, rng):
        left = rng.normal(loc=(-5, 0), scale=0.3, size=(10, 2))
        right = rng.normal(loc=(5, 0), scale=0.3, size=(10, 2))
        sorted_positions = np.concatenate([left, right])
        types = np.array([0] * 10 + [1] * 10)
        sorted_index = type_segregation_index(sorted_positions, types)
        mixed_positions = rng.normal(size=(20, 2))
        mixed_index = type_segregation_index(mixed_positions, types)
        assert sorted_index > 0.95
        assert mixed_index < 0.8

    def test_segregation_index_needs_enough_particles(self):
        with pytest.raises(ValueError):
            type_segregation_index(np.zeros((3, 2)), np.zeros(3, dtype=int), k=3)


class TestPerParticleDispersion:
    def test_zero_for_identical_samples(self):
        snapshot = np.tile(_ring(10, 2.0), (5, 1, 1))
        np.testing.assert_allclose(per_particle_dispersion(snapshot), 0.0, atol=1e-12)

    def test_detects_loose_slots(self, rng):
        base = _ring(10, 2.0)
        snapshot = np.tile(base, (20, 1, 1))
        snapshot[:, 0, :] += rng.normal(scale=1.0, size=(20, 2))
        dispersion = per_particle_dispersion(snapshot)
        assert dispersion[0] > 5 * dispersion[1:].max()

    def test_validation(self):
        with pytest.raises(ValueError):
            per_particle_dispersion(np.zeros((5, 3)))
