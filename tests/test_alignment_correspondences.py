"""Tests for repro.alignment.correspondences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.correspondences import (
    assignment_correspondence,
    correspondence_distances,
    is_type_preserving_permutation,
    nearest_neighbor_correspondence,
)


def _shuffled_within_types(rng, n_per_type=6, n_types=2):
    types = np.repeat(np.arange(n_types), n_per_type)
    target = rng.uniform(-5, 5, size=(types.size, 2))
    perm = np.arange(types.size)
    for t in range(n_types):
        idx = np.nonzero(types == t)[0]
        perm[idx] = rng.permutation(idx)
    source = target[perm]
    return source, target, types, perm


class TestNearestNeighborCorrespondence:
    def test_recovers_exact_permutation(self, rng):
        source, target, types, perm = _shuffled_within_types(rng)
        corr = nearest_neighbor_correspondence(source, target, types)
        np.testing.assert_array_equal(corr, perm)

    def test_respects_types_even_when_other_type_is_closer(self):
        types = np.array([0, 1])
        source = np.array([[0.0, 0.0], [10.0, 0.0]])
        # The nearest target point to source[0] is of type 1, but matching
        # must stay within type 0.
        target = np.array([[5.0, 0.0], [0.1, 0.0]])
        corr = nearest_neighbor_correspondence(source, target, types)
        np.testing.assert_array_equal(corr, [0, 1])

    def test_can_be_many_to_one(self):
        types = np.zeros(3, dtype=int)
        source = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 0.0]])
        target = np.array([[0.0, 0.0], [6.0, 0.0], [20.0, 0.0]])
        corr = nearest_neighbor_correspondence(source, target, types)
        assert corr[0] == corr[1] == 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            nearest_neighbor_correspondence(np.zeros((3, 2)), np.zeros((4, 2)), np.zeros(3, dtype=int))


class TestAssignmentCorrespondence:
    def test_is_type_preserving_permutation(self, rng):
        source, target, types, _perm = _shuffled_within_types(rng, n_per_type=5, n_types=3)
        corr = assignment_correspondence(source, target, types)
        assert is_type_preserving_permutation(corr, types)

    def test_recovers_exact_permutation(self, rng):
        source, target, types, perm = _shuffled_within_types(rng)
        corr = assignment_correspondence(source, target, types)
        np.testing.assert_array_equal(corr, perm)

    def test_one_to_one_even_with_crowding(self):
        types = np.zeros(3, dtype=int)
        source = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
        target = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        corr = assignment_correspondence(source, target, types)
        assert sorted(corr.tolist()) == [0, 1, 2]

    def test_minimises_total_cost(self):
        types = np.zeros(2, dtype=int)
        source = np.array([[0.0, 0.0], [1.0, 0.0]])
        target = np.array([[0.9, 0.0], [0.1, 0.0]])
        corr = assignment_correspondence(source, target, types)
        np.testing.assert_array_equal(corr, [1, 0])


class TestIsTypePreservingPermutation:
    def test_identity_is_valid(self):
        types = np.array([0, 0, 1])
        assert is_type_preserving_permutation(np.array([0, 1, 2]), types)

    def test_cross_type_swap_invalid(self):
        types = np.array([0, 1])
        assert not is_type_preserving_permutation(np.array([1, 0]), types)

    def test_non_permutation_invalid(self):
        types = np.array([0, 0])
        assert not is_type_preserving_permutation(np.array([0, 0]), types)

    def test_shape_mismatch_invalid(self):
        assert not is_type_preserving_permutation(np.array([0, 1, 2]), np.array([0, 1]))


class TestCorrespondenceDistances:
    def test_known_values(self):
        source = np.array([[0.0, 0.0], [1.0, 1.0]])
        target = np.array([[3.0, 4.0], [1.0, 1.0]])
        dists = correspondence_distances(source, target, np.array([1, 0]))
        np.testing.assert_allclose(dists, [np.sqrt(2.0), np.sqrt(13.0)])
