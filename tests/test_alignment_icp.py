"""Tests for repro.alignment.icp."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.correspondences import is_type_preserving_permutation
from repro.alignment.icp import TypeAwareICP, lift_with_types
from repro.alignment.procrustes import RigidTransform


def _configuration(rng, n_per_type=8, n_types=2):
    types = np.repeat(np.arange(n_types), n_per_type)
    positions = rng.uniform(-4, 4, size=(types.size, 2))
    return positions, types


class TestLiftWithTypes:
    def test_shape_and_scaling(self):
        positions = np.array([[1.0, 2.0], [3.0, 4.0]])
        types = np.array([0, 2])
        lifted = lift_with_types(positions, types, type_scale=100.0)
        assert lifted.shape == (2, 3)
        np.testing.assert_allclose(lifted[:, 2], [0.0, 200.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            lift_with_types(np.zeros((2, 3)), np.zeros(2), 1.0)
        with pytest.raises(ValueError):
            lift_with_types(np.zeros((2, 2)), np.zeros(3), 1.0)


class TestTypeAwareICP:
    def test_recovers_rotation_translation(self, rng):
        target, types = _configuration(rng)
        true = RigidTransform.from_angle(0.4, (1.0, -2.0))
        source = true.inverse().apply(target)
        result = TypeAwareICP().align(source, target, types)
        np.testing.assert_allclose(result.aligned, target, atol=1e-5)
        assert result.rmse < 1e-5
        assert result.converged

    def test_recovers_rotation_translation_and_permutation(self, rng):
        target, types = _configuration(rng)
        true = RigidTransform.from_angle(-0.6, (0.5, 0.7))
        perm = np.arange(types.size)
        for t in np.unique(types):
            idx = np.nonzero(types == t)[0]
            perm[idx] = rng.permutation(idx)
        source = true.inverse().apply(target[perm])
        result = TypeAwareICP().align(source, target, types)
        assert is_type_preserving_permutation(result.correspondence, types)
        # Reordering the aligned source by the correspondence must reproduce the target.
        reordered = np.empty_like(result.aligned)
        reordered[result.correspondence] = result.aligned
        np.testing.assert_allclose(reordered, target, atol=1e-4)

    def test_moderate_noise_still_aligns(self, rng):
        target, types = _configuration(rng)
        true = RigidTransform.from_angle(0.9, (2.0, 0.0))
        source = true.inverse().apply(target) + 0.01 * rng.standard_normal(target.shape)
        result = TypeAwareICP().align(source, target, types)
        assert result.rmse < 0.05

    def test_correspondence_is_permutation_by_default(self, rng):
        source, types = _configuration(rng)
        target, _ = _configuration(rng)
        result = TypeAwareICP().align(source, target, types)
        assert is_type_preserving_permutation(result.correspondence, types)

    def test_identity_when_already_aligned(self, rng):
        target, types = _configuration(rng)
        result = TypeAwareICP().align(target.copy(), target, types)
        assert abs(result.transform.angle) < 1e-6
        np.testing.assert_allclose(result.transform.translation, 0.0, atol=1e-8)

    def test_initial_transform_respected(self, rng):
        target, types = _configuration(rng)
        true = RigidTransform.from_angle(2.5, (0.0, 0.0))  # large rotation
        source = true.inverse().apply(target)
        good_start = TypeAwareICP(max_iterations=60).align(
            source, target, types, initial_transform=true
        )
        assert good_start.rmse < 1e-6

    def test_assignment_every_step_variant(self, rng):
        target, types = _configuration(rng, n_per_type=5)
        true = RigidTransform.from_angle(0.3, (0.2, 0.1))
        source = true.inverse().apply(target)
        result = TypeAwareICP(assignment_every_step=True).align(source, target, types)
        assert result.rmse < 1e-5

    def test_shape_validation(self):
        icp = TypeAwareICP()
        with pytest.raises(ValueError):
            icp.align(np.zeros((3, 2)), np.zeros((4, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            icp.align(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TypeAwareICP(max_iterations=0)
        with pytest.raises(ValueError):
            TypeAwareICP(tolerance=-1.0)
