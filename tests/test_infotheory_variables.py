"""Tests for repro.infotheory.variables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.variables import as_variable_list, stack_variables, variable_dimensions


class TestAsVariableList:
    def test_list_of_matrices(self):
        variables = [np.zeros((10, 2)), np.zeros((10, 3))]
        out = as_variable_list(variables)
        assert len(out) == 2
        assert out[0].shape == (10, 2)
        assert out[1].shape == (10, 3)

    def test_2d_array_is_split_by_columns(self):
        arr = np.arange(20, dtype=float).reshape(10, 2)
        out = as_variable_list(arr)
        assert len(out) == 2
        assert all(v.shape == (10, 1) for v in out)
        np.testing.assert_array_equal(out[1][:, 0], arr[:, 1])

    def test_3d_array_is_split_by_middle_axis(self):
        arr = np.zeros((8, 5, 2))
        out = as_variable_list(arr)
        assert len(out) == 5
        assert all(v.shape == (8, 2) for v in out)

    def test_requires_two_variables(self):
        with pytest.raises(ValueError):
            as_variable_list([np.zeros((10, 2))])

    def test_requires_matching_sample_counts(self):
        with pytest.raises(ValueError):
            as_variable_list([np.zeros((10, 2)), np.zeros((9, 2))])

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            as_variable_list([np.zeros((1, 2)), np.zeros((1, 2))])

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            as_variable_list(np.zeros((2, 2, 2, 2)))


class TestStackAndDimensions:
    def test_stack(self):
        var_list = [np.ones((4, 2)), 2 * np.ones((4, 3))]
        stacked = stack_variables(var_list)
        assert stacked.shape == (4, 5)
        np.testing.assert_array_equal(stacked[:, 2:], 2.0)

    def test_dimensions(self):
        var_list = [np.ones((4, 2)), np.ones((4, 3))]
        assert variable_dimensions(var_list) == [2, 3]
