"""Tests for repro.infotheory.transfer (conditional MI and transfer entropy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.transfer import (
    conditional_mutual_information,
    embed_history,
    time_lagged_mutual_information,
    transfer_entropy,
)


def _gaussian_cmi_testbed(m: int, seed: int = 0):
    """A → C → B chain: I(A;B|C) = 0 but I(A;B) > 0."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, 1))
    c = a + 0.5 * rng.standard_normal((m, 1))
    b = c + 0.5 * rng.standard_normal((m, 1))
    return a, b, c


class TestConditionalMutualInformation:
    def test_chain_has_zero_conditional_mi(self):
        a, b, c = _gaussian_cmi_testbed(1500)
        value = conditional_mutual_information(a, b, c, k=5)
        assert abs(value) < 0.1

    def test_conditioning_on_irrelevant_variable_keeps_mi(self):
        rng = np.random.default_rng(1)
        m = 1500
        a = rng.standard_normal((m, 1))
        b = a + 0.5 * rng.standard_normal((m, 1))
        irrelevant = rng.standard_normal((m, 1))
        unconditional = -0.5 * np.log2(1 - (1 / np.sqrt(1.25)) ** 2)
        value = conditional_mutual_information(a, b, irrelevant, k=5)
        assert value == pytest.approx(unconditional, abs=0.2)

    def test_synergy_detected(self):
        # XOR-like continuous synergy: B = A + C, so conditioning on C reveals A.
        rng = np.random.default_rng(2)
        m = 1500
        a = rng.standard_normal((m, 1))
        c = rng.standard_normal((m, 1))
        b = a + c
        low = conditional_mutual_information(a, b, rng.standard_normal((m, 1)), k=5)
        high = conditional_mutual_information(a, b, c, k=5)
        assert high > low + 1.0

    def test_accepts_1d_inputs(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal(300)
        b = a + rng.standard_normal(300)
        c = rng.standard_normal(300)
        assert np.isfinite(conditional_mutual_information(a, b, c, k=4))

    def test_validation(self):
        with pytest.raises(ValueError):
            conditional_mutual_information(np.zeros((10, 1)), np.zeros((9, 1)), np.zeros((10, 1)))
        with pytest.raises(ValueError):
            conditional_mutual_information(np.zeros((10, 1)), np.zeros((10, 1)), np.zeros((10, 1)), k=10)


class TestEmbedHistory:
    def test_shapes(self):
        series = np.arange(2 * 6 * 1, dtype=float).reshape(2, 6, 1)
        future, past, aligned = embed_history(series, history=2)
        assert future.shape == (2, 4, 1)
        assert past.shape == (2, 4, 2)
        assert aligned.shape == (2, 4, 1)

    def test_alignment_semantics(self):
        # One realization, scalar series 0..5; history=1: future[t] = series[t+1],
        # past[t] = series[t], aligned[t] = series[t].
        series = np.arange(6, dtype=float).reshape(1, 6, 1)
        future, past, aligned = embed_history(series, history=1)
        np.testing.assert_array_equal(future[0, :, 0], [1, 2, 3, 4, 5])
        np.testing.assert_array_equal(past[0, :, 0], [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(aligned[0, :, 0], [0, 1, 2, 3, 4])

    def test_validation(self):
        with pytest.raises(ValueError):
            embed_history(np.zeros((2, 3)), 1)
        with pytest.raises(ValueError):
            embed_history(np.zeros((2, 3, 1)), 0)
        with pytest.raises(ValueError):
            embed_history(np.zeros((2, 3, 1)), 3)


def _coupled_processes(m_realizations: int, n_steps: int, coupling: float, seed: int = 0):
    """X drives Y: y_{t+1} = 0.5 y_t + coupling * x_t + noise; x is AR(1)."""
    rng = np.random.default_rng(seed)
    x = np.zeros((m_realizations, n_steps, 1))
    y = np.zeros((m_realizations, n_steps, 1))
    for t in range(1, n_steps):
        x[:, t] = 0.5 * x[:, t - 1] + rng.standard_normal((m_realizations, 1))
        y[:, t] = 0.5 * y[:, t - 1] + coupling * x[:, t - 1] + rng.standard_normal((m_realizations, 1))
    return x, y


class TestTransferEntropy:
    def test_detects_direction_of_coupling(self):
        x, y = _coupled_processes(60, 30, coupling=1.0)
        forward = transfer_entropy(x, y, history=1, k=4)
        backward = transfer_entropy(y, x, history=1, k=4)
        assert forward > backward + 0.1
        assert forward > 0.15

    def test_uncoupled_processes_have_low_transfer(self):
        x, y = _coupled_processes(60, 30, coupling=0.0, seed=1)
        value = transfer_entropy(x, y, history=1, k=4)
        assert abs(value) < 0.1

    def test_lagged_mutual_information_tracks_coupling(self):
        x, y = _coupled_processes(60, 30, coupling=1.0, seed=2)
        coupled = time_lagged_mutual_information(x, y, lag=1, k=4)
        x0, y0 = _coupled_processes(60, 30, coupling=0.0, seed=2)
        uncoupled = time_lagged_mutual_information(x0, y0, lag=1, k=4)
        assert coupled > uncoupled + 0.1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            transfer_entropy(np.zeros((3, 5, 1)), np.zeros((3, 6, 1)))
        with pytest.raises(ValueError):
            time_lagged_mutual_information(np.zeros((3, 5, 1)), np.zeros((3, 5, 1)), lag=5)
