"""Tests for the declarative experiment-plan layer (repro.core.plan)."""

from __future__ import annotations

import io
import threading
import time

import numpy as np
import pytest

from repro.core.experiments import (
    ExperimentSpec,
    all_figure_plans,
    all_figure_specs,
    fig9_radius_sweep,
    fig9_radius_sweep_plan,
    figure_plan,
)
from repro.core.plan import (
    ConsoleObserver,
    ExperimentPlan,
    PlanObserver,
    RunUnit,
    chain,
    grid,
    single,
    unit_content_hash,
    zip_,
)
from repro.core.self_organization import AnalysisConfig
from repro.io.artifacts import RunStore
from repro.particles.model import SimulationConfig
from repro.particles.types import InteractionParams


def tiny_spec(name: str = "tiny", seed: int = 1, n_samples: int = 10) -> ExperimentSpec:
    params = InteractionParams.clustering(2, self_distance=1.0, cross_distance=2.0)
    simulation = SimulationConfig(
        type_counts=(4, 4), params=params, force="F1", dt=0.02, n_steps=6, init_radius=2.0
    )
    return ExperimentSpec(
        name=name,
        description="tiny plan test spec",
        simulation=simulation,
        n_samples=n_samples,
        analysis=AnalysisConfig(step_stride=3, k_neighbors=2),
        seed=seed,
    )


@pytest.fixture
def spec() -> ExperimentSpec:
    return tiny_spec()


class TestLowering:
    def test_single_lowers_to_one_unit(self, spec):
        plan = single(spec)
        units = plan.units()
        assert len(units) == 1 and len(plan) == 1
        assert units[0].spec == spec
        assert units[0].name == "tiny"

    def test_chain_concatenates_in_order(self, spec):
        other = tiny_spec(name="other", seed=2)
        plan = chain(single(spec), other)  # bare specs allowed
        assert [u.name for u in plan.units()] == ["tiny", "other"]
        assert [u.name for u in (single(spec) + single(other)).units()] == ["tiny", "other"]

    def test_grid_is_a_cartesian_product(self, spec):
        plan = grid(spec, **{"simulation.cutoff": [None, 3.0], "n_samples": [10, 12]})
        units = plan.units()
        assert len(units) == 4
        combos = {(u.spec.simulation.cutoff, u.spec.n_samples) for u in units}
        assert combos == {(None, 10), (None, 12), (3.0, 10), (3.0, 12)}
        # swept names stay distinct and derived from the base name
        assert len({u.name for u in units}) == 4
        assert all(u.name.startswith("tiny__") for u in units)

    def test_zip_is_positional(self, spec):
        plan = zip_(spec, **{"simulation.cutoff": [2.0, 4.0], "seed": [10, 20]})
        combos = [(u.spec.simulation.cutoff, u.spec.seed) for u in plan.units()]
        assert combos == [(2.0, 10), (4.0, 20)]

    def test_zip_rejects_unequal_lengths(self, spec):
        with pytest.raises(ValueError, match="equal lengths"):
            zip_(spec, **{"simulation.cutoff": [2.0, 4.0], "seed": [10]})

    def test_empty_axes_are_rejected(self, spec):
        with pytest.raises(ValueError, match="at least one axis"):
            grid(spec)
        with pytest.raises(ValueError, match="non-empty"):
            grid(spec, seed=[])

    def test_unknown_axis_is_rejected(self, spec):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            grid(spec, **{"simulation.warp_factor": [1]}).units()
        with pytest.raises(ValueError, match="unknown sweep axis"):
            grid(spec, **{"banana.cutoff": [1]}).units()

    def test_dunder_axis_alias(self, spec):
        plan = grid(spec, simulation__cutoff=[2.0, 3.0])
        assert [u.spec.simulation.cutoff for u in plan.units()] == [2.0, 3.0]

    def test_grid_over_a_plan_applies_to_every_spec(self, spec):
        base = chain(single(spec), single(tiny_spec(name="other", seed=2)))
        plan = grid(base, **{"simulation.cutoff": [2.0, 3.0]})
        assert len(plan) == 4

    def test_analysis_axis(self, spec):
        plan = grid(spec, **{"analysis.k_neighbors": [2, 3]})
        assert [u.spec.analysis.k_neighbors for u in plan.units()] == [2, 3]

    def test_limit_and_map_specs(self, spec):
        plan = grid(spec, **{"simulation.cutoff": [None, 2.0, 3.0]})
        assert len(plan.limit(2)) == 2
        mapped = plan.map_specs(lambda s: s.with_updates(n_samples=99))
        assert all(u.spec.n_samples == 99 for u in mapped.units())
        with pytest.raises(ValueError):
            plan.limit(0)


class TestContentHash:
    def test_cosmetic_fields_do_not_enter_the_hash(self, spec):
        renamed = spec.with_updates(name="renamed", description="x", tags=("a",), expectation="y")
        assert unit_content_hash(spec) == unit_content_hash(renamed)

    def test_physics_fields_change_the_hash(self, spec):
        assert unit_content_hash(spec) != unit_content_hash(spec.with_updates(seed=2))
        assert unit_content_hash(spec) != unit_content_hash(spec.with_updates(n_samples=11))
        assert unit_content_hash(spec) != unit_content_hash(
            spec.with_updates(simulation=spec.simulation.with_updates(cutoff=3.0))
        )
        assert unit_content_hash(spec) != unit_content_hash(
            spec.with_updates(analysis=AnalysisConfig(step_stride=3, k_neighbors=3))
        )

    def test_hash_is_stable_across_equal_specs(self, spec):
        assert RunUnit(spec).content_hash == RunUnit(tiny_spec()).content_hash
        assert len(RunUnit(spec).content_hash) == 64


class TestFigurePlanCounterparts:
    def test_every_figure_has_a_plan(self):
        plans = all_figure_plans()
        specs = all_figure_specs()
        assert set(plans) == set(specs)

    def test_plans_lower_to_the_same_hashes_as_the_spec_lists(self):
        plans = all_figure_plans()
        specs = all_figure_specs()
        for figure in specs:
            plan_hashes = {u.content_hash for u in plans[figure].units()}
            spec_hashes = {unit_content_hash(s) for s in specs[figure]}
            assert plan_hashes == spec_hashes, f"{figure} plan diverges from its spec list"

    def test_fig9_plan_unit_count(self):
        plan = fig9_radius_sweep_plan(cutoffs=(2.5, None))
        assert len(plan) == 2 * len(fig9_radius_sweep(cutoffs=(2.5,)))

    def test_figure_plan_lookup(self):
        assert len(figure_plan("FIG4")) == 1
        with pytest.raises(KeyError):
            figure_plan("fig99")


class RecordingObserver(PlanObserver):
    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_plan_start(self, units, missing):
        self.events.append(("plan_start", len(units), len(missing)))

    def on_unit_start(self, unit, index, total):
        self.events.append(("unit_start", unit.name))

    def on_unit_complete(self, unit, result, cached):
        self.events.append(("unit_complete", unit.name, cached))

    def on_plan_complete(self, execution):
        self.events.append(("plan_complete", execution.n_computed, execution.n_cached))


class TestExecution:
    @pytest.fixture
    def plan(self, spec) -> ExperimentPlan:
        return grid(spec, **{"simulation.cutoff": [None, 3.0]})

    def test_execute_without_store_computes_everything(self, plan):
        execution = plan.execute()
        assert execution.n_computed == 2 and execution.n_cached == 0
        assert len(execution.results) == len(execution.units) == 2
        assert len(execution.summaries()) == 2
        assert np.isfinite(execution.mean_delta_multi_information())

    def test_cache_hits_skip_recomputation_bit_identically(self, plan, tmp_path):
        store = RunStore(tmp_path / "store")
        first = plan.execute(store)
        snapshot = {p.name: p.read_bytes() for p in store.units_dir.glob("*.json")}
        second = plan.execute(store)
        assert second.n_computed == 0 and second.n_cached == 2
        assert snapshot == {p.name: p.read_bytes() for p in store.units_dir.glob("*.json")}
        for r1, r2 in zip(first.results, second.results):
            np.testing.assert_array_equal(
                r1.measurement.multi_information, r2.measurement.multi_information
            )
            np.testing.assert_array_equal(r1.mean_force_norm, r2.mean_force_norm)

    def test_interrupted_sweep_resumes_with_only_missing_units(self, plan, tmp_path):
        store = RunStore(tmp_path / "store")
        uninterrupted = plan.execute(RunStore(tmp_path / "reference"))
        reference = {
            p.name: p.read_bytes() for p in RunStore(tmp_path / "reference").units_dir.glob("*.json")
        }
        # "interrupt": only the first unit completes
        partial = plan.limit(1).execute(store)
        assert partial.n_computed == 1
        resumed = plan.execute(store)
        assert resumed.n_computed == 1 and resumed.n_cached == 1
        resumed_bytes = {p.name: p.read_bytes() for p in store.units_dir.glob("*.json")}
        assert resumed_bytes == reference, "resumed store must be bit-identical to an uninterrupted run"
        for r1, r2 in zip(uninterrupted.results, resumed.results):
            np.testing.assert_array_equal(
                r1.measurement.multi_information, r2.measurement.multi_information
            )

    def test_status_reports_cached_and_missing(self, plan, tmp_path):
        store = RunStore(tmp_path / "store")
        assert plan.status(store).n_missing == 2
        plan.limit(1).execute(store)
        status = plan.status(store)
        assert status.n_cached == 1 and status.n_missing == 1 and not status.complete
        plan.execute(store)
        assert plan.status(store).complete
        assert plan.status(None).n_missing == 2

    def test_recompute_ignores_the_cache(self, plan, tmp_path):
        store = RunStore(tmp_path / "store")
        plan.execute(store)
        execution = plan.execute(store, recompute=True)
        assert execution.n_computed == 2 and execution.n_cached == 0

    def test_duplicate_units_are_computed_once(self, spec):
        plan = chain(single(spec), single(spec))
        execution = plan.execute()
        assert len(execution.units) == 2
        assert execution.n_computed == 1
        assert execution.results[0] is execution.results[1]

    def test_parallel_fanout_matches_serial(self, plan):
        serial = plan.execute()
        parallel = plan.execute(n_jobs=2)
        for r1, r2 in zip(serial.results, parallel.results):
            np.testing.assert_array_equal(
                r1.measurement.multi_information, r2.measurement.multi_information
            )

    def test_observer_sees_the_lifecycle(self, plan, tmp_path):
        store = RunStore(tmp_path / "store")
        plan.limit(1).execute(store)
        observer = RecordingObserver()
        plan.execute(store, observer=observer)
        kinds = [event[0] for event in observer.events]
        assert kinds[0] == "plan_start" and kinds[-1] == "plan_complete"
        completes = [event for event in observer.events if event[0] == "unit_complete"]
        assert sorted(event[2] for event in completes) == [False, True]

    def test_console_observer_output(self, plan):
        stream = io.StringIO()
        plan.execute(observer=ConsoleObserver(stream))
        text = stream.getvalue()
        assert "2 unit(s)" in text and "computed" in text and "delta I" in text

    def test_units_are_persisted_as_they_complete(self, plan, tmp_path):
        class Interrupt(Exception):
            pass

        class InterruptingObserver(PlanObserver):
            def on_unit_complete(self, unit, result, cached):
                raise Interrupt  # "crash" right after the first unit finishes

        store = RunStore(tmp_path / "store")
        with pytest.raises(Interrupt):
            plan.execute(store, observer=InterruptingObserver())
        # The completed unit must already be on disk despite the crash.
        assert plan.status(store).n_cached == 1
        resumed = plan.execute(store)
        assert resumed.n_cached == 1 and resumed.n_computed == 1

    def test_keep_ensembles_recomputes_cached_units_without_an_ensemble(self, spec, tmp_path):
        store = RunStore(tmp_path / "store")
        plan = single(spec)
        plan.execute(store)  # cached without .npz
        execution = plan.execute(store, keep_ensembles=True)
        assert execution.n_computed == 1 and execution.n_cached == 0
        assert execution.results[0].ensemble is not None
        assert store.ensemble_path_for(plan.units()[0]).is_file()
        # Now the request is satisfiable from cache.
        warm = plan.execute(store, keep_ensembles=True)
        assert warm.n_computed == 0 and warm.results[0].ensemble is not None

    def test_keep_ensembles_round_trips_the_trajectory(self, spec, tmp_path):
        store = RunStore(tmp_path / "store")
        plan = single(spec)
        first = plan.execute(store, keep_ensembles=True)
        assert first.results[0].ensemble is not None
        assert store.ensemble_path_for(plan.units()[0]).is_file()
        second = plan.execute(store, keep_ensembles=True)
        assert second.n_computed == 0
        np.testing.assert_array_equal(
            second.results[0].ensemble.positions, first.results[0].ensemble.positions
        )
        # A warm execution that does not ask for ensembles must not pull the
        # (potentially huge) .npz into memory.
        summaries_only = plan.execute(store)
        assert summaries_only.n_computed == 0
        assert summaries_only.results[0].ensemble is None

class TestSharedStoreExecution:
    """Lease-based dispatch and write-once persistence on a (shared) store."""

    @pytest.fixture
    def plan(self, spec) -> ExperimentPlan:
        return grid(spec, **{"simulation.cutoff": [None, 3.0]})

    def test_orphaned_archive_does_not_satisfy_keep_ensembles(self, spec, tmp_path):
        # Regression: a crashed keep_ensembles save leaves a bare .npz next
        # to a document with no unit.ensemble reference.  The cache check
        # must consult the document's reference, not the archive's mere
        # existence — otherwise the unit counts as cached and
        # load(with_ensemble=True) silently returns ensemble=None, violating
        # the caller's explicit keep_ensembles=True request.
        store = RunStore(tmp_path / "store")
        plan = single(spec)
        plan.execute(store)  # summaries-only document, no ensemble reference
        unit = plan.units()[0]
        orphan = store.ensemble_path_for(unit)
        orphan.write_bytes(b"crashed keep_ensembles save leftovers")
        execution = plan.execute(store, keep_ensembles=True)
        assert execution.n_computed == 1 and execution.n_cached == 0
        assert execution.results[0].ensemble is not None
        # The document now references the (rewritten, genuine) archive and
        # the request is satisfiable from cache.
        assert store.load_document(unit)["unit"]["ensemble"] == orphan.name
        warm = plan.execute(store, keep_ensembles=True)
        assert warm.n_computed == 0 and warm.results[0].ensemble is not None

    def test_committed_documents_are_never_rewritten(self, plan, tmp_path):
        # Write-once: a later execution that computes *other* units must
        # leave already-committed documents untouched at the inode level.
        store = RunStore(tmp_path / "store")
        first = plan.limit(1).execute(store)
        assert first.n_computed == 1
        committed = next(iter(store.units_dir.glob("*.json")))
        before = committed.stat()
        resumed = plan.execute(store)
        assert resumed.n_computed == 1 and resumed.n_cached == 1
        after = committed.stat()
        assert (before.st_mtime_ns, before.st_ino) == (after.st_mtime_ns, after.st_ino)

    def test_foreign_lease_defers_to_the_other_workers_result(self, spec, tmp_path):
        # Another worker holds the unit's lease; this execution must wait
        # and then adopt the result that worker commits (external), never
        # duplicating the compute.
        store = RunStore(tmp_path / "store")
        plan = single(spec)
        unit = plan.units()[0]
        assert store.try_acquire_lease(unit.content_hash, "other-worker", ttl_seconds=30.0)

        def commit_later():
            # The other worker commits while *still holding* its lease (a
            # real worker releases only after the save); the waiter must
            # adopt the committed result, not wait for the lease.
            time.sleep(0.3)
            store.save(unit, unit.execute(), overwrite=False)

        thread = threading.Thread(target=commit_later)
        thread.start()
        try:
            execution = plan.execute(store, lease_poll_seconds=0.05)
        finally:
            thread.join()
            store.release_lease(unit.content_hash, "other-worker")
        assert execution.n_computed == 0 and execution.n_cached == 0
        assert execution.external == (unit.content_hash,)
        assert execution.n_external == 1
        assert np.isfinite(execution.results[0].delta_multi_information)

    def test_expired_foreign_lease_is_stolen_and_computed(self, spec, tmp_path):
        # A crashed worker stops renewing; once its lease expires another
        # worker steals the unit instead of waiting forever.
        store = RunStore(tmp_path / "store")
        plan = single(spec)
        unit = plan.units()[0]
        assert store.try_acquire_lease(unit.content_hash, "dead-worker", ttl_seconds=0.2)
        execution = plan.execute(store, lease_poll_seconds=0.05)
        assert execution.n_computed == 1
        assert not store.lease_path_for(unit.content_hash).exists()

    def test_all_leases_are_released_after_execution(self, plan, tmp_path):
        store = RunStore(tmp_path / "store")
        plan.execute(store)
        assert len(store.keys()) == 2
        assert list(store.leases_dir.glob("*.json")) == []

    def test_leases_are_released_when_an_observer_raises(self, plan, tmp_path):
        # A crash mid-execution must not leave leases behind that would
        # stall other workers (or the next execution here) until the TTL.
        class Interrupt(Exception):
            pass

        class InterruptingObserver(PlanObserver):
            def on_unit_complete(self, unit, result, cached):
                raise Interrupt

        store = RunStore(tmp_path / "store")
        with pytest.raises(Interrupt):
            plan.execute(store, observer=InterruptingObserver())
        leftover = list(store.leases_dir.glob("*.json")) if store.leases_dir.is_dir() else []
        assert leftover == []


class TestObserverFaultInjection:
    """A PlanObserver raising mid-execute corrupts nothing, on either backend.

    Observers run application code inside the executor's lease window; if one
    raises, the ``finally`` cleanup must still release every tracked lease and
    the store must hold only complete, loadable documents — so the very next
    execution (possibly by another worker) picks up exactly where this one
    crashed.
    """

    class Boom(Exception):
        pass

    @pytest.fixture
    def plan(self, spec) -> ExperimentPlan:
        return grid(spec, **{"simulation.cutoff": [None, 3.0]})

    @pytest.fixture(params=["filesystem", "http"])
    def backend(self, request, tmp_path):
        """(client, filesystem store) pairs for both run-store backends."""
        fs_store = RunStore(tmp_path / "store")
        if request.param == "filesystem":
            yield fs_store, fs_store
            return
        from repro.io.remote import open_store
        from repro.io.service import serve_store

        server = serve_store(tmp_path / "store", port=0)
        thread = server.serve_in_background()
        yield open_store(server.url), fs_store
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)

    def _assert_clean(self, fs_store: RunStore) -> None:
        assert list(fs_store.leases_dir.glob("*.json")) == []  # no leaked leases
        assert fs_store.orphaned_files(min_age_seconds=0.0) == []  # no stray temps
        for content_hash in fs_store.keys():  # every document reconstructs
            fs_store.load(content_hash, with_ensemble=False)

    def test_raise_in_on_unit_start_releases_the_lease(self, plan, backend):
        client, fs_store = backend

        class Saboteur(PlanObserver):
            def on_unit_start(self, unit, index, total):
                raise TestObserverFaultInjection.Boom

        with pytest.raises(self.Boom):
            plan.execute(client, observer=Saboteur())
        # on_unit_start fires before any compute: nothing persisted, nothing leased.
        assert fs_store.keys() == []
        self._assert_clean(fs_store)
        recovered = plan.execute(client)
        assert recovered.n_computed == len(plan)
        self._assert_clean(fs_store)

    def test_raise_in_on_unit_complete_keeps_the_committed_unit(self, plan, backend):
        client, fs_store = backend

        class Saboteur(PlanObserver):
            def on_unit_complete(self, unit, result, cached):
                raise TestObserverFaultInjection.Boom

        with pytest.raises(self.Boom):
            plan.execute(client, observer=Saboteur())
        # on_unit_complete fires after save + lease release: the finished
        # unit survives the crash and the resume computes only the rest.
        assert len(fs_store.keys()) == 1
        self._assert_clean(fs_store)
        resumed = plan.execute(client)
        assert resumed.n_cached == 1 and resumed.n_computed == len(plan) - 1
        self._assert_clean(fs_store)
