"""Tests for repro.alignment.torus and the wrapped-domain dispatch.

The headline contract (the PR's acceptance criterion): an ensemble whose
samples are rigid mod-L translations (and admissible flips) of one base
configuration aligns to near-zero residual under the torus reduction, while
the free-space Procrustes path — which sees a seam crossing as a large
deformation — does not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment import (
    TorusAligner,
    TorusTransform,
    align_snapshot,
    reduce_ensemble,
    select_reference_wrapped,
)
from repro.alignment.torus import _optimal_axis_shift
from repro.particles.domain import get_domain
from repro.particles.trajectory import EnsembleTrajectory


def _base_cloud(rng, domain, n_per_type=8, n_types=2):
    types = np.repeat(np.arange(n_types), n_per_type)
    extents = domain.extents
    base = np.column_stack(
        [
            rng.uniform(0.0, extents[0], size=types.size),
            rng.uniform(0.0, extents[1], size=types.size),
        ]
    )
    return base, types

def _type_preserving_permutation(rng, types):
    perm = np.arange(types.size)
    for t in np.unique(types):
        idx = np.nonzero(types == t)[0]
        perm[idx] = idx[rng.permutation(idx.size)]
    return perm


class TestOptimalAxisShift:
    def test_recovers_a_plain_shift(self):
        residuals = np.full(10, 1.25)
        assert _optimal_axis_shift(residuals, 8.0) == pytest.approx(1.25)

    def test_recovers_a_shift_through_the_seam(self):
        # Residuals clustered around -0.5 ≡ 7.5 mod 8: the circular structure
        # matters; a plain mean of the wrapped values would be badly off.
        residuals = np.array([7.4, 7.6, 7.5, 7.45, 7.55])
        shift = _optimal_axis_shift(residuals, 8.0)
        assert shift == pytest.approx(7.5)

    def test_beats_plain_mean_on_split_cluster(self):
        # Half the residuals just below the seam, half just above it.
        residuals = np.array([7.9, 7.95, 0.05, 0.1])
        shift = _optimal_axis_shift(residuals, 8.0)
        wrapped = np.mod(shift - residuals, 8.0)
        wrapped = np.minimum(wrapped, 8.0 - wrapped)
        assert np.max(wrapped) < 0.15  # the naive mean 4.0 would leave ~4

    def test_empty_residuals(self):
        assert _optimal_axis_shift(np.array([]), 5.0) == 0.0


class TestTorusTransform:
    def test_apply_flip_and_translate_wraps(self):
        domain = get_domain("periodic:8,4")
        transform = TorusTransform(flips=(True, False), translation=(3.0, 1.5))
        out = transform.apply(np.array([[1.0, 3.0]]), domain)
        # x: 8 - 1 = 7, + 3 = 10 -> wraps to 2; y: 3 + 1.5 = 4.5 -> wraps to 0.5.
        np.testing.assert_allclose(out, [[2.0, 0.5]])


class TestTorusAligner:
    @pytest.mark.parametrize("spec", ["periodic:8,4", "periodic:6", "channel:8,4"])
    def test_recovers_rigid_translation_exactly(self, rng, spec):
        domain = get_domain(spec)
        base, types = _base_cloud(rng, domain)
        shift = np.array(
            [
                rng.uniform(0.0, domain.extents[0]) if domain.periodic_axes[0] else 0.0,
                rng.uniform(0.0, domain.extents[1]) if domain.periodic_axes[1] else 0.0,
            ]
        )
        perm = _type_preserving_permutation(rng, types)
        source = domain.wrap(base[perm] + shift)
        result = TorusAligner(domain).align(source, base, types[perm])
        assert result.rmse < 1e-8

    def test_recovers_per_axis_flips(self, rng):
        domain = get_domain("periodic:8,4")
        base, types = _base_cloud(rng, domain)
        flipped = np.column_stack([8.0 - base[:, 0], base[:, 1]])
        source = domain.wrap(flipped + np.array([2.3, 0.7]))
        result = TorusAligner(domain).align(source, base, types)
        assert result.rmse < 1e-8
        assert result.transform.flips == (True, False)

    def test_reflecting_walls_pin_the_translation(self, rng):
        # On a channel, a y-shifted copy is NOT a symmetry image: the aligner
        # must not find a spurious zero residual.
        domain = get_domain("channel:8,4")
        base, types = _base_cloud(rng, domain)
        shifted_y = domain.wrap(base + np.array([0.0, 0.9]))
        result = TorusAligner(domain).align(shifted_y, base, types)
        assert result.transform.translation[1] == 0.0
        assert result.rmse > 0.05

    def test_noise_keeps_residual_near_noise_floor(self, rng):
        domain = get_domain("periodic:8,4")
        base, types = _base_cloud(rng, domain)
        noisy = domain.wrap(base + np.array([5.1, 2.6]) + 0.01 * rng.standard_normal(base.shape))
        result = TorusAligner(domain).align(noisy, base, types)
        assert result.rmse < 0.05

    def test_correspondence_is_type_preserving(self, rng):
        domain = get_domain("periodic:8,4")
        base, types = _base_cloud(rng, domain)
        perm = _type_preserving_permutation(rng, types)
        source = domain.wrap(base[perm] + np.array([3.0, 1.0]))
        result = TorusAligner(domain).align(source, base, types[perm])
        assert np.array_equal(np.sort(result.correspondence), np.arange(types.size))
        np.testing.assert_array_equal(types[perm], types[result.correspondence])

    def test_rejects_free_domain_and_bad_shapes(self, rng):
        with pytest.raises(ValueError, match="bounded"):
            TorusAligner(get_domain("free"))
        domain = get_domain("periodic:8,4")
        aligner = TorusAligner(domain)
        with pytest.raises(ValueError, match="shape"):
            aligner.align(np.zeros((3, 2)), np.zeros((4, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="types"):
            aligner.align(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestSelectReferenceWrapped:
    def test_first_strategy(self, rng):
        domain = get_domain("periodic:8,4")
        snap = rng.uniform(0.0, 4.0, size=(5, 10, 2))
        assert select_reference_wrapped(snap, domain, "first") == 0

    def test_medoid_is_translation_insensitive(self, rng):
        # All samples are mod-L translations of one shape -> their wrapped
        # radii profiles are identical, so any index is a valid medoid and
        # the computation must not crash near the seam.
        domain = get_domain("periodic:8,4")
        base, _ = _base_cloud(rng, domain)
        snap = np.stack(
            [domain.wrap(base + np.array([s * 1.7, s * 0.9])) for s in range(5)]
        )
        index = select_reference_wrapped(snap, domain, "medoid")
        assert 0 <= index < 5

    def test_unknown_strategy(self, rng):
        domain = get_domain("periodic:8,4")
        with pytest.raises(ValueError, match="unknown reference strategy"):
            select_reference_wrapped(np.zeros((2, 3, 2)), domain, "typical")


class TestWrappedSnapshotAlignment:
    def test_translated_ensemble_collapses_where_procrustes_does_not(self, rng):
        # The acceptance criterion: rigid mod-L translations of one base
        # shape align to ~zero residual under the torus reduction; the
        # free-space path leaves O(1) residuals on the same snapshot.
        domain = get_domain("periodic:8,4")
        base, types = _base_cloud(rng, domain)
        n_samples = 6
        snapshot = np.empty((n_samples, types.size, 2))
        for m in range(n_samples):
            shift = np.array(
                [rng.uniform(0.0, 8.0), rng.uniform(0.0, 4.0)]
            )
            perm = _type_preserving_permutation(rng, types)
            snapshot[m] = domain.wrap(base[perm] + shift)
        wrapped = align_snapshot(snapshot, types, domain=domain)
        assert np.all(wrapped.rmse < 1e-6)
        free = align_snapshot(snapshot, types)
        assert np.max(free.rmse) > 0.1

    def test_reduced_coordinates_stay_in_the_box(self, rng):
        domain = get_domain("channel:8,4")
        base, types = _base_cloud(rng, domain)
        snapshot = np.stack(
            [domain.wrap(base + np.array([s * 2.1, 0.0])) for s in range(4)]
        )
        alignment = align_snapshot(snapshot, types, domain=domain)
        assert np.all(alignment.reduced >= 0.0)
        assert np.all(alignment.reduced[..., 0] <= 8.0)
        assert np.all(alignment.reduced[..., 1] <= 4.0)

    def test_free_and_reflecting_domains_keep_the_free_path(self, rng):
        # Passing a domain without periodic axes must change nothing.
        snapshot = rng.uniform(-3.0, 3.0, size=(4, 12, 2))
        types = np.repeat([0, 1], 6)
        default = align_snapshot(snapshot, types)
        explicit_free = align_snapshot(snapshot, types, domain="free")
        np.testing.assert_array_equal(default.reduced, explicit_free.reduced)
        reflecting = align_snapshot(
            domain_snap := get_domain("reflecting:8,4").wrap(snapshot + 4.0),
            types,
            domain="reflecting:8,4",
        )
        free_on_same = align_snapshot(domain_snap, types)
        np.testing.assert_array_equal(reflecting.reduced, free_on_same.reduced)

    def test_explicit_reference_configuration(self, rng):
        domain = get_domain("periodic:8,4")
        base, types = _base_cloud(rng, domain)
        snapshot = np.stack([domain.wrap(base + np.array([1.0, 0.5]))])
        alignment = align_snapshot(snapshot, types, domain=domain, reference=base)
        assert alignment.reference_index == -1
        assert np.all(alignment.rmse < 1e-6)


class TestWrappedReduceEnsemble:
    def test_reduce_ensemble_threads_the_domain(self, rng):
        domain = get_domain("periodic:8,4")
        base, types = _base_cloud(rng, domain, n_per_type=5)
        n_steps, n_samples = 3, 4
        positions = np.empty((n_steps, n_samples, types.size, 2))
        for t in range(n_steps):
            for m in range(n_samples):
                shift = np.array([rng.uniform(0.0, 8.0), rng.uniform(0.0, 4.0)])
                positions[t, m] = domain.wrap(base + shift)
        ensemble = EnsembleTrajectory(positions=positions, types=types, dt=0.05)
        reduced = reduce_ensemble(ensemble, domain=domain)
        assert np.all(reduced.rmse < 1e-6)
        assert np.all(reduced.positions >= 0.0)
        free = reduce_ensemble(ensemble)
        assert np.max(free.rmse) > 0.1
