"""Tests for repro.particles.types."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.particles.types import (
    InteractionParams,
    random_symmetric_matrix,
    type_counts_to_assignment,
)


class TestRandomSymmetricMatrix:
    def test_symmetry(self, rng):
        mat = random_symmetric_matrix(5, 0.0, 1.0, rng)
        np.testing.assert_allclose(mat, mat.T)

    def test_range(self, rng):
        mat = random_symmetric_matrix(6, 2.0, 8.0, rng)
        assert mat.min() >= 2.0
        assert mat.max() <= 8.0

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            random_symmetric_matrix(0, 0.0, 1.0, rng)
        with pytest.raises(ValueError):
            random_symmetric_matrix(2, 1.0, 0.0, rng)

    @given(st.integers(min_value=1, max_value=8))
    def test_shape_property(self, n_types):
        mat = random_symmetric_matrix(n_types, 0.0, 1.0, np.random.default_rng(0))
        assert mat.shape == (n_types, n_types)
        np.testing.assert_allclose(mat, mat.T)


class TestTypeCountsToAssignment:
    def test_basic_expansion(self):
        np.testing.assert_array_equal(type_counts_to_assignment([3, 2]), [0, 0, 0, 1, 1])

    def test_zero_count_type_skipped_in_assignment(self):
        assignment = type_counts_to_assignment([2, 0, 1])
        np.testing.assert_array_equal(assignment, [0, 0, 2])

    def test_rejects_empty_and_all_zero(self):
        with pytest.raises(ValueError):
            type_counts_to_assignment([])
        with pytest.raises(ValueError):
            type_counts_to_assignment([0, 0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            type_counts_to_assignment([3, -1])


class TestInteractionParams:
    def test_single_type_shapes(self):
        params = InteractionParams.single_type(k=2.0, r=1.5)
        assert params.n_types == 1
        assert params.k[0, 0] == 2.0
        assert params.r[0, 0] == 1.5

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            InteractionParams(
                k=[[1.0, 2.0], [3.0, 1.0]],
                r=np.ones((2, 2)),
                sigma=np.ones((2, 2)),
                tau=np.ones((2, 2)),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            InteractionParams(
                k=np.ones((2, 2)),
                r=np.ones((3, 3)),
                sigma=np.ones((2, 2)),
                tau=np.ones((2, 2)),
            )

    def test_rejects_nonpositive_sigma_tau(self):
        with pytest.raises(ValueError):
            InteractionParams.single_type(sigma=0.0)
        with pytest.raises(ValueError):
            InteractionParams.single_type(tau=-1.0)

    def test_rejects_negative_r(self):
        with pytest.raises(ValueError):
            InteractionParams.single_type(r=-0.5)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            InteractionParams(
                k=[[np.nan]], r=[[1.0]], sigma=[[1.0]], tau=[[1.0]]
            )

    def test_random_respects_ranges(self, rng):
        params = InteractionParams.random(
            4, rng=rng, k_range=(1.0, 10.0), r_range=(0.0, 1.0), tau_range=(1.0, 10.0)
        )
        assert params.n_types == 4
        assert params.k.min() >= 1.0 and params.k.max() <= 10.0
        assert params.r.min() >= 0.0 and params.r.max() <= 1.0
        assert params.tau.min() >= 1.0 and params.tau.max() <= 10.0
        np.testing.assert_allclose(params.sigma, 1.0)

    def test_random_with_pinned_k(self, rng):
        params = InteractionParams.random(3, rng=rng, k_value=1.0)
        np.testing.assert_allclose(params.k, 1.0)

    def test_clustering_diagonal_smaller(self):
        params = InteractionParams.clustering(3, self_distance=1.0, cross_distance=3.0)
        assert np.all(np.diag(params.r) == 1.0)
        off_diag = params.r[~np.eye(3, dtype=bool)]
        assert np.all(off_diag == 3.0)

    def test_pair_matrices_shapes_and_values(self):
        params = InteractionParams.from_matrices(k=[[1.0, 2.0], [2.0, 3.0]], r=[[1.0, 4.0], [4.0, 2.0]])
        types = np.array([0, 1, 1])
        pair = params.pair_matrices(types)
        assert pair["k"].shape == (3, 3)
        assert pair["k"][0, 1] == 2.0
        assert pair["k"][1, 2] == 3.0
        assert pair["r"][0, 2] == 4.0
        assert pair["r"][0, 0] == 1.0

    def test_pair_matrices_rejects_bad_types(self):
        params = InteractionParams.single_type()
        with pytest.raises(ValueError):
            params.pair_matrices(np.array([0, 1]))

    def test_roundtrip_dict(self):
        params = InteractionParams.clustering(2)
        restored = InteractionParams.from_dict(params.to_dict())
        np.testing.assert_allclose(restored.k, params.k)
        np.testing.assert_allclose(restored.r, params.r)
        np.testing.assert_allclose(restored.sigma, params.sigma)
        np.testing.assert_allclose(restored.tau, params.tau)

    def test_frozen(self):
        params = InteractionParams.single_type()
        with pytest.raises(AttributeError):
            params.k = np.zeros((1, 1))  # type: ignore[misc]


class TestAssignmentDtype:
    def test_assignment_is_int64_on_every_platform(self):
        # dtype=int is int32 on Windows; the assignment flows into persisted
        # artifacts and hashed documents, so the dtype is pinned explicitly.
        assignment = type_counts_to_assignment([3, 2])
        assert assignment.dtype == np.int64

    def test_assignment_accepts_numpy_counts(self):
        assignment = type_counts_to_assignment(np.array([2, 0, 1], dtype=np.int32))
        assert assignment.dtype == np.int64
        np.testing.assert_array_equal(assignment, [0, 0, 2])
