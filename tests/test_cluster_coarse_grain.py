"""Tests for repro.cluster.coarse_grain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.coarse_grain import clusters_per_type, coarse_grain_snapshot


def _structured_snapshot(rng, n_samples=6, jitter=0.05):
    """Samples share a common two-type, two-blob-per-type layout plus jitter."""
    types = np.array([0] * 8 + [1] * 8)
    blob_centers = {
        0: np.array([[-4.0, 0.0], [4.0, 0.0]]),
        1: np.array([[0.0, -4.0], [0.0, 4.0]]),
    }
    snapshot = np.empty((n_samples, types.size, 2))
    for m in range(n_samples):
        for type_id, centers in blob_centers.items():
            idx = np.nonzero(types == type_id)[0]
            per_blob = idx.size // 2
            for b, center in enumerate(centers):
                members = idx[b * per_blob : (b + 1) * per_blob]
                snapshot[m, members] = center + jitter * rng.standard_normal((per_blob, 2))
    return snapshot, types


class TestClustersPerType:
    def test_clamps_to_population(self):
        assert clusters_per_type(3, 5) == 3
        assert clusters_per_type(10, 4) == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            clusters_per_type(5, 0)


class TestCoarseGrainSnapshot:
    def test_shapes_and_types(self, rng):
        snapshot, types = _structured_snapshot(rng)
        coarse = coarse_grain_snapshot(snapshot, types, n_clusters=2, rng=rng)
        assert coarse.means.shape == (snapshot.shape[0], 4, 2)
        np.testing.assert_array_equal(coarse.observer_types, [0, 0, 1, 1])
        assert coarse.n_clusters_per_type == (2, 2)
        assert coarse.n_observers == 4

    def test_cluster_means_near_blob_centers(self, rng):
        snapshot, types = _structured_snapshot(rng)
        coarse = coarse_grain_snapshot(snapshot, types, n_clusters=2, rng=rng)
        type0_means = coarse.means[:, coarse.observer_types == 0, :]
        # For every sample, the two type-0 observers sit near (-4, 0) and (4, 0).
        assert np.all(np.abs(np.abs(type0_means[..., 0]) - 4.0) < 0.5)
        assert np.all(np.abs(type0_means[..., 1]) < 0.5)

    def test_observers_correspond_across_samples(self, rng):
        snapshot, types = _structured_snapshot(rng)
        coarse = coarse_grain_snapshot(snapshot, types, n_clusters=2, rng=rng)
        # The same observer slot must refer to the same blob in every sample:
        # its across-sample standard deviation stays on the jitter scale.
        spread = coarse.means.std(axis=0)
        assert spread.max() < 0.5

    def test_cluster_count_clamped(self, rng):
        snapshot, types = _structured_snapshot(rng)
        coarse = coarse_grain_snapshot(snapshot, types, n_clusters=100, rng=rng)
        assert coarse.n_clusters_per_type == (8, 8)

    def test_validation(self, rng):
        snapshot, types = _structured_snapshot(rng)
        with pytest.raises(ValueError):
            coarse_grain_snapshot(snapshot[..., :1], types, 2)
        with pytest.raises(ValueError):
            coarse_grain_snapshot(snapshot, types[:-1], 2)
        with pytest.raises(ValueError):
            coarse_grain_snapshot(snapshot, types, 2, reference_sample=99)

    def test_as_variable_array_matches_means(self, rng):
        snapshot, types = _structured_snapshot(rng)
        coarse = coarse_grain_snapshot(snapshot, types, n_clusters=2, rng=rng)
        np.testing.assert_array_equal(coarse.as_variable_array(), coarse.means)
