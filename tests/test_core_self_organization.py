"""Tests for repro.core.self_organization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.observers import ObserverMode
from repro.core.self_organization import (
    AnalysisConfig,
    SelfOrganizationAnalysis,
    SelfOrganizationResult,
    measure_self_organization,
)
from repro.particles.ensemble import EnsembleSimulator
from repro.particles.trajectory import EnsembleTrajectory


@pytest.fixture(scope="module")
def organized_ensemble():
    """A small ensemble that visibly organises (two-type clustering dynamics)."""
    from repro.particles.model import SimulationConfig
    from repro.particles.types import InteractionParams

    params = InteractionParams.clustering(2, self_distance=1.0, cross_distance=2.5, k=2.0)
    config = SimulationConfig(
        type_counts=(6, 6),
        params=params,
        force="F1",
        dt=0.02,
        substeps=3,
        n_steps=20,
        init_radius=3.0,
    )
    return EnsembleSimulator(config, 40, seed=0).run()


@pytest.fixture
def random_ensemble(rng) -> EnsembleTrajectory:
    """Pure i.i.d. noise at every step: the canonical non-self-organising system."""
    types = np.array([0, 0, 0, 1, 1, 1])
    positions = rng.uniform(-2, 2, size=(6, 40, types.size, 2))
    return EnsembleTrajectory(positions=positions, types=types, dt=1.0)


class TestAnalysisConfig:
    def test_defaults_follow_paper(self):
        config = AnalysisConfig()
        assert config.k_neighbors == 4
        assert config.observer_mode is ObserverMode.AUTO

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalysisConfig(k_neighbors=0)
        with pytest.raises(ValueError):
            AnalysisConfig(step_stride=0)
        with pytest.raises(ValueError):
            AnalysisConfig(n_clusters=0)
        with pytest.raises(ValueError):
            AnalysisConfig(observer_mode="bogus")

    def test_icp_factory_uses_config(self):
        config = AnalysisConfig(icp_max_iterations=7, icp_tolerance=1e-3)
        icp = config.icp()
        assert icp.max_iterations == 7
        assert icp.tolerance == 1e-3


class TestAnalysisSteps:
    def test_includes_first_and_last(self):
        analysis = SelfOrganizationAnalysis(AnalysisConfig(step_stride=7))
        steps = analysis.analysis_steps(20)
        assert steps[0] == 0
        assert steps[-1] == 19

    def test_stride_one_covers_everything(self):
        analysis = SelfOrganizationAnalysis(AnalysisConfig(step_stride=1))
        np.testing.assert_array_equal(analysis.analysis_steps(5), [0, 1, 2, 3, 4])

    def test_invalid_length(self):
        analysis = SelfOrganizationAnalysis()
        with pytest.raises(ValueError):
            analysis.analysis_steps(0)


class TestAnalyze:
    def test_result_shapes(self, organized_ensemble):
        config = AnalysisConfig(step_stride=5, k_neighbors=3)
        result = SelfOrganizationAnalysis(config).analyze(organized_ensemble)
        assert isinstance(result, SelfOrganizationResult)
        assert result.steps.shape == result.multi_information.shape
        assert result.times.shape == result.steps.shape
        assert result.alignment_rmse.shape == result.steps.shape
        assert result.n_observers == organized_ensemble.n_particles
        assert result.metadata["n_samples"] == organized_ensemble.n_samples

    def test_organizing_system_shows_increase(self, organized_ensemble):
        config = AnalysisConfig(step_stride=5, k_neighbors=3)
        result = SelfOrganizationAnalysis(config).analyze(organized_ensemble)
        assert result.delta_multi_information > 0.5
        assert result.is_self_organizing()

    def test_random_system_shows_no_systematic_increase(self, random_ensemble):
        config = AnalysisConfig(step_stride=2, k_neighbors=3)
        result = SelfOrganizationAnalysis(config).analyze(random_ensemble)
        # i.i.d. re-draws at every step: the estimate fluctuates around a
        # constant level, so the increase stays small compared to the
        # organising system's.
        assert abs(result.delta_multi_information) < 1.5

    def test_entropy_series_optional(self, organized_ensemble):
        with_entropy = SelfOrganizationAnalysis(
            AnalysisConfig(step_stride=10, compute_entropies=True, k_neighbors=3)
        ).analyze(organized_ensemble)
        without_entropy = SelfOrganizationAnalysis(
            AnalysisConfig(step_stride=10, k_neighbors=3)
        ).analyze(organized_ensemble)
        assert with_entropy.joint_entropy is not None
        assert with_entropy.marginal_entropy_sum is not None
        assert without_entropy.joint_entropy is None

    def test_decomposition_series(self, organized_ensemble):
        config = AnalysisConfig(step_stride=10, compute_decomposition=True, k_neighbors=3)
        result = SelfOrganizationAnalysis(config).analyze(organized_ensemble)
        series = result.decomposition_series()
        assert set(series) == {"between", "within_0", "within_1"}
        normalized = result.normalized_decomposition_series()
        assert set(normalized) == {"between", "within_0", "within_1"}
        assert all(len(v) == result.steps.size for v in series.values())

    def test_decomposition_requires_flag(self, organized_ensemble):
        result = SelfOrganizationAnalysis(AnalysisConfig(step_stride=10, k_neighbors=3)).analyze(
            organized_ensemble
        )
        with pytest.raises(ValueError):
            result.decomposition_series()

    def test_cluster_observer_mode(self, organized_ensemble):
        config = AnalysisConfig(
            step_stride=10, observer_mode="clusters", n_clusters=2, k_neighbors=3
        )
        result = SelfOrganizationAnalysis(config).analyze(organized_ensemble)
        assert result.observer_mode == "clusters"
        assert result.n_observers == 4

    def test_to_dict_roundtrip_fields(self, organized_ensemble):
        config = AnalysisConfig(step_stride=10, compute_entropies=True, k_neighbors=3)
        result = SelfOrganizationAnalysis(config).analyze(organized_ensemble)
        payload = result.to_dict()
        assert "multi_information" in payload
        assert "joint_entropy" in payload
        assert payload["delta_multi_information"] == pytest.approx(result.delta_multi_information)


class TestMeasureSelfOrganizationWrapper:
    def test_with_overrides(self, organized_ensemble):
        result = measure_self_organization(organized_ensemble, step_stride=10, k_neighbors=3)
        assert result.steps[0] == 0

    def test_config_and_overrides_mutually_exclusive(self, organized_ensemble):
        with pytest.raises(TypeError):
            measure_self_organization(
                organized_ensemble, config=AnalysisConfig(), step_stride=5
            )


class TestWrappedDomainAnalysis:
    def test_domain_threads_to_the_torus_alignment(self, rng):
        # An ensemble whose samples are rigid mod-L translations of one base
        # shape: the wrapped reduction collapses it (near-zero residuals);
        # the free-space path on the same data cannot.
        from repro.particles.domain import get_domain

        domain = get_domain("periodic:8,4")
        types = np.repeat([0, 1], 6)
        base = np.column_stack(
            [rng.uniform(0.0, 8.0, size=12), rng.uniform(0.0, 4.0, size=12)]
        )
        n_steps, n_samples = 2, 8
        positions = np.empty((n_steps, n_samples, 12, 2))
        for t in range(n_steps):
            for m in range(n_samples):
                shift = np.array([rng.uniform(0.0, 8.0), rng.uniform(0.0, 4.0)])
                positions[t, m] = domain.wrap(base + shift)
        ensemble = EnsembleTrajectory(positions=positions, types=types, dt=1.0)
        config = AnalysisConfig(compute_entropies=False, compute_decomposition=False)
        wrapped = SelfOrganizationAnalysis(config).analyze(ensemble, domain=domain)
        assert np.all(wrapped.alignment_rmse < 1e-6)
        free = SelfOrganizationAnalysis(config).analyze(ensemble)
        assert np.max(free.alignment_rmse) > 0.1

    def test_wrapper_accepts_domain(self, rng):
        from repro.particles.domain import get_domain

        domain = get_domain("channel:8,4")
        positions = domain.wrap(rng.uniform(0.0, 4.0, size=(2, 6, 8, 2)))
        ensemble = EnsembleTrajectory(
            positions=positions, types=np.repeat([0, 1], 4), dt=1.0
        )
        result = measure_self_organization(
            ensemble, compute_entropies=False, compute_decomposition=False, domain=domain
        )
        assert result.steps.size == 2
        # Reduced-domain coordinates stay wrapped, so residuals are finite.
        assert np.all(np.isfinite(result.alignment_rmse))
