"""Tests for repro.analysis.order_params."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.order_params import cluster_sizes, contact_graph, hexatic_order, n_clusters
from repro.particles.init_conditions import grid_layout


def _triangular_lattice(n_side: int, spacing: float = 1.0) -> np.ndarray:
    points = []
    for row in range(n_side):
        for col in range(n_side):
            x = col * spacing + (row % 2) * spacing / 2
            y = row * spacing * np.sqrt(3) / 2
            points.append((x, y))
    return np.asarray(points)


class TestHexaticOrder:
    def test_triangular_lattice_highly_ordered(self):
        # Boundary particles have distorted neighbourhoods, so even a perfect
        # finite lattice does not reach 1.0; it still clearly exceeds a gas.
        positions = _triangular_lattice(8)
        assert hexatic_order(positions) > 0.6

    def test_random_gas_weakly_ordered(self, rng):
        positions = rng.uniform(0, 20, size=(100, 2))
        assert hexatic_order(positions) < 0.4

    def test_lattice_more_ordered_than_gas(self, rng):
        lattice = _triangular_lattice(7)
        gas = rng.uniform(0, 7, size=(49, 2))
        assert hexatic_order(lattice) > hexatic_order(gas)

    def test_needs_enough_particles(self):
        with pytest.raises(ValueError):
            hexatic_order(np.zeros((5, 2)), n_neighbors=6)


class TestContactGraphAndClusters:
    def test_two_separated_grids(self):
        # Two internally connected lattices far apart form exactly two clusters.
        left = grid_layout(9, spacing=1.0) + np.array([-20.0, 0.0])
        right = grid_layout(16, spacing=1.0) + np.array([20.0, 0.0])
        positions = np.concatenate([left, right])
        assert n_clusters(positions) == 2
        assert cluster_sizes(positions) == [16, 9]

    def test_connected_grid_single_cluster(self):
        positions = grid_layout(25, spacing=1.0)
        assert n_clusters(positions) == 1

    def test_graph_node_count(self, rng):
        positions = rng.uniform(-3, 3, size=(15, 2))
        graph = contact_graph(positions)
        assert graph.number_of_nodes() == 15

    def test_empty_and_single(self):
        assert n_clusters(np.zeros((0, 2))) == 0
        assert n_clusters(np.zeros((1, 2))) == 1
