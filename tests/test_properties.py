"""Cross-module property-based tests on the core invariants of the pipeline.

These hypothesis tests stress the invariances the paper's construction relies
on: the dynamics are equivariant under the symmetry group F = ISO+(2) × S*_n,
the symmetry reduction is idempotent on already-reduced data, and the
estimators respect the invariances of the quantities they estimate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.procrustes import RigidTransform
from repro.alignment.symmetry import align_snapshot, center_configurations
from repro.infotheory.ksg import ksg_multi_information
from repro.particles.engine import sparse_drift_batch
from repro.particles.forces import drift_batch, drift_single
from repro.particles.types import InteractionParams

#: Per-push CI runs `-m "not slow and not fuzz"`; the nightly job runs these.
pytestmark = pytest.mark.fuzz


def _system(seed: int, n: int, n_types: int):
    rng = np.random.default_rng(seed)
    params = InteractionParams.random(n_types, rng=rng)
    types = rng.integers(0, n_types, size=n)
    positions = rng.uniform(-4.0, 4.0, size=(n, 2))
    return positions, types, params


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=12),
    n_types=st.integers(min_value=1, max_value=3),
    angle=st.floats(min_value=-3.1, max_value=3.1),
    tx=st.floats(min_value=-10.0, max_value=10.0),
    ty=st.floats(min_value=-10.0, max_value=10.0),
    force=st.sampled_from(["F1", "F2"]),
)
def test_drift_equivariant_under_isometries(seed, n, n_types, angle, tx, ty, force):
    """Eq. 10: the dynamics commute with every direct isometry of the plane."""
    positions, types, params = _system(seed, n, n_types)
    transform = RigidTransform.from_angle(angle, (tx, ty))
    moved = transform.apply(positions)
    drift_then_move = drift_single(positions, types, params, force) @ transform.rotation.T
    move_then_drift = drift_single(moved, types, params, force)
    np.testing.assert_allclose(move_then_drift, drift_then_move, atol=1e-8)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=4, max_value=12),
    n_types=st.integers(min_value=1, max_value=3),
    force=st.sampled_from(["F1", "F2"]),
    cutoff=st.one_of(st.none(), st.floats(min_value=1.0, max_value=6.0)),
)
def test_drift_equivariant_under_same_type_permutations(seed, n, n_types, force, cutoff):
    """Permuting same-type particles permutes the drift the same way (S*_n symmetry)."""
    positions, types, params = _system(seed, n, n_types)
    rng = np.random.default_rng(seed + 1)
    perm = np.arange(n)
    for t in range(n_types):
        idx = np.nonzero(types == t)[0]
        perm[idx] = rng.permutation(idx)
    # note: types[perm] == types, so the permuted system is the same experiment.
    permuted_drift = drift_single(positions[perm], types, params, force, cutoff=cutoff)
    np.testing.assert_allclose(
        permuted_drift,
        drift_single(positions, types, params, force, cutoff=cutoff)[perm],
        atol=1e-8,
    )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=16),
    m=st.integers(min_value=1, max_value=4),
    n_types=st.integers(min_value=1, max_value=3),
    force=st.sampled_from(["F1", "F2"]),
    cutoff=st.floats(min_value=0.5, max_value=6.0),
    backend=st.sampled_from(["brute", "cell", "kdtree"]),
)
def test_sparse_engine_matches_dense_kernel(seed, n, m, n_types, force, cutoff, backend):
    """The unified engine invariant: kernel choice never changes the dynamics."""
    rng = np.random.default_rng(seed)
    params = InteractionParams.random(n_types, rng=rng)
    types = rng.integers(0, n_types, size=n)
    batch = rng.uniform(-4.0, 4.0, size=(m, n, 2))
    dense = drift_batch(batch, types, params, force, cutoff=cutoff)
    sparse = sparse_drift_batch(batch, types, params, force, cutoff, backend)
    np.testing.assert_allclose(sparse, dense, rtol=0, atol=1e-10)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=12),
    force=st.sampled_from(["F1", "F2"]),
    backend=st.sampled_from(["brute", "cell", "kdtree"]),
)
def test_sparse_drift_conserves_momentum(seed, n, force, backend):
    """Drift antisymmetry survives the sparse pair representation."""
    rng = np.random.default_rng(seed)
    params = InteractionParams.random(2, rng=rng)
    types = rng.integers(0, 2, size=n)
    batch = rng.uniform(-3.0, 3.0, size=(2, n, 2))
    drift = sparse_drift_batch(batch, types, params, force, 2.5, backend)
    np.testing.assert_allclose(drift.sum(axis=1), 0.0, atol=1e-9)


@settings(max_examples=10)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_symmetry_reduction_preserves_shape(seed):
    """The reduction only applies elements of F, so intra-sample geometry is untouched.

    A rigid motion plus a permutation leaves the multiset of pairwise
    distances of every sample invariant — if the reduced snapshot violated
    this, the pipeline would be measuring an artefact of the alignment rather
    than the shape statistics of the collective.
    """
    rng = np.random.default_rng(seed)
    types = np.array([0, 0, 0, 1, 1, 1])
    snapshot = rng.uniform(-3, 3, size=(5, types.size, 2))
    result = align_snapshot(snapshot, types, reference=0)
    from repro.particles.forces import pairwise_distance_matrix

    for m in range(snapshot.shape[0]):
        original = np.sort(pairwise_distance_matrix(snapshot[m]), axis=None)
        reduced = np.sort(pairwise_distance_matrix(result.reduced[m]), axis=None)
        np.testing.assert_allclose(reduced, original, atol=1e-8)


@settings(max_examples=10)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_centering_idempotent(seed):
    rng = np.random.default_rng(seed)
    batch = rng.normal(size=(4, 9, 2))
    once = center_configurations(batch)
    twice = center_configurations(once)
    np.testing.assert_allclose(once, twice, atol=1e-12)


@settings(max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    scale=st.floats(min_value=0.1, max_value=10.0),
)
def test_ksg_invariant_under_global_scaling(seed, scale):
    """Multi-information is invariant under rescaling all observers jointly."""
    rng = np.random.default_rng(seed)
    m = 150
    shared = rng.standard_normal((m, 2))
    variables = [shared + 0.5 * rng.standard_normal((m, 2)) for _ in range(3)]
    base = ksg_multi_information(variables, k=3)
    scaled = ksg_multi_information([scale * v for v in variables], k=3)
    np.testing.assert_allclose(scaled, base, atol=1e-9)


@settings(max_examples=10)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_ksg_nonnegative_in_expectation_regime(seed):
    """For strongly dependent data the estimate is clearly positive (never NaN)."""
    rng = np.random.default_rng(seed)
    m = 120
    shared = rng.standard_normal((m, 1))
    variables = [shared + 0.1 * rng.standard_normal((m, 1)) for _ in range(2)]
    value = ksg_multi_information(variables, k=3)
    assert np.isfinite(value)
    assert value > 0.5
