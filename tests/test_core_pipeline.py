"""Tests for repro.core.pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import ExperimentResult, run_experiment, run_simulation_only
from repro.core.self_organization import AnalysisConfig


class TestRunSimulationOnly:
    def test_returns_trajectory_and_simulator(self, small_config):
        ensemble, simulator = run_simulation_only(small_config, 4, seed=0)
        assert ensemble.n_samples == 4
        assert simulator.last_stats is not None


class TestRunExperiment:
    def test_full_result_structure(self, small_config, fast_analysis):
        result = run_experiment(small_config, 16, analysis_config=fast_analysis, seed=0)
        assert isinstance(result, ExperimentResult)
        assert result.n_samples == 16
        assert result.measurement.multi_information.size > 1
        assert result.mean_force_norm.shape == (small_config.n_steps + 1,)
        assert 0.0 <= result.fraction_at_equilibrium <= 1.0
        assert result.ensemble is None
        assert set(result.wall_time_seconds) == {"simulation", "measurement", "total"}

    def test_keep_ensemble(self, small_config, fast_analysis):
        result = run_experiment(
            small_config, 8, analysis_config=fast_analysis, seed=0, keep_ensemble=True
        )
        assert result.ensemble is not None
        assert result.ensemble.n_samples == 8

    def test_reproducible_given_seed(self, small_config, fast_analysis):
        a = run_experiment(small_config, 12, analysis_config=fast_analysis, seed=3)
        b = run_experiment(small_config, 12, analysis_config=fast_analysis, seed=3)
        np.testing.assert_allclose(
            a.measurement.multi_information, b.measurement.multi_information
        )

    def test_summary_serializable(self, small_config, fast_analysis):
        import json

        result = run_experiment(small_config, 8, analysis_config=fast_analysis, seed=0)
        payload = json.dumps(result.summary())
        assert "delta_multi_information" in payload

    def test_default_analysis_config_used(self, small_config):
        result = run_experiment(small_config, 8, seed=0)
        assert isinstance(result.analysis_config, AnalysisConfig)

    def test_delta_property_matches_measurement(self, small_config, fast_analysis):
        result = run_experiment(small_config, 8, analysis_config=fast_analysis, seed=1)
        assert result.delta_multi_information == pytest.approx(
            result.measurement.delta_multi_information
        )
