"""Estimator equivalence and property suite for the information-dynamics engine.

Pins the contracts introduced with the batched analysis pipeline:

* the ``dense`` and ``kdtree`` estimator backends answer the *same* queries,
  so CMI / lagged-MI / TE agree to tight tolerance on generic data and
  exactly on data whose distances are exactly representable (tied integer
  grids, duplicated points, constant conditioning columns);
* the shared-embedding pairwise analysis is pure reuse: its matrices match
  the naive per-pair estimator loop bit-for-bit, for both backends, any
  ``n_jobs``;
* the estimators recover closed-form values on correlated Gaussians and a
  coupled AR(1) pair, vanish on independent pairs, and behave as kNN
  estimators should under affine rescaling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.information_dynamics import (
    pairwise_lagged_mutual_information,
    pairwise_transfer_entropy,
    particle_series,
)
from repro.infotheory.knn import (
    ESTIMATOR_BACKENDS,
    EuclideanBallCounter,
    ProductMetricTree,
    chebyshev_over_variables,
    k_nearest_neighbor_indices,
    per_variable_distances,
    resolve_estimator_backend,
)
from repro.infotheory.transfer import (
    _counts_within,
    conditional_mutual_information,
    time_lagged_mutual_information,
    transfer_entropy,
)
from repro.particles.trajectory import EnsembleTrajectory

#: Cross-backend tolerance on generic continuous data.  The two backends
#: compute identical quantities, but through different floating-point routes
#: (the dense path's expanded-square matrices vs direct coordinate
#: differences in the trees) — and every sample's joint k-th neighbour sits
#: *exactly* at distance ε in whichever block attains the joint max, so that
#: boundary pair's strict count can flip by ±1 wherever the two formulas
#: disagree in the last ulp.  A handful of ±1 count flips moves the digamma
#: average by at most a few 1e-3 bits, far below estimator bias/variance;
#: on exactly-representable (integer-grid) data both formulas are exact and
#: agreement is bitwise — asserted separately below.
BACKEND_ATOL = 5e-3


def _random_cloud(m: int, dims: tuple[int, ...], seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((m, d)) for d in dims]


def _tied_integer_cloud(m: int, dims: tuple[int, ...], seed: int) -> list[np.ndarray]:
    """Small-integer coordinates: every distance is exactly representable,
    ties (including exact duplicates) are massive, and both backends must
    resolve them identically."""
    rng = np.random.default_rng(seed)
    blocks = [rng.integers(0, 4, size=(m, d)).astype(float) for d in dims]
    for block in blocks:
        block[m // 4 : m // 2] = block[: m // 4]  # exact duplicate samples
    return blocks


class TestProductMetricPrimitives:
    """The tree primitives against the dense reference, query by query."""

    @pytest.mark.parametrize("dims", [(2, 2, 2), (1, 1, 1), (2, 1, 3), (2,)])
    @pytest.mark.parametrize("k", [1, 4])
    def test_kth_distances_and_counts_match_dense(self, dims, k):
        blocks = _random_cloud(180, dims, seed=len(dims) * 10 + k)
        m = blocks[0].shape[0]
        joint = chebyshev_over_variables(per_variable_distances(blocks))
        kth_idx = k_nearest_neighbor_indices(joint, k)[:, -1]
        eps_dense = joint[np.arange(m), kth_idx]
        tree = ProductMetricTree(blocks)
        eps_tree = tree.kth_neighbor_distances(k)
        np.testing.assert_allclose(eps_tree, eps_dense, rtol=1e-9)
        inside = joint < eps_dense[:, None]
        np.fill_diagonal(inside, False)
        np.testing.assert_array_equal(tree.counts_within(eps_tree), inside.sum(axis=1))

    def test_exact_on_tied_integer_grid(self):
        blocks = _tied_integer_cloud(120, (2, 1), seed=3)
        m = blocks[0].shape[0]
        joint = chebyshev_over_variables(per_variable_distances(blocks))
        tree = ProductMetricTree(blocks)
        for k in (1, 3, 6):
            kth_idx = k_nearest_neighbor_indices(joint, k)[:, -1]
            eps_dense = joint[np.arange(m), kth_idx]
            np.testing.assert_array_equal(tree.kth_neighbor_distances(k), eps_dense)
            inside = joint < eps_dense[:, None]
            np.fill_diagonal(inside, False)
            np.testing.assert_array_equal(tree.counts_within(eps_dense), inside.sum(axis=1))

    def test_euclidean_counter_matches_dense_strict_counts(self):
        # Radii strictly between the 3rd and 4th neighbour distances: every
        # point's count is exactly 3 under any floating-point formula.
        (block,) = _random_cloud(250, (2,), seed=7)
        dist = per_variable_distances([block])[0]
        work = dist.copy()
        np.fill_diagonal(work, np.inf)
        ordered = np.sort(work, axis=1)
        radii = 0.5 * (ordered[:, 2] + ordered[:, 3])
        counter = EuclideanBallCounter(block)
        inside = dist < radii[:, None]
        np.fill_diagonal(inside, False)
        np.testing.assert_array_equal(counter.counts_within(radii), inside.sum(axis=1))
        np.testing.assert_array_equal(counter.counts_within(radii), np.full(250, 3))

    def test_euclidean_counter_strict_at_representable_ties(self):
        # Integer grid: a radius that equals a distance exactly must exclude
        # the boundary points (strict inequality), identically to the dense
        # comparison.
        block = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 5.0], [6.0, 8.0], [0.0, 1.0]])
        counter = EuclideanBallCounter(block)
        radii = np.full(5, 5.0)  # points at distance exactly 5 are outside
        dist = per_variable_distances([block])[0]
        inside = dist < radii[:, None]
        np.fill_diagonal(inside, False)
        np.testing.assert_array_equal(counter.counts_within(radii), inside.sum(axis=1))

    def test_euclidean_counter_zero_radius(self):
        block = np.zeros((10, 2))  # all duplicates: strict ball of radius 0 is empty
        counter = EuclideanBallCounter(block)
        np.testing.assert_array_equal(counter.counts_within(np.zeros(10)), np.zeros(10, dtype=int))

    def test_backend_registry(self):
        assert resolve_estimator_backend("dense", n_samples=10**6) == "dense"
        assert resolve_estimator_backend("kdtree", n_samples=4) == "kdtree"
        assert resolve_estimator_backend("auto", n_samples=8) == "dense"
        assert resolve_estimator_backend("auto", n_samples=10**6) == "kdtree"
        assert resolve_estimator_backend("auto", n_samples=10, min_samples=10) == "kdtree"
        assert set(ESTIMATOR_BACKENDS) == {"dense", "kdtree"}
        with pytest.raises(ValueError):
            resolve_estimator_backend("sparse", n_samples=100)


class TestBackendEquivalence:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 2, 2), (2, 1, 3)])
    def test_cmi_backends_agree_on_random_clouds(self, dims):
        a, b, c = _random_cloud(400, dims, seed=sum(dims))
        dense = conditional_mutual_information(a, b, c, k=4, backend="dense")
        kdtree = conditional_mutual_information(a, b, c, k=4, backend="kdtree")
        assert kdtree == pytest.approx(dense, abs=BACKEND_ATOL)

    def test_cmi_backends_agree_on_tied_distances(self):
        a, b, c = _tied_integer_cloud(160, (2, 2, 2), seed=5)
        dense = conditional_mutual_information(a, b, c, k=4, backend="dense")
        kdtree = conditional_mutual_information(a, b, c, k=4, backend="kdtree")
        assert kdtree == dense  # exactly representable distances: bit-identical

    def test_cmi_backends_agree_with_constant_conditioning(self):
        rng = np.random.default_rng(11)
        m = 300
        a = rng.standard_normal((m, 2))
        b = a + 0.5 * rng.standard_normal((m, 2))
        c = np.full((m, 1), 2.5)  # zero-variance conditioning column
        dense = conditional_mutual_information(a, b, c, k=4, backend="dense")
        kdtree = conditional_mutual_information(a, b, c, k=4, backend="kdtree")
        assert np.isfinite(dense)
        assert kdtree == pytest.approx(dense, abs=BACKEND_ATOL)
        # Conditioning on a constant must not destroy the dependence.
        assert dense > 0.5

    def test_lagged_mi_and_te_backends_agree(self):
        rng = np.random.default_rng(12)
        x = rng.standard_normal((50, 12, 2))
        y = 0.7 * np.roll(x, 1, axis=1) + rng.standard_normal((50, 12, 2))
        for func, kwargs in (
            (time_lagged_mutual_information, dict(lag=1, k=4)),
            (transfer_entropy, dict(history=2, k=4)),
        ):
            dense = func(x, y, backend="dense", **kwargs)
            kdtree = func(x, y, backend="kdtree", **kwargs)
            assert kdtree == pytest.approx(dense, abs=BACKEND_ATOL)

    def test_unknown_backend_rejected(self):
        a, b, c = _random_cloud(60, (1, 1, 1), seed=0)
        with pytest.raises(ValueError):
            conditional_mutual_information(a, b, c, k=3, backend="sparse")
        with pytest.raises(ValueError):
            transfer_entropy(np.zeros((4, 6, 1)), np.zeros((4, 6, 1)), backend="warp")

    @pytest.mark.slow
    def test_backends_agree_at_scale(self):
        # Larger-m check at the regime where "auto" switches to the tree
        # backend; slow-marked so selective runs can exclude it.
        rng = np.random.default_rng(13)
        m = 1500
        a = rng.standard_normal((m, 2))
        c = a + 0.5 * rng.standard_normal((m, 2))
        b = c + 0.5 * rng.standard_normal((m, 2))
        dense = conditional_mutual_information(a, b, c, k=5, backend="dense")
        kdtree = conditional_mutual_information(a, b, c, k=5, backend="kdtree")
        auto = conditional_mutual_information(a, b, c, k=5, backend="auto")
        assert kdtree == pytest.approx(dense, abs=BACKEND_ATOL)
        assert auto == kdtree  # m >= KDTREE_MIN_SAMPLES resolves to the tree
        x = rng.standard_normal((100, 16, 2)).cumsum(axis=1)
        y = 0.6 * np.roll(x, 1, axis=1) + rng.standard_normal((100, 16, 2))
        te_dense = transfer_entropy(x, y, history=1, k=4, backend="dense")
        te_kdtree = transfer_entropy(x, y, history=1, k=4, backend="kdtree")
        assert te_kdtree == pytest.approx(te_dense, abs=BACKEND_ATOL)


def _driven_ensemble(n_samples=30, n_steps=18, n_particles=4, seed=0) -> EnsembleTrajectory:
    rng = np.random.default_rng(seed)
    positions = np.zeros((n_steps, n_samples, n_particles, 2))
    for t in range(1, n_steps):
        noise = rng.standard_normal((n_samples, n_particles, 2))
        positions[t] = 0.5 * positions[t - 1] + noise
        positions[t, :, 1:] += 0.8 * positions[t - 1, :, :-1]
    return EnsembleTrajectory(positions=positions, types=np.zeros(n_particles, dtype=int))


class TestSharedEmbeddingMatchesNaiveLoop:
    @pytest.fixture(scope="class")
    def ensemble(self):
        return _driven_ensemble()

    @pytest.fixture(scope="class")
    def series(self, ensemble):
        return [particle_series(ensemble, p) for p in range(ensemble.n_particles)]

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_pairwise_te_matches_per_pair_loop_exactly(self, ensemble, series, backend):
        n = ensemble.n_particles
        shared = pairwise_transfer_entropy(ensemble, history=2, k=4, backend=backend)
        naive = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i != j:
                    naive[i, j] = transfer_entropy(
                        series[j], series[i], history=2, k=4, backend=backend
                    )
        np.testing.assert_array_equal(shared, naive)

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_pairwise_lagged_mi_matches_per_pair_loop_exactly(self, ensemble, series, backend):
        n = ensemble.n_particles
        shared = pairwise_lagged_mutual_information(ensemble, lag=1, k=4, backend=backend)
        naive = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i != j:
                    naive[i, j] = time_lagged_mutual_information(
                        series[j], series[i], lag=1, k=4, backend=backend
                    )
        np.testing.assert_array_equal(shared, naive)

    def test_step_stride_matches_thinned_naive_loop(self, ensemble, series):
        shared = pairwise_transfer_entropy(ensemble, history=1, k=4, step_stride=3, backend="dense")
        n = ensemble.n_particles
        naive = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i != j:
                    naive[i, j] = transfer_entropy(
                        series[j][:, ::3, :], series[i][:, ::3, :], history=1, k=4, backend="dense"
                    )
        np.testing.assert_array_equal(shared, naive)

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_parallel_fan_out_is_deterministic(self, ensemble, backend):
        serial = pairwise_transfer_entropy(ensemble, history=1, k=4, backend=backend, n_jobs=1)
        pooled = pairwise_transfer_entropy(ensemble, history=1, k=4, backend=backend, n_jobs=2)
        np.testing.assert_array_equal(serial, pooled)
        serial_mi = pairwise_lagged_mutual_information(ensemble, lag=1, k=4, backend=backend, n_jobs=1)
        pooled_mi = pairwise_lagged_mutual_information(ensemble, lag=1, k=4, backend=backend, n_jobs=2)
        np.testing.assert_array_equal(serial_mi, pooled_mi)

    def test_auto_equals_resolved_backend(self, ensemble):
        auto = pairwise_transfer_entropy(ensemble, history=1, k=4, backend="auto")
        dense = pairwise_transfer_entropy(ensemble, history=1, k=4, backend="dense")
        np.testing.assert_array_equal(auto, dense)  # small m resolves to dense

    def test_duplicate_particles_keep_zero_self_entries(self, ensemble):
        # The zero diagonal is by particle *identity*: repeating an index
        # must not report self-transfer between the duplicate entries.
        te = pairwise_transfer_entropy(ensemble, particles=[0, 0, 1], history=1, k=4)
        assert te[0, 1] == te[1, 0] == 0.0
        assert te[2, 0] == te[2, 1] != 0.0
        mi = pairwise_lagged_mutual_information(ensemble, particles=[2, 2], lag=1, k=4)
        np.testing.assert_array_equal(mi, np.zeros((2, 2)))

    def test_particle_subset_matches_full_matrix(self, ensemble):
        full = pairwise_transfer_entropy(ensemble, history=1, k=4, backend="dense")
        sub = pairwise_transfer_entropy(ensemble, particles=[2, 0], history=1, k=4, backend="dense")
        assert sub.shape == (2, 2)
        assert sub[0, 1] == full[2, 0]
        assert sub[1, 0] == full[0, 2]


class TestVariantAndWorkersThreading:
    """variant= and workers= must thread through the pairwise pipeline."""

    @pytest.fixture(scope="class")
    def ensemble(self):
        return _driven_ensemble(seed=5)

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    @pytest.mark.parametrize("variant", ["paper", "ksg1", "ksg2"])
    def test_pairwise_lagged_mi_variant_matches_per_pair_loop(self, ensemble, backend, variant):
        series = [particle_series(ensemble, p) for p in range(ensemble.n_particles)]
        n = ensemble.n_particles
        shared = pairwise_lagged_mutual_information(
            ensemble, lag=1, k=4, backend=backend, variant=variant
        )
        naive = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i != j:
                    naive[i, j] = time_lagged_mutual_information(
                        series[j], series[i], lag=1, k=4, backend=backend, variant=variant
                    )
        np.testing.assert_array_equal(shared, naive)

    def test_variants_differ_on_the_same_data(self, ensemble):
        # Guards against a silently ignored variant=: the three estimators
        # apply different counting rules, so their matrices must not coincide.
        values = {
            variant: pairwise_lagged_mutual_information(
                ensemble, lag=1, k=4, backend="dense", variant=variant
            )
            for variant in ("paper", "ksg1", "ksg2")
        }
        assert not np.array_equal(values["paper"], values["ksg1"])
        assert not np.array_equal(values["ksg1"], values["ksg2"])

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_workers_are_bitwise_invariant(self, ensemble, backend):
        base_te = pairwise_transfer_entropy(ensemble, history=1, k=4, backend=backend, workers=1)
        many_te = pairwise_transfer_entropy(ensemble, history=1, k=4, backend=backend, workers=-1)
        np.testing.assert_array_equal(base_te, many_te)
        base_mi = pairwise_lagged_mutual_information(
            ensemble, lag=1, k=4, backend=backend, variant="ksg2", workers=1
        )
        many_mi = pairwise_lagged_mutual_information(
            ensemble, lag=1, k=4, backend=backend, variant="ksg2", workers=-1
        )
        np.testing.assert_array_equal(base_mi, many_mi)

    def test_unknown_variant_is_rejected_upfront(self, ensemble):
        with pytest.raises(ValueError, match="unknown variant"):
            pairwise_lagged_mutual_information(ensemble, lag=1, k=4, variant="warp")


class TestPayloadLightFanOut:
    """The pooled fan-out ships (token, row) and rebuilds rows worker-side."""

    @pytest.fixture(autouse=True)
    def _two_workers(self, monkeypatch):
        # A single-CPU box would clip n_jobs=2 to serial and never exercise
        # the plan-cache path; the rows are tiny, so sharing one core is fine.
        monkeypatch.setattr("repro.parallel.pool.os.cpu_count", lambda: 2)

    def test_forked_pool_matches_serial_bitwise(self):
        ensemble = _driven_ensemble(seed=9)
        serial_te = pairwise_transfer_entropy(ensemble, history=1, k=4, n_jobs=1)
        pooled_te = pairwise_transfer_entropy(ensemble, history=1, k=4, n_jobs=2)
        np.testing.assert_array_equal(serial_te, pooled_te)
        serial_mi = pairwise_lagged_mutual_information(
            ensemble, lag=1, k=4, variant="ksg2", n_jobs=1
        )
        pooled_mi = pairwise_lagged_mutual_information(
            ensemble, lag=1, k=4, variant="ksg2", n_jobs=2
        )
        np.testing.assert_array_equal(serial_mi, pooled_mi)

    def test_plan_cache_is_empty_after_the_fan_out(self):
        from repro.analysis import information_dynamics as infod

        ensemble = _driven_ensemble(seed=9)
        pairwise_transfer_entropy(ensemble, history=1, k=4, n_jobs=2)
        assert infod._EMBEDDING_PLAN_CACHE == {}

    def test_non_fork_start_falls_back_to_full_payloads(self, monkeypatch):
        from repro.analysis import information_dynamics as infod

        monkeypatch.setattr(infod, "_uses_fork_start", lambda: False)
        ensemble = _driven_ensemble(seed=9)
        serial = pairwise_transfer_entropy(ensemble, history=1, k=4, n_jobs=1)
        pooled = pairwise_transfer_entropy(ensemble, history=1, k=4, n_jobs=2)
        np.testing.assert_array_equal(serial, pooled)


class TestCountsWithinContract:
    """Satellite: the helper must not rely on mutating shared distance blocks."""

    def test_repeated_calls_are_idempotent_and_do_not_mutate(self):
        rng = np.random.default_rng(21)
        block = per_variable_distances([rng.standard_normal((40, 2))])[0]
        epsilon = np.full(40, 0.8)
        snapshot = block.copy()
        first = _counts_within(block, epsilon)
        second = _counts_within(block, epsilon)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(block, snapshot)

    def test_self_pair_excluded_even_with_duplicates(self):
        # Three identical points: each sees the other two inside any eps > 0,
        # never itself.
        block = np.zeros((3, 3))
        counts = _counts_within(block, np.full(3, 0.5))
        np.testing.assert_array_equal(counts, [2, 2, 2])

    def test_zero_epsilon_counts_nothing(self):
        block = np.zeros((4, 4))
        np.testing.assert_array_equal(_counts_within(block, np.zeros(4)), np.zeros(4, dtype=int))


def _coupled_ar1(n_real, n_steps, a_x, a_y, c, seed, burn=50):
    """Stationary coupled AR(1) pair: y is driven by x with gain ``c``."""
    rng = np.random.default_rng(seed)
    total = n_steps + burn
    x = np.zeros((n_real, total, 1))
    y = np.zeros((n_real, total, 1))
    for t in range(1, total):
        x[:, t] = a_x * x[:, t - 1] + rng.standard_normal((n_real, 1))
        y[:, t] = a_y * y[:, t - 1] + c * x[:, t - 1] + rng.standard_normal((n_real, 1))
    return x[:, burn:], y[:, burn:]


def _ar1_transfer_entropy_bits(a_x: float, a_y: float, c: float) -> float:
    """Closed-form ``T_{x→y}`` for the coupled AR(1) pair (unit noise).

    ``T = I(y_{t+1}; x_t | y_t) = ½ log2(1 + c² Var[x](1 - ρ²))`` with ρ the
    stationary correlation of (x_t, y_t): conditioning on y_t leaves
    ``c² Var[x | y] = c² Var[x](1 - ρ²)`` of driver variance on top of the
    unit innovation of y.
    """
    var_x = 1.0 / (1.0 - a_x**2)
    cov_xy = a_x * c * var_x / (1.0 - a_x * a_y)
    var_y = (c * c * var_x + 2.0 * a_y * c * cov_xy + 1.0) / (1.0 - a_y**2)
    rho_sq = cov_xy**2 / (var_x * var_y)
    return 0.5 * np.log2(1.0 + c * c * var_x * (1.0 - rho_sq))


class TestAnalyticValues:
    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_lagged_mi_recovers_gaussian_value(self, backend):
        rho = 0.7
        expected = -0.5 * np.log2(1.0 - rho**2)
        rng = np.random.default_rng(0)
        n_real, n_steps = 300, 9
        x = rng.standard_normal((n_real, n_steps, 1))
        y = np.zeros((n_real, n_steps, 1))
        y[:, 1:] = rho * x[:, :-1] + np.sqrt(1.0 - rho**2) * rng.standard_normal(
            (n_real, n_steps - 1, 1)
        )
        value = time_lagged_mutual_information(x, y, lag=1, k=4, backend=backend)
        assert value == pytest.approx(expected, abs=0.08)

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_te_recovers_coupled_ar1_value(self, backend):
        a_x, a_y, c = 0.5, 0.5, 0.8
        expected = _ar1_transfer_entropy_bits(a_x, a_y, c)
        x, y = _coupled_ar1(500, 5, a_x, a_y, c, seed=1)
        value = transfer_entropy(x, y, history=1, k=4, backend=backend)
        assert value == pytest.approx(expected, abs=0.08)

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_te_of_independent_pair_is_near_zero(self, backend):
        x, y = _coupled_ar1(400, 5, 0.5, 0.5, 0.0, seed=2)
        value = transfer_entropy(x, y, history=1, k=4, backend=backend)
        assert abs(value) < 0.05

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_uniform_power_of_two_rescaling_is_exact(self, backend):
        # Scaling every series by the same power of two scales every distance
        # exactly, so neighbour identities and counts are bit-identical.
        x, y = _coupled_ar1(200, 5, 0.5, 0.5, 0.8, seed=3)
        base = transfer_entropy(x, y, history=1, k=4, backend=backend)
        scaled = transfer_entropy(4.0 * x, 4.0 * y, history=1, k=4, backend=backend)
        assert scaled == base

    @pytest.mark.parametrize("backend", ["dense", "kdtree"])
    def test_per_series_affine_rescaling_is_invariant(self, backend):
        # The kNN estimators are (asymptotically) invariant under separate
        # affine maps of each marginal; at finite m the joint max-metric
        # reweights the blocks, so allow estimator-level tolerance.
        x, y = _coupled_ar1(400, 5, 0.5, 0.5, 0.8, seed=4)
        base = transfer_entropy(x, y, history=1, k=4, backend=backend)
        moved = transfer_entropy(3.0 * x - 7.0, 0.25 * y + 11.0, history=1, k=4, backend=backend)
        assert moved == pytest.approx(base, abs=0.1)
        mi_base = time_lagged_mutual_information(x, y, lag=1, k=4, backend=backend)
        mi_moved = time_lagged_mutual_information(
            -2.0 * x + 1.5, 0.5 * y - 3.0, lag=1, k=4, backend=backend
        )
        assert mi_moved == pytest.approx(mi_base, abs=0.1)
