"""Tests for the persisted benchmark trajectory (benchmarks/trajectory.py).

The module under test lives next to the benchmarks (it is not part of the
``repro`` package — it must stay importable by a bare ``pytest benchmarks``
run and as a standalone script), so it is imported off the benchmarks
directory directly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import trajectory
from trajectory import (
    TrajectoryError,
    compare_run,
    gateable_headline,
    load_trajectory,
    record_run,
    runs_from_benchmark_report,
    trajectory_path,
)

MACHINE = "test-machine-a"
# Both series are large enough that a 2x slowdown clears the default
# absolute noise floor — the floor itself is pinned separately below.
SERIES = {"single/n1000/dense": 0.200, "single/n1000/sparse-cell": 0.080}


def record_baseline(root, series=SERIES, *, area="engine", mode="quick", machine=MACHINE, **kw):
    return record_run(area, series, mode=mode, root=root, machine=machine, **kw)


class TestRecord:
    def test_record_creates_a_valid_trajectory_file(self, tmp_path):
        path = record_baseline(tmp_path, commit="abc123", date="2026-08-07T00:00:00Z")
        assert path == trajectory_path("engine", tmp_path) == tmp_path / "BENCH_engine.json"
        document = load_trajectory(path)
        assert document["format"] == "repro-bench-trajectory"
        assert document["area"] == "engine"
        (run,) = document["runs"]
        assert run["commit"] == "abc123" and run["date"] == "2026-08-07T00:00:00Z"
        assert run["machine"] == MACHINE and run["mode"] == "quick"
        assert run["series"] == SERIES

    def test_record_is_append_only(self, tmp_path):
        record_baseline(tmp_path, commit="first")
        record_baseline(tmp_path, {"single/n1000/dense": 0.3}, commit="second")
        runs = load_trajectory(trajectory_path("engine", tmp_path))["runs"]
        assert [run["commit"] for run in runs] == ["first", "second"]
        assert runs[0]["series"] == SERIES  # earlier history preserved verbatim

    def test_record_headline_is_stored_but_not_required(self, tmp_path):
        record_baseline(tmp_path, headline={"n1000_speedup": 21.0})
        (run,) = load_trajectory(trajectory_path("engine", tmp_path))["runs"]
        assert run["headline"] == {"n1000_speedup": 21.0}

    def test_record_leaves_no_temporaries(self, tmp_path):
        record_baseline(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_engine.json"]

    def test_unknown_area_is_rejected(self, tmp_path):
        with pytest.raises(TrajectoryError, match="unknown benchmark area"):
            record_run("warp", SERIES, mode="quick", root=tmp_path)

    def test_empty_and_nonpositive_series_are_rejected(self, tmp_path):
        with pytest.raises(TrajectoryError, match="at least one series"):
            record_baseline(tmp_path, {})
        with pytest.raises(TrajectoryError, match="positive wall time"):
            record_baseline(tmp_path, {"bad": 0.0})
        with pytest.raises(TrajectoryError, match="positive wall time"):
            record_baseline(tmp_path, {"bad": float("nan")})

    def test_corrupt_trajectory_file_raises(self, tmp_path):
        trajectory_path("engine", tmp_path).write_text("{ not json")
        with pytest.raises(TrajectoryError, match="corrupt trajectory file"):
            record_baseline(tmp_path)


class TestCompare:
    def test_round_trip_passes(self, tmp_path):
        record_baseline(tmp_path)
        report = compare_run("engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE)
        assert report.gated and report.ok and report.regressions == []
        assert {entry.status for entry in report.entries} == {"ok"}

    def test_two_times_slowdown_fails_with_readable_report(self, tmp_path):
        # The deliberately-regressed fixture: every recorded series slowed 2x
        # must fail compare with a per-series report naming the culprit.
        record_baseline(tmp_path)
        slowed = {name: seconds * 2.0 for name, seconds in SERIES.items()}
        report = compare_run("engine", slowed, mode="quick", root=tmp_path, machine=MACHINE)
        assert report.gated and not report.ok
        assert {entry.name for entry in report.regressions} == set(SERIES)
        text = report.format()
        assert "REGRESSION" in text and "single/n1000/dense" in text
        assert "×" in text and "--bench-record" in text  # ratio + update path

    def test_single_regressed_series_is_enough_to_fail(self, tmp_path):
        record_baseline(tmp_path)
        slowed = dict(SERIES, **{"single/n1000/sparse-cell": SERIES["single/n1000/sparse-cell"] * 2})
        report = compare_run("engine", slowed, mode="quick", root=tmp_path, machine=MACHINE)
        assert not report.ok
        assert [entry.name for entry in report.regressions] == ["single/n1000/sparse-cell"]

    def test_noise_floor_absorbs_tiny_absolute_jitter(self, tmp_path):
        # 3x ratio but only 2 ms absolute: below the default floor, quick-mode
        # jitter of that shape must not flap the gate.
        record_baseline(tmp_path, {"tiny": 0.001})
        report = compare_run("engine", {"tiny": 0.003}, mode="quick", root=tmp_path, machine=MACHINE)
        assert report.ok
        (entry,) = report.entries
        assert entry.status == "within-noise"
        # ... while the same ratio above the floor is a real regression.
        record_baseline(tmp_path, {"big": 0.1}, area="domain")
        report = compare_run("domain", {"big": 0.3}, mode="quick", root=tmp_path, machine=MACHINE)
        assert not report.ok

    def test_threshold_is_configurable(self, tmp_path):
        record_baseline(tmp_path)
        slowed = {name: seconds * 1.5 for name, seconds in SERIES.items()}
        strict = compare_run(
            "engine", slowed, mode="quick", root=tmp_path, machine=MACHINE, threshold=1.4
        )
        lenient = compare_run(
            "engine", slowed, mode="quick", root=tmp_path, machine=MACHINE, threshold=2.0
        )
        assert not strict.ok and lenient.ok
        with pytest.raises(TrajectoryError, match="threshold"):
            compare_run("engine", SERIES, mode="quick", root=tmp_path, threshold=1.0)

    def test_improvement_and_new_and_missing_series_pass(self, tmp_path):
        record_baseline(tmp_path)
        current = {
            "single/n1000/dense": SERIES["single/n1000/dense"] / 4.0,  # faster
            "single/n5000/dense": 1.0,  # new series (e.g. widened sweep)
            # sparse-cell missing (e.g. narrowed sweep)
        }
        report = compare_run("engine", current, mode="quick", root=tmp_path, machine=MACHINE)
        assert report.ok
        statuses = {entry.name: entry.status for entry in report.entries}
        assert statuses == {
            "single/n1000/dense": "ok",
            "single/n5000/dense": "new",
            "single/n1000/sparse-cell": "missing",
        }

    def test_no_baseline_passes_vacuously_and_says_so(self, tmp_path):
        report = compare_run("engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE)
        assert report.ok and not report.gated and report.baseline is None
        assert "no recorded 'quick' baseline" in report.format()

    def test_modes_have_independent_baselines(self, tmp_path):
        record_baseline(tmp_path, mode="full")
        report = compare_run(
            "engine",
            {name: seconds * 10 for name, seconds in SERIES.items()},
            mode="quick",
            root=tmp_path,
            machine=MACHINE,
        )
        assert report.ok and report.baseline is None  # full runs never gate quick runs

    def test_machine_mismatch_downgrades_the_gate_to_advisory(self, tmp_path):
        record_baseline(tmp_path, machine="some-other-box")
        slowed = {name: seconds * 10 for name, seconds in SERIES.items()}
        report = compare_run("engine", slowed, mode="quick", root=tmp_path, machine=MACHINE)
        assert not report.gated
        assert report.ok  # wall times don't transfer across machines
        assert report.regressions  # ... but the slowdown is still reported
        assert "ADVISORY" in report.format()

    def test_gate_prefers_the_latest_same_machine_baseline(self, tmp_path):
        record_baseline(tmp_path, machine=MACHINE)
        # A newer run from another machine must not shadow the enforced one.
        record_baseline(
            tmp_path,
            {name: seconds / 100 for name, seconds in SERIES.items()},
            machine="beefy-ci-box",
        )
        report = compare_run("engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE)
        assert report.gated and report.ok
        assert report.baseline["machine"] == MACHINE

    def test_empty_baseline_series_reports_an_advisory_instead_of_crashing(self, tmp_path):
        # record_run refuses to write an empty series, but a hand-edited or
        # truncated trajectory can still carry one; compare must survive it
        # and say plainly that nothing was gated.
        document = {
            "format": "repro-bench-trajectory",
            "version": 1,
            "area": "engine",
            "runs": [
                {
                    "commit": "deadbeef",
                    "date": "2026-08-07T00:00:00Z",
                    "machine": MACHINE,
                    "mode": "quick",
                    "series": {},
                    "headline": {},
                }
            ],
        }
        trajectory_path("engine", tmp_path).write_text(json.dumps(document))
        report = compare_run("engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE)
        assert report.ok  # nothing comparable, so nothing can regress ...
        assert {entry.status for entry in report.entries} == {"new"}
        text = report.format()
        assert "ADVISORY" in text and "carries no series" in text  # ... but it is loud
        assert "--bench-record" in text  # and says how to repair the trajectory

    def test_machine_fingerprint_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MACHINE", "pinned-label")
        assert trajectory.machine_fingerprint() == "pinned-label"
        record_baseline(tmp_path, machine="pinned-label")
        # compare_run derives the fingerprint from the env when not given.
        report = compare_run("engine", SERIES, mode="quick", root=tmp_path)
        assert report.gated and report.ok


class TestHeadlineGate:
    """The speedup/ratio headline numbers are gated machine-independently."""

    HEADLINE = {"shared_kdtree_speedup": 10.0, "pooled_samples": 4000}

    def test_gateable_headline_selects_ratio_like_numeric_keys(self):
        assert gateable_headline(
            {
                "shared_kdtree_speedup": 10.0,
                "cell_RATIO": 3,  # case-insensitive match, int accepted
                "pooled_samples": 4000,  # not ratio-like
                "speedup_claimed": True,  # bool is not a ratio
                "speedup_label": "10x",  # nor is a string
                "inf_speedup": float("inf"),  # unusable as a baseline
                "negative_ratio": -2.0,
            }
        ) == {"shared_kdtree_speedup": 10.0, "cell_RATIO": 3.0}
        assert gateable_headline(None) == {}

    def test_round_trip_headline_passes(self, tmp_path):
        record_baseline(tmp_path, headline=self.HEADLINE)
        report = compare_run(
            "engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE,
            headline=self.HEADLINE,
        )
        assert report.ok
        (entry,) = report.headline_entries  # pooled_samples is not gated
        assert entry.name == "shared_kdtree_speedup" and entry.status == "ok"

    def test_collapsed_speedup_fails_even_across_machines(self, tmp_path):
        # The wall-time gate is advisory across machines, but a speedup is a
        # ratio of two timings from one box — its collapse must fail anywhere.
        record_baseline(tmp_path, machine="some-other-box", headline=self.HEADLINE)
        report = compare_run(
            "engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE,
            headline={"shared_kdtree_speedup": 2.0},
        )
        assert not report.gated  # wall-time gate: advisory
        assert not report.ok  # headline gate: enforced regardless
        (entry,) = report.headline_regressions
        assert entry.name == "shared_kdtree_speedup"
        text = report.format()
        assert "REGRESSION" in text and "shared_kdtree_speedup" in text

    def test_noise_floor_absorbs_small_ratio_drops(self, tmp_path):
        # 1.2 -> 0.75 breaches the /1.5 threshold but only drops 0.45 < 0.5.
        record_baseline(tmp_path, headline={"x_ratio": 1.2})
        report = compare_run(
            "engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE,
            headline={"x_ratio": 0.75},
        )
        assert report.ok
        (entry,) = report.headline_entries
        assert entry.status == "within-noise"

    def test_new_and_missing_headline_keys_pass(self, tmp_path):
        record_baseline(tmp_path, headline={"old_speedup": 5.0})
        report = compare_run(
            "engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE,
            headline={"new_speedup": 3.0},
        )
        assert report.ok
        statuses = {entry.name: entry.status for entry in report.headline_entries}
        assert statuses == {"new_speedup": "new", "old_speedup": "missing"}

    def test_headline_baseline_skips_runs_without_gateable_values(self, tmp_path):
        # A record pass that omitted extra_info must not reset the baseline.
        record_baseline(tmp_path, headline=self.HEADLINE, commit="with-headline")
        record_baseline(tmp_path, headline={"pooled_samples": 4000}, commit="without")
        report = compare_run(
            "engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE,
            headline={"shared_kdtree_speedup": 2.0},
        )
        assert report.headline_baseline["commit"] == "with-headline"
        assert not report.ok

    def test_no_headline_given_keeps_the_old_behaviour(self, tmp_path):
        record_baseline(tmp_path, headline=self.HEADLINE)
        report = compare_run("engine", SERIES, mode="quick", root=tmp_path, machine=MACHINE)
        assert report.ok and report.headline_entries == []

    def test_headline_threshold_and_floor_are_validated(self, tmp_path):
        record_baseline(tmp_path, headline=self.HEADLINE)
        with pytest.raises(TrajectoryError, match="headline threshold"):
            compare_run("engine", SERIES, mode="quick", root=tmp_path,
                        headline=self.HEADLINE, headline_threshold=1.0)
        with pytest.raises(TrajectoryError, match="headline noise floor"):
            compare_run("engine", SERIES, mode="quick", root=tmp_path,
                        headline=self.HEADLINE, headline_noise_floor=-0.1)

    def test_cli_compare_fails_on_a_headline_regression(self, tmp_path, monkeypatch, capsys):
        # Identical wall times, collapsed speedup: only the headline gate
        # can catch this, and it must flip the CLI exit code.
        monkeypatch.setenv("REPRO_BENCH_MACHINE", MACHINE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_report()))
        assert trajectory.main(
            ["record", "--report", str(baseline), "--mode", "quick", "--root", str(tmp_path)]
        ) == 0
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(make_report(headline_scale=0.2)))
        code = trajectory.main(
            ["compare", "--report", str(regressed), "--mode", "quick", "--root", str(tmp_path)]
        )
        assert code == 1
        assert "headline" in capsys.readouterr().out


def make_report(scale: float = 1.0, headline_scale: float = 1.0) -> dict:
    def bench(name, seconds, extra):
        extra = {key: value * headline_scale for key, value in extra.items()}
        return {"name": name, "stats": {"min": seconds * scale}, "extra_info": extra}

    return {
        "benchmarks": [
            bench("test_engine_scaling", 1.2, {"n1000_speedup": 21.0}),
            bench("test_domain_density", 0.8, {"L150_cell_speedup": 8.6}),
            bench("test_infodynamics_scaling", 2.5, {"shared_kdtree_speedup": 3.9}),
            bench("test_fig05_single_type_f1", 9.9, {}),  # unmapped: ignored
        ]
    }


class TestBenchmarkReportNormalisation:
    def test_maps_the_three_areas_and_ignores_figure_benchmarks(self):
        per_area = runs_from_benchmark_report(make_report())
        assert set(per_area) == {"engine", "domain", "infodynamics"}
        assert per_area["engine"]["series"] == {"pytest/test_engine_scaling/min": 1.2}
        assert per_area["engine"]["headline"] == {"n1000_speedup": 21.0}

    def test_cli_record_then_compare_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MACHINE", MACHINE)
        report_path = tmp_path / "benchmark_report.json"
        report_path.write_text(json.dumps(make_report()))
        argv = ["--report", str(report_path), "--mode", "quick", "--root", str(tmp_path)]
        assert trajectory.main(["record", *argv]) == 0
        for area in trajectory.AREAS:
            assert trajectory_path(area, tmp_path).is_file()
        assert trajectory.main(["compare", *argv]) == 0

    def test_cli_compare_fails_on_a_regressed_report(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_MACHINE", MACHINE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_report()))
        assert trajectory.main(
            ["record", "--report", str(baseline), "--mode", "quick", "--root", str(tmp_path)]
        ) == 0
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(make_report(scale=2.0)))
        code = trajectory.main(
            ["compare", "--report", str(regressed), "--mode", "quick", "--root", str(tmp_path)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_show_lists_recorded_runs(self, tmp_path, capsys):
        record_baseline(tmp_path, commit="abc123")
        assert trajectory.main(["show", "--area", "engine", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 recorded run(s)" in out and "abc123" in out


class TestCommittedTrajectories:
    """The seeded repo-root BENCH files must stay loadable and comparable."""

    @pytest.mark.parametrize("area", trajectory.AREAS)
    def test_committed_file_has_a_quick_baseline(self, area):
        path = trajectory_path(area)
        assert path.is_file(), f"missing committed trajectory {path.name}"
        document = load_trajectory(path)
        assert document["area"] == area
        baseline = trajectory.latest_baseline(document, mode="quick")
        assert baseline is not None, f"{path.name} has no recorded quick-mode run"
        assert baseline["series"], f"{path.name} quick baseline records no series"
