"""Tests for the domain abstraction (repro.particles.domain) and its wiring.

Covers the geometry primitives themselves (wrap/displacement on the free
plane, periodic torus and reflecting box), their integration into
``SimulationConfig`` / ``ParticleSystem`` / ``EnsembleSimulator``, the
fixed-box ``"auto"`` heuristic on bounded domains, and — critically — the
content-hash compatibility contract: free-space configurations hash exactly
as they did before domains existed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import unit_content_hash
from repro.particles.domain import (
    DOMAINS,
    ChannelDomain,
    FreeDomain,
    PeriodicDomain,
    ReflectingDomain,
    get_domain,
)
from repro.particles.engine import AdaptiveDriftEngine, engine_for_config, make_engine
from repro.particles.ensemble import EnsembleSimulator, initial_ensemble_for
from repro.particles.init_conditions import uniform_box, uniform_box_ensemble
from repro.particles.model import ParticleSystem, SimulationConfig, initial_positions_for
from repro.particles.types import InteractionParams


def _config(**overrides) -> SimulationConfig:
    base = dict(
        type_counts=(6, 6),
        params=InteractionParams.clustering(2, self_distance=0.8, cross_distance=1.6, k=2.0),
        cutoff=1.5,
        dt=0.05,
        n_steps=4,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestGetDomain:
    def test_free_is_default_and_singleton_like(self):
        assert get_domain(None).name == "free"
        assert get_domain("free") == FreeDomain()
        assert get_domain("FREE").spec == "free"

    def test_parses_bounded_specs(self):
        periodic = get_domain("periodic:8")
        assert isinstance(periodic, PeriodicDomain)
        assert periodic.box == 8.0
        assert periodic.spec == "periodic:8.0"
        reflecting = get_domain("reflecting:2.5")
        assert isinstance(reflecting, ReflectingDomain)
        assert reflecting.box == 2.5

    def test_instances_pass_through(self):
        domain = PeriodicDomain(box=3.0)
        assert get_domain(domain) is domain

    def test_spec_round_trips(self):
        for spec in ("free", "periodic:8.0", "reflecting:0.75"):
            assert get_domain(get_domain(spec).spec).spec == get_domain(spec).spec

    def test_rejects_bad_specs(self):
        with pytest.raises(KeyError, match="unknown domain"):
            get_domain("torus:3")
        with pytest.raises(ValueError, match="needs a box side"):
            get_domain("periodic")
        with pytest.raises(ValueError, match="invalid box side"):
            get_domain("periodic:abc")
        with pytest.raises(ValueError, match="takes no box"):
            get_domain("free:3")
        with pytest.raises(ValueError, match="positive finite"):
            get_domain("periodic:-2")
        with pytest.raises(ValueError, match="positive finite"):
            get_domain("reflecting:inf")

    def test_registry_names(self):
        assert set(DOMAINS) == {"free", "periodic", "reflecting", "channel"}

    def test_parses_anisotropic_and_channel_specs(self):
        periodic = get_domain("periodic:8,4")
        assert isinstance(periodic, PeriodicDomain)
        assert periodic.extents == (8.0, 4.0)
        assert periodic.periodic_axes == (True, True)
        assert periodic.spec == "periodic:8.0,4.0"
        channel = get_domain("channel:8,4")
        assert isinstance(channel, ChannelDomain)
        assert channel.periodic_axes == (True, False)
        assert channel.spec == "channel:8.0,4.0"
        reflecting = get_domain("reflecting:9,3")
        assert reflecting.extents == (9.0, 3.0)
        assert reflecting.periodic_axes == (False, False)

    def test_square_pair_canonicalises_to_scalar_spec(self):
        # Satellite pin: 'periodic:L,L' and 'periodic:L' are the SAME domain
        # with the SAME canonical spec, so they hash identically everywhere.
        assert get_domain("periodic:8,8").spec == "periodic:8.0"
        assert get_domain("periodic:8,8") == get_domain("periodic:8")
        assert get_domain("channel:5,5").spec == "channel:5.0"
        assert get_domain("reflecting:2.5,2.5") == get_domain("reflecting:2.5")

    def test_square_boxes_keep_a_scalar_box_attribute(self):
        # Existing call sites read `domain.box` as a float; the per-axis
        # refactor must not change that for square boxes.
        assert get_domain("periodic:8").box == 8.0
        assert get_domain("periodic:8,8").box == 8.0
        assert get_domain("periodic:8,4").box == (8.0, 4.0)

    def test_rejects_bad_per_axis_specs(self):
        with pytest.raises(ValueError, match="one box side or an Lx,Ly pair"):
            get_domain("periodic:1,2,3")
        with pytest.raises(ValueError, match="one box side or an Lx,Ly pair"):
            get_domain("periodic:8,,4")
        with pytest.raises(ValueError, match="needs a box side"):
            get_domain("channel:")
        with pytest.raises(ValueError, match="positive finite"):
            get_domain("periodic:8,-1")
        with pytest.raises(ValueError, match="positive finite"):
            get_domain("channel:4,nan")
        with pytest.raises(ValueError, match="invalid box side"):
            get_domain("periodic:8,abc")


class TestFreeDomain:
    def test_wrap_is_the_identity_object(self):
        positions = np.random.default_rng(0).normal(size=(7, 2))
        assert FreeDomain().wrap(positions) is positions

    def test_displacement_is_plain_subtraction(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(2, 9, 2))
        np.testing.assert_array_equal(FreeDomain().displacement(a, b), a - b)

    def test_not_bounded(self):
        assert not FreeDomain().bounded and FreeDomain().box is None


class TestPeriodicDomain:
    def test_wrap_lands_in_the_half_open_box(self):
        domain = PeriodicDomain(box=5.0)
        positions = np.array([[-0.1, 5.0], [12.3, -7.0], [4.999, 0.0], [-1e-18, 2.5]])
        wrapped = domain.wrap(positions)
        assert np.all(wrapped >= 0.0) and np.all(wrapped < 5.0)

    def test_wrap_is_bitwise_idempotent(self):
        domain = PeriodicDomain(box=3.0)
        wrapped = domain.wrap(np.random.default_rng(2).uniform(-10, 10, size=(50, 2)))
        np.testing.assert_array_equal(domain.wrap(wrapped), wrapped)

    def test_minimum_image_across_the_seam(self):
        domain = PeriodicDomain(box=10.0)
        delta = domain.displacement(np.array([0.5, 0.0]), np.array([9.5, 0.0]))
        np.testing.assert_allclose(delta, [1.0, 0.0])

    def test_displacement_bounded_by_half_the_box(self):
        domain = PeriodicDomain(box=4.0)
        rng = np.random.default_rng(3)
        delta = domain.displacement(rng.uniform(-9, 9, (40, 2)), rng.uniform(-9, 9, (40, 2)))
        assert np.all(np.abs(delta) <= 2.0)

    def test_displacement_invariant_under_image_shifts(self):
        domain = PeriodicDomain(box=6.0)
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 6, size=(20, 2))
        b = rng.uniform(0, 6, size=(20, 2))
        reference = domain.displacement(a, b)
        np.testing.assert_allclose(domain.displacement(a + 6.0, b), reference, atol=1e-12)
        np.testing.assert_allclose(domain.displacement(a, b - 12.0), reference, atol=1e-12)

    def test_cutoff_validation(self):
        domain = PeriodicDomain(box=6.0)
        domain.validate_cutoff(3.0)  # exactly L/2 is fine
        domain.validate_cutoff(None)
        domain.validate_cutoff(float("inf"))
        with pytest.raises(ValueError, match="exceeds half the periodic box"):
            domain.validate_cutoff(3.2)


class TestReflectingDomain:
    def test_wrap_reflects_into_the_closed_box(self):
        domain = ReflectingDomain(box=2.0)
        positions = np.array([[-0.5, 1.0], [2.5, 0.0], [1.0, 1.0], [4.5, -3.0]])
        np.testing.assert_allclose(
            domain.wrap(positions), [[0.5, 1.0], [1.5, 0.0], [1.0, 1.0], [0.5, 1.0]]
        )

    def test_wrap_handles_multi_box_excursions(self):
        domain = ReflectingDomain(box=1.0)
        wrapped = domain.wrap(np.random.default_rng(5).uniform(-37, 41, size=(100, 2)))
        assert np.all(wrapped >= 0.0) and np.all(wrapped <= 1.0)

    def test_displacement_is_free(self):
        domain = ReflectingDomain(box=3.0)
        a = np.array([0.2, 2.9])
        b = np.array([2.8, 0.1])
        np.testing.assert_array_equal(domain.displacement(a, b), a - b)

    def test_any_cutoff_is_fine(self):
        ReflectingDomain(box=1.0).validate_cutoff(100.0)


class TestAnisotropicGeometry:
    def test_wrap_is_per_axis(self):
        domain = get_domain("periodic:8,4")
        wrapped = domain.wrap(np.array([[9.0, -1.0], [-0.5, 4.5]]))
        np.testing.assert_allclose(wrapped, [[1.0, 3.0], [7.5, 0.5]])

    def test_minimum_image_uses_each_axis_length(self):
        domain = get_domain("periodic:8,4")
        delta = domain.displacement(np.array([[7.5, 3.5]]), np.array([[0.5, 0.5]]))
        np.testing.assert_allclose(delta, [[-1.0, -1.0]])

    def test_square_pair_matches_scalar_bitwise(self):
        # The legacy full-array arithmetic branch must be taken for L,L —
        # identical code path, identical bits.
        rng = np.random.default_rng(7)
        points = rng.normal(scale=10.0, size=(64, 2))
        scalar = get_domain("periodic:6")
        pair = get_domain("periodic:6,6")
        np.testing.assert_array_equal(scalar.wrap(points), pair.wrap(points))
        a, b = rng.normal(scale=10.0, size=(2, 32, 2))
        np.testing.assert_array_equal(scalar.displacement(a, b), pair.displacement(a, b))

    def test_cutoff_validated_against_smallest_periodic_axis(self):
        get_domain("periodic:8,4").validate_cutoff(2.0)  # == min(L)/2
        with pytest.raises(ValueError, match="half the periodic box"):
            get_domain("periodic:8,4").validate_cutoff(2.5)
        # The reflecting axis of a channel never constrains the cutoff.
        get_domain("channel:8,2").validate_cutoff(4.0)
        with pytest.raises(ValueError, match="half the periodic box"):
            get_domain("channel:8,2").validate_cutoff(4.5)


class TestChannelDomain:
    def test_wrap_mixes_modes_per_axis(self):
        domain = get_domain("channel:8,4")
        # x wraps mod 8; y reflects off the walls at 0 and 4.
        wrapped = domain.wrap(np.array([[9.0, 4.5], [-1.0, -0.5], [3.0, 2.0]]))
        np.testing.assert_allclose(wrapped, [[1.0, 3.5], [7.0, 0.5], [3.0, 2.0]])

    def test_displacement_wraps_x_only(self):
        domain = get_domain("channel:8,4")
        delta = domain.displacement(np.array([[7.5, 3.5]]), np.array([[0.5, 0.5]]))
        np.testing.assert_allclose(delta, [[-1.0, 3.0]])

    def test_periodic_axes_flags(self):
        assert get_domain("channel:8,4").periodic_axes == (True, False)
        assert get_domain("channel:8,4").bounded


class TestSimulationConfigIntegration:
    def test_domain_normalised_to_canonical_spec(self):
        assert _config(domain="periodic:8").domain == "periodic:8.0"
        assert _config(domain=PeriodicDomain(box=8.0)).domain == "periodic:8.0"
        assert _config().domain == "free"

    def test_resolved_domain_and_radius(self):
        config = _config(domain="periodic:8")
        assert isinstance(config.resolved_domain, PeriodicDomain)
        assert config.domain_radius == 4.0
        free = _config()
        assert free.domain_radius == free.disc_radius

    def test_periodic_rejects_cutoff_past_half_box(self):
        with pytest.raises(ValueError, match="exceeds half the periodic box"):
            _config(domain="periodic:2.0")  # base cutoff 1.5 > L/2 = 1.0
        _config(domain="periodic:3.0")  # exactly L/2 passes
        _config(domain="periodic:2.0", cutoff=None)  # unconstrained passes

    def test_invalid_domain_spec_raises_at_construction(self):
        with pytest.raises(KeyError, match="unknown domain"):
            _config(domain="moebius:3")

    def test_to_dict_omits_free_and_round_trips_bounded(self):
        free = _config()
        assert "domain" not in free.to_dict()
        bounded = _config(domain="reflecting:5")
        payload = bounded.to_dict()
        assert payload["domain"] == "reflecting:5.0"
        assert SimulationConfig.from_dict(payload).to_dict() == payload
        assert SimulationConfig.from_dict(free.to_dict()).to_dict() == free.to_dict()


class TestHashCompatibility:
    def test_free_space_hash_is_byte_for_byte_unchanged(self):
        # Pinned against the value computed before the domain field existed
        # (PR 4 era): a warm RunStore keeps serving free-space cache hits.
        from repro.core.experiments import fig4_multi_information, fig9_radius_sweep

        assert (
            unit_content_hash(fig4_multi_information())
            == "6e0b73dc24217114046e502520ab5f06815e0831a761fcda9809bd8ef33ee007"
        )
        assert (
            unit_content_hash(fig9_radius_sweep()[0])
            == "7079e7e13072e70a848220c8b3101443c6736ae7ca0b992b6cec326073982c4f"
        )

    def test_domain_enters_the_hash(self):
        from repro.core.experiments import fig4_multi_information

        spec = fig4_multi_information()
        wrapped = spec.with_updates(
            simulation=spec.simulation.with_updates(domain="periodic:12")
        )
        reflecting = spec.with_updates(
            simulation=spec.simulation.with_updates(domain="reflecting:12")
        )
        hashes = {unit_content_hash(spec), unit_content_hash(wrapped), unit_content_hash(reflecting)}
        assert len(hashes) == 3

    def test_square_pair_hashes_identically_to_scalar(self):
        # Back-compat pin: a pre-refactor store keyed on 'periodic:12.0'
        # keeps serving hits for configs now written as 'periodic:12,12'.
        from repro.core.experiments import fig4_multi_information

        spec = fig4_multi_information()
        scalar = spec.with_updates(
            simulation=spec.simulation.with_updates(domain="periodic:12")
        )
        pair = spec.with_updates(
            simulation=spec.simulation.with_updates(domain="periodic:12,12")
        )
        assert unit_content_hash(scalar) == unit_content_hash(pair)
        assert scalar.simulation.domain == pair.simulation.domain == "periodic:12.0"

    def test_anisotropic_and_channel_domains_hash_distinctly(self):
        from repro.core.experiments import fig4_multi_information

        spec = fig4_multi_information()
        variants = [
            spec.with_updates(simulation=spec.simulation.with_updates(domain=d))
            for d in ("periodic:12", "periodic:12,14", "channel:12,14", "reflecting:12,14")
        ]
        hashes = {unit_content_hash(v) for v in variants}
        assert len(hashes) == 4


class TestInitialConditions:
    def test_uniform_box_bounds_and_shape(self):
        points = uniform_box(500, 3.0, rng=0)
        assert points.shape == (500, 2)
        assert np.all(points >= 0.0) and np.all(points < 3.0)
        batch = uniform_box_ensemble(4, 50, 2.0, rng=1)
        assert batch.shape == (4, 50, 2)
        assert np.all(batch >= 0.0) and np.all(batch < 2.0)

    def test_uniform_box_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            uniform_box(-1, 1.0)
        with pytest.raises(ValueError):
            uniform_box(3, 0.0)
        with pytest.raises(ValueError):
            uniform_box_ensemble(2, 3, -1.0)

    def test_uniform_box_accepts_per_axis_extents(self):
        points = uniform_box(400, (6.0, 2.0), rng=0)
        assert points.shape == (400, 2)
        assert np.all(points[:, 0] < 6.0) and np.all(points[:, 1] < 2.0)
        assert np.all(points >= 0.0)
        # The x spread should comfortably exceed y's for a 3:1 box.
        assert points[:, 0].max() > 4.0 and points[:, 1].max() < 2.0
        batch = uniform_box_ensemble(3, 40, (6.0, 2.0), rng=1)
        assert np.all(batch[..., 0] < 6.0) and np.all(batch[..., 1] < 2.0)

    def test_uniform_box_square_pair_matches_scalar_stream(self):
        # (L, L) must consume the RNG exactly like the scalar L path so that
        # square-box trajectories stay bit-identical across the refactor.
        np.testing.assert_array_equal(
            uniform_box(100, 3.0, rng=5), uniform_box(100, (3.0, 3.0), rng=5)
        )
        np.testing.assert_array_equal(
            uniform_box_ensemble(4, 25, 3.0, rng=5),
            uniform_box_ensemble(4, 25, (3.0, 3.0), rng=5),
        )

    def test_uniform_box_rejects_bad_extent_pairs(self):
        with pytest.raises(ValueError):
            uniform_box(3, (1.0, -1.0))
        with pytest.raises(ValueError):
            uniform_box(3, (1.0, 2.0, 3.0))

    def test_config_dispatch(self):
        bounded = _config(domain="periodic:3.0")
        points = initial_positions_for(bounded, rng=0)
        assert np.all(points >= 0.0) and np.all(points < 3.0)
        batch = initial_ensemble_for(bounded, 5, np.random.default_rng(0))
        assert batch.shape == (5, bounded.n_particles, 2)
        assert np.all(batch >= 0.0) and np.all(batch < 3.0)
        free = _config()
        disc = initial_positions_for(free, rng=0)
        assert np.all(np.hypot(disc[:, 0], disc[:, 1]) <= free.disc_radius + 1e-12)


def _assert_in_box(positions: np.ndarray, spec: str) -> None:
    extents = get_domain(spec).extents
    assert np.all(positions >= 0.0)
    for axis in range(2):
        assert np.all(positions[..., axis] <= extents[axis]), (spec, axis)


@pytest.mark.parametrize(
    "spec",
    [
        "periodic:6.0",
        "reflecting:6.0",
        "periodic:6.0,3.5",
        "channel:6.0,3.5",
        "reflecting:6.0,3.5",
    ],
)
class TestSimulationOnBoundedDomains:
    def test_particle_system_stays_in_the_box(self, spec):
        system = ParticleSystem(_config(domain=spec, n_steps=6), rng=0)
        trajectory = system.run()
        _assert_in_box(trajectory.positions, spec)

    def test_external_initial_positions_are_wrapped(self, spec):
        config = _config(domain=spec)
        raw = np.random.default_rng(1).uniform(-4.0, 10.0, size=(config.n_particles, 2))
        system = ParticleSystem(config, rng=0, initial_positions=raw)
        _assert_in_box(system.positions, spec)

    def test_single_run_bit_identical_dense_vs_sparse(self, spec):
        config = _config(domain=spec, n_steps=5)
        trajectories = {}
        for engine, backend in (("dense", "kdtree"), ("sparse", "cell"), ("sparse", "kdtree")):
            system = ParticleSystem(
                config.with_updates(engine=engine, neighbor_backend=backend), rng=42
            )
            trajectories[(engine, backend)] = system.run().positions
        reference = trajectories[("dense", "kdtree")]
        for key, positions in trajectories.items():
            np.testing.assert_array_equal(positions, reference, err_msg=str(key))

    def test_ensemble_bit_identical_dense_vs_sparse(self, spec):
        config = _config(domain=spec, n_steps=3)
        dense = EnsembleSimulator(config.with_updates(engine="dense"), 5, seed=9).run()
        for backend in ("brute", "cell", "kdtree"):
            sparse = EnsembleSimulator(
                config.with_updates(engine="sparse", neighbor_backend=backend), 5, seed=9
            ).run()
            np.testing.assert_array_equal(
                sparse.positions, dense.positions, err_msg=backend
            )
            _assert_in_box(sparse.positions, spec)

    def test_heun_integrator_also_confines(self, spec):
        config = _config(domain=spec, integrator="heun", n_steps=4)
        trajectory = ParticleSystem(config, rng=3).run()
        _assert_in_box(trajectory.positions, spec)


class TestBoundedAutoHeuristic:
    def test_heuristic_radius_uses_smallest_extent(self):
        # Satellite pin: the adaptive engine's characteristic radius on a
        # bounded domain is min(Lx, Ly)/2 — the binding dimension — not a
        # mean or the x side.
        from repro.particles.engine import heuristic_domain_radius

        assert heuristic_domain_radius(get_domain("periodic:8,4"), None) == 2.0
        assert heuristic_domain_radius(get_domain("channel:8,4"), None) == 2.0
        assert heuristic_domain_radius(get_domain("reflecting:3,9"), None) == 1.5
        assert heuristic_domain_radius(get_domain("periodic:8"), None) == 4.0
        assert heuristic_domain_radius(get_domain("free"), 7.5) == 7.5

    def test_auto_uses_box_not_live_bounding_box(self):
        params = InteractionParams.single_type()
        types = np.zeros(400, dtype=np.int64)
        # Box of side 40 -> characteristic radius 20; cutoff 2 prunes hard.
        engine = make_engine(
            "auto", types=types, params=params, scaling="F2", cutoff=2.0,
            adaptive=True, domain="periodic:40.0",
        )
        assert isinstance(engine, AdaptiveDriftEngine)
        assert engine.resolved == "sparse"
        # A tightly clustered snapshot would flip a free-space heuristic to
        # dense; the bounded domain pins the characteristic radius to L/2.
        clustered = np.full((400, 2), 1.0) + np.random.default_rng(0).normal(
            scale=0.01, size=(400, 2)
        )
        assert engine.reresolve(clustered) == "sparse"

    def test_small_box_resolves_dense(self):
        params = InteractionParams.single_type()
        types = np.zeros(400, dtype=np.int64)
        # Cutoff covers most of the tiny box: nothing to prune.
        engine = make_engine(
            "auto", types=types, params=params, scaling="F2", cutoff=2.5,
            adaptive=True, domain="reflecting:3.0",
        )
        assert engine.resolved == "dense"

    def test_engine_for_config_carries_the_domain(self):
        config = _config(domain="periodic:6.0", engine="sparse", neighbor_backend="cell")
        engine = engine_for_config(config)
        assert engine.domain.spec == "periodic:6.0"
        adaptive = engine_for_config(_config(domain="reflecting:6.0"))
        assert adaptive.domain.spec == "reflecting:6.0"


class TestPeriodicSteadyState:
    def test_wrapped_run_keeps_finite_positions_and_forces(self):
        # A density-controlled steady state free space cannot express: the
        # torus holds the collective at fixed global density forever.
        config = _config(domain="periodic:5.0", n_steps=10, engine="sparse",
                         neighbor_backend="cell")
        simulator = EnsembleSimulator(config, 4, seed=11)
        trajectory = simulator.run()
        assert np.all(np.isfinite(trajectory.positions))
        stats = simulator.last_stats
        assert stats is not None and np.all(np.isfinite(stats.mean_force_norm))
