"""Tests for repro.particles.engine — the unified dense/sparse drift engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.particles.engine import (
    DRIFT_ENGINES,
    SPARSE_AUTO_MIN_PARTICLES,
    AdaptiveDriftEngine,
    DenseDriftEngine,
    DriftEngine,
    SparseDriftEngine,
    collective_radius,
    engine_for_config,
    make_engine,
    resolve_engine,
    sparse_drift_batch,
)
from repro.particles.forces import drift_batch, drift_single
from repro.particles.model import SimulationConfig
from repro.particles.neighbors import NEIGHBOR_BACKENDS
from repro.particles.types import InteractionParams


def _random_system(seed: int, n: int = 20, n_types: int = 3, m: int = 4):
    rng = np.random.default_rng(seed)
    params = InteractionParams.random(n_types, rng=rng)
    types = rng.integers(0, n_types, size=n)
    batch = rng.uniform(-4, 4, size=(m, n, 2))
    return batch, types, params


class TestDenseSparseEquivalence:
    """The acceptance criterion: dense and sparse drift agree to <= 1e-10."""

    @pytest.mark.parametrize("backend", sorted(NEIGHBOR_BACKENDS))
    @pytest.mark.parametrize("force", ["F1", "F2"])
    def test_batch_kernel_matches_dense(self, backend, force):
        batch, types, params = _random_system(seed=3)
        cutoff = 2.5
        dense = drift_batch(batch, types, params, force, cutoff=cutoff)
        sparse = sparse_drift_batch(batch, types, params, force, cutoff, backend)
        np.testing.assert_allclose(sparse, dense, rtol=0, atol=1e-10)

    @pytest.mark.parametrize("backend", sorted(NEIGHBOR_BACKENDS))
    @pytest.mark.parametrize("force", ["F1", "F2"])
    def test_single_kernel_matches_dense(self, backend, force):
        batch, types, params = _random_system(seed=4)
        positions = batch[0]
        cutoff = 2.0
        dense_engine = DenseDriftEngine(types, params, force, cutoff)
        sparse_engine = SparseDriftEngine(types, params, force, cutoff, neighbors=backend)
        np.testing.assert_allclose(
            sparse_engine.drift(positions), dense_engine.drift(positions), rtol=0, atol=1e-10
        )

    @pytest.mark.parametrize("backend", sorted(NEIGHBOR_BACKENDS))
    def test_kernels_are_bit_identical(self, backend):
        # Stronger than the 1e-10 criterion: the sparse kernel consumes pairs
        # in lexicographic order, reproducing the dense summation order
        # exactly.  This is what makes engine choice not affect trajectories.
        batch, types, params = _random_system(seed=5, n=24, m=6)
        cutoff = 2.5
        dense = drift_batch(batch, types, params, "F1", cutoff=cutoff)
        sparse = sparse_drift_batch(batch, types, params, "F1", cutoff, backend)
        np.testing.assert_array_equal(sparse, dense)

    def test_unconstrained_cutoff_still_matches(self):
        batch, types, params = _random_system(seed=6, n=10)
        dense = drift_batch(batch, types, params, "F2", cutoff=None)
        sparse = sparse_drift_batch(batch, types, params, "F2", None, "brute")
        np.testing.assert_allclose(sparse, dense, rtol=0, atol=1e-10)

    def test_no_interacting_pairs_gives_zero_drift(self):
        params = InteractionParams.single_type(k=1.0, r=1.0)
        positions = np.array([[[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]]])
        types = np.zeros(3, dtype=int)
        drift = sparse_drift_batch(positions, types, params, "F1", 1.0, "kdtree")
        np.testing.assert_array_equal(drift, np.zeros_like(positions))


class TestEngineCallDispatch:
    def test_call_dispatches_on_rank(self):
        batch, types, params = _random_system(seed=7, n=8, m=3)
        engine = make_engine("sparse", types=types, params=params, scaling="F1", cutoff=2.0)
        np.testing.assert_array_equal(engine(batch), engine.drift_batch(batch))
        np.testing.assert_array_equal(engine(batch[0]), engine.drift(batch[0]))

    def test_call_rejects_bad_rank(self):
        batch, types, params = _random_system(seed=8, n=8)
        engine = make_engine("dense", types=types, params=params, scaling="F1")
        with pytest.raises(ValueError):
            engine(np.zeros(4))

    def test_batch_kernel_validates_shapes(self):
        _, types, params = _random_system(seed=9, n=8)
        with pytest.raises(ValueError):
            sparse_drift_batch(np.zeros((8, 2)), types, params, "F1", 1.0, "brute")
        with pytest.raises(ValueError):
            sparse_drift_batch(np.zeros((2, 9, 2)), types, params, "F1", 1.0, "brute")


class TestResolveEngine:
    def test_explicit_names_pass_through(self):
        for name in ("dense", "sparse"):
            assert resolve_engine(name, n_particles=5, cutoff=None) == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            resolve_engine("octree", n_particles=5, cutoff=1.0)

    def test_auto_is_dense_without_cutoff(self):
        assert resolve_engine("auto", n_particles=10_000, cutoff=None) == "dense"
        assert resolve_engine("auto", n_particles=10_000, cutoff=np.inf) == "dense"

    def test_auto_is_dense_for_small_collectives(self):
        assert (
            resolve_engine("auto", n_particles=SPARSE_AUTO_MIN_PARTICLES - 1, cutoff=1.0)
            == "dense"
        )

    def test_auto_is_sparse_for_large_pruning_cutoff(self):
        assert (
            resolve_engine(
                "auto", n_particles=1000, cutoff=2.0, domain_radius=17.8
            )
            == "sparse"
        )

    def test_auto_is_dense_when_cutoff_covers_the_collective(self):
        # r_c larger than the collective diameter prunes nothing.
        assert (
            resolve_engine("auto", n_particles=1000, cutoff=40.0, domain_radius=17.8)
            == "dense"
        )

    def test_registry_constant(self):
        assert DRIFT_ENGINES == ("auto", "dense", "sparse")


class TestConfigIntegration:
    def test_default_engine_is_auto(self, small_config):
        assert small_config.engine == "auto"
        assert small_config.resolved_engine == "dense"

    def test_large_collective_resolves_sparse(self, two_type_params):
        config = SimulationConfig(
            type_counts=(150, 150), params=two_type_params, cutoff=2.0
        )
        assert config.resolved_engine == "sparse"
        engine = engine_for_config(config)
        # "auto" with the default re-resolution cadence builds the adaptive
        # wrapper, initially resolved to the same choice as the static rule.
        assert isinstance(engine, AdaptiveDriftEngine)
        assert engine.resolved == "sparse"
        assert isinstance(engine.active, SparseDriftEngine)

    def test_auto_without_cadence_resolves_statically(self, two_type_params):
        config = SimulationConfig(
            type_counts=(150, 150), params=two_type_params, cutoff=2.0,
            auto_reresolve_every=0,
        )
        assert isinstance(engine_for_config(config), SparseDriftEngine)

    def test_engine_for_config_respects_explicit_choice(self, small_config):
        sparse_cfg = small_config.with_updates(engine="sparse", cutoff=2.0)
        dense_cfg = small_config.with_updates(engine="dense", cutoff=2.0)
        assert isinstance(engine_for_config(sparse_cfg), SparseDriftEngine)
        assert isinstance(engine_for_config(dense_cfg), DenseDriftEngine)

    def test_invalid_engine_rejected_at_construction(self, small_config):
        with pytest.raises(KeyError):
            small_config.with_updates(engine="warp")

    def test_engine_round_trips_through_dict(self, small_config):
        config = small_config.with_updates(engine="sparse", cutoff=2.0)
        restored = SimulationConfig.from_dict(config.to_dict())
        assert restored.to_dict() == config.to_dict()
        assert restored.engine == "sparse"

    def test_legacy_dict_without_engine_loads(self, small_config):
        payload = small_config.to_dict()
        del payload["engine"]
        restored = SimulationConfig.from_dict(payload)
        assert restored.engine == "auto"

    def test_sparse_engine_uses_configured_backend(self, small_config):
        config = small_config.with_updates(
            engine="sparse", cutoff=2.0, neighbor_backend="cell"
        )
        engine = engine_for_config(config)
        assert isinstance(engine, SparseDriftEngine)
        assert engine.neighbors.name == "cell"

    def test_engine_is_a_drift_engine(self, small_config):
        assert isinstance(engine_for_config(small_config), DriftEngine)


class TestDriftSingleVsBatchConsistency:
    @pytest.mark.parametrize("engine_name", ["dense", "sparse"])
    def test_batch_rows_match_single(self, engine_name):
        batch, types, params = _random_system(seed=11, n=15, m=5)
        engine = make_engine(
            engine_name, types=types, params=params, scaling="F2", cutoff=3.0
        )
        batched = engine.drift_batch(batch)
        for m in range(batch.shape[0]):
            np.testing.assert_allclose(
                batched[m], engine.drift(batch[m]), rtol=0, atol=1e-10
            )

    def test_matches_reference_drift_single(self):
        batch, types, params = _random_system(seed=12, n=15)
        engine = make_engine("sparse", types=types, params=params, scaling="F1", cutoff=2.0)
        reference = drift_single(batch[0], types, params, "F1", cutoff=2.0)
        np.testing.assert_allclose(engine.drift(batch[0]), reference, rtol=0, atol=1e-10)


class TestCollectiveRadius:
    def test_half_the_longer_bounding_box_side(self):
        positions = np.array([[-3.0, 0.0], [5.0, 1.0], [0.0, -1.0]])
        assert collective_radius(positions) == pytest.approx(4.0)  # x-span 8

    def test_batch_spans_all_samples(self):
        batch = np.array([[[0.0, 0.0], [1.0, 0.0]], [[10.0, 0.0], [11.0, 0.0]]])
        assert collective_radius(batch) == pytest.approx(5.5)  # x-span 11 over samples

    def test_empty_input(self):
        assert collective_radius(np.zeros((0, 2))) == 0.0


class TestAdaptiveDriftEngine:
    def _engine(self, n=300, cutoff=2.0, domain_radius=20.0):
        rng = np.random.default_rng(0)
        params = InteractionParams.random(2, rng=rng)
        types = rng.integers(0, 2, size=n)
        return AdaptiveDriftEngine(
            types, params, "F1", cutoff, neighbors="cell", domain_radius=domain_radius
        ), rng

    def test_initial_resolution_uses_domain_radius(self):
        engine, _ = self._engine(domain_radius=20.0)
        assert engine.resolved == "sparse"
        engine, _ = self._engine(domain_radius=1.0)
        assert engine.resolved == "dense"

    def test_reresolve_tracks_the_bounding_box(self):
        engine, rng = self._engine(domain_radius=20.0)
        spread = rng.uniform(-20, 20, size=(300, 2))
        contracted = rng.uniform(-0.5, 0.5, size=(300, 2))
        assert engine.reresolve(spread) == "sparse"
        assert engine.reresolve(contracted) == "dense"
        assert isinstance(engine.active, DenseDriftEngine)
        assert engine.reresolve(spread) == "sparse"
        assert isinstance(engine.active, SparseDriftEngine)

    def test_delegates_are_cached_across_switches(self):
        engine, rng = self._engine()
        spread = rng.uniform(-20, 20, size=(300, 2))
        contracted = rng.uniform(-0.5, 0.5, size=(300, 2))
        engine.reresolve(spread)
        sparse_delegate = engine.active
        engine.reresolve(contracted)
        dense_delegate = engine.active
        engine.reresolve(spread)
        assert engine.active is sparse_delegate
        engine.reresolve(contracted)
        assert engine.active is dense_delegate

    def test_drift_identical_across_switch(self):
        engine, rng = self._engine()
        positions = rng.uniform(-20, 20, size=(300, 2))
        batch = positions[None, ...]
        engine.reresolve(positions)  # sparse
        sparse_drift = engine.drift(positions)
        sparse_batch = engine.drift_batch(batch)
        engine.reresolve(np.zeros((300, 2)))  # force the dense delegate
        np.testing.assert_array_equal(engine.drift(positions), sparse_drift)
        np.testing.assert_array_equal(engine.drift_batch(batch), sparse_batch)

    def test_make_engine_adaptive_only_wraps_auto(self):
        rng = np.random.default_rng(1)
        params = InteractionParams.random(2, rng=rng)
        types = rng.integers(0, 2, size=50)
        common = dict(types=types, params=params, scaling="F1", cutoff=2.0)
        assert isinstance(make_engine("auto", adaptive=True, **common), AdaptiveDriftEngine)
        assert isinstance(make_engine("sparse", adaptive=True, **common), SparseDriftEngine)
        assert isinstance(make_engine("dense", adaptive=True, **common), DenseDriftEngine)
