"""Tests for repro.infotheory.discrete."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.infotheory.discrete import (
    conditional_entropy,
    entropy,
    entropy_from_counts,
    marginal_distribution,
    multi_information,
    multi_information_from_samples,
    mutual_information,
)


class TestEntropy:
    def test_uniform(self):
        assert entropy(np.full(8, 1 / 8)) == pytest.approx(3.0)

    def test_deterministic(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    def test_binary(self):
        assert entropy(np.array([0.5, 0.5])) == pytest.approx(1.0)

    def test_normalize_flag(self):
        assert entropy(np.array([2.0, 2.0]), normalize=True) == pytest.approx(1.0)

    def test_unnormalised_rejected(self):
        with pytest.raises(ValueError):
            entropy(np.array([0.5, 0.2]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            entropy(np.array([1.2, -0.2]))

    @given(st.integers(min_value=1, max_value=64))
    def test_bounded_by_log_cardinality(self, n):
        rng = np.random.default_rng(n)
        p = rng.dirichlet(np.ones(n))
        h = entropy(p)
        assert -1e-9 <= h <= np.log2(n) + 1e-9


class TestMarginalAndConditional:
    def test_marginals_of_product_distribution(self):
        px = np.array([0.3, 0.7])
        py = np.array([0.25, 0.25, 0.5])
        joint = np.outer(px, py)
        np.testing.assert_allclose(marginal_distribution(joint, 0), px)
        np.testing.assert_allclose(marginal_distribution(joint, 1), py)

    def test_conditional_entropy_of_independent(self):
        joint = np.outer([0.5, 0.5], [0.5, 0.5])
        assert conditional_entropy(joint, given_axis=0) == pytest.approx(1.0)

    def test_conditional_entropy_of_copy(self):
        joint = np.diag([0.5, 0.5])
        assert conditional_entropy(joint, given_axis=0) == pytest.approx(0.0)


class TestMutualInformation:
    def test_independent_is_zero(self):
        joint = np.outer([0.4, 0.6], [0.3, 0.7])
        assert mutual_information(joint) == pytest.approx(0.0, abs=1e-12)

    def test_perfect_copy(self):
        joint = np.diag([0.5, 0.5])
        assert mutual_information(joint) == pytest.approx(1.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            mutual_information(np.full((2, 2, 2), 1 / 8))

    @given(st.integers(min_value=0, max_value=5000))
    def test_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        joint = rng.dirichlet(np.ones(12)).reshape(3, 4)
        assert mutual_information(joint) >= -1e-9


class TestMultiInformation:
    def test_reduces_to_mutual_information_for_two_variables(self):
        rng = np.random.default_rng(0)
        joint = rng.dirichlet(np.ones(6)).reshape(2, 3)
        assert multi_information(joint) == pytest.approx(mutual_information(joint))

    def test_three_copies_of_one_bit(self):
        joint = np.zeros((2, 2, 2))
        joint[0, 0, 0] = 0.5
        joint[1, 1, 1] = 0.5
        # Sum of marginal entropies 3 bits, joint entropy 1 bit.
        assert multi_information(joint) == pytest.approx(2.0)

    def test_independent_product_is_zero(self):
        joint = np.einsum("i,j,k->ijk", [0.5, 0.5], [0.3, 0.7], [0.1, 0.9])
        assert multi_information(joint) == pytest.approx(0.0, abs=1e-12)

    @given(st.integers(min_value=0, max_value=5000))
    def test_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        joint = rng.dirichlet(np.ones(8)).reshape(2, 2, 2)
        assert multi_information(joint) >= -1e-9


class TestFromSamplesAndCounts:
    def test_entropy_from_counts(self):
        assert entropy_from_counts(np.array([5, 5])) == pytest.approx(1.0)

    def test_entropy_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            entropy_from_counts(np.array([3, -1]))

    def test_multi_information_from_copied_columns(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 4, size=500)
        samples = np.stack([x, x], axis=1)
        # Two identical uniform-ish 4-state variables share ~2 bits.
        value = multi_information_from_samples(samples)
        assert value == pytest.approx(entropy_from_counts(np.bincount(x)), rel=1e-9)

    def test_multi_information_from_independent_columns_small(self):
        rng = np.random.default_rng(2)
        samples = rng.integers(0, 2, size=(5000, 2))
        assert multi_information_from_samples(samples) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_information_from_samples(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            multi_information_from_samples(np.zeros(5))
