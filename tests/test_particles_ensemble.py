"""Tests for repro.particles.ensemble."""

from __future__ import annotations

import numpy as np
import pytest

from repro.particles.ensemble import EnsembleSimulator, simulate_ensemble
from repro.particles.model import ParticleSystem, SimulationConfig
from repro.particles.trajectory import EnsembleTrajectory


class TestEnsembleSimulator:
    def test_output_shape(self, small_config):
        ensemble = EnsembleSimulator(small_config, 5, seed=0).run()
        assert isinstance(ensemble, EnsembleTrajectory)
        assert ensemble.positions.shape == (small_config.n_steps + 1, 5, 12, 2)
        assert ensemble.dt == pytest.approx(small_config.dt * small_config.substeps)

    def test_reproducible_for_same_seed(self, small_config):
        a = EnsembleSimulator(small_config, 4, seed=11).run()
        b = EnsembleSimulator(small_config, 4, seed=11).run()
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_different_seeds_differ(self, small_config):
        a = EnsembleSimulator(small_config, 4, seed=1).run()
        b = EnsembleSimulator(small_config, 4, seed=2).run()
        assert not np.allclose(a.positions, b.positions)

    def test_samples_are_independent(self, small_config):
        ensemble = EnsembleSimulator(small_config, 3, seed=0).run()
        assert not np.allclose(ensemble.positions[:, 0], ensemble.positions[:, 1])

    def test_initial_frame_inside_disc(self, small_config):
        ensemble = EnsembleSimulator(small_config, 4, seed=0).run()
        radii = np.linalg.norm(ensemble.positions[0], axis=-1)
        assert radii.max() <= small_config.disc_radius + 1e-12

    def test_stats_populated(self, small_config):
        simulator = EnsembleSimulator(small_config, 4, seed=0)
        assert simulator.last_stats is None
        simulator.run()
        stats = simulator.last_stats
        assert stats is not None
        assert stats.mean_force_norm.shape == (small_config.n_steps + 1,)
        assert 0.0 <= stats.fraction_at_equilibrium <= 1.0

    def test_batching_does_not_change_results(self, small_config):
        # Force a tiny memory budget so the ensemble is split into many batches;
        # the batch layout is part of the seeding contract, so compare within
        # the same budget across parallelism settings instead.
        simulator_small = EnsembleSimulator(small_config, 6, seed=3, bytes_budget=20_000)
        serial = simulator_small.run(n_jobs=1)
        simulator_small2 = EnsembleSimulator(small_config, 6, seed=3, bytes_budget=20_000)
        parallel = simulator_small2.run(n_jobs=2)
        np.testing.assert_allclose(serial.positions, parallel.positions)

    def test_invalid_sample_count(self, small_config):
        with pytest.raises(ValueError):
            EnsembleSimulator(small_config, 0)

    def test_dynamics_match_particle_system_statistics(self, two_type_params):
        # The ensemble path and the single-run path implement the same model:
        # with zero noise and a shared initial configuration they agree exactly.
        config = SimulationConfig(
            type_counts=(4, 4),
            params=two_type_params,
            force="F1",
            dt=0.02,
            substeps=1,
            n_steps=8,
            noise_variance=0.0,
            init_radius=2.0,
        )
        simulator = EnsembleSimulator(config, 1, seed=0)
        ensemble = simulator.run()
        initial = ensemble.positions[0, 0]
        single = ParticleSystem(config, rng=123, initial_positions=initial).run()
        np.testing.assert_allclose(ensemble.positions[:, 0], single.positions, atol=1e-9)


class TestSimulateEnsembleWrapper:
    def test_matches_simulator(self, small_config):
        direct = EnsembleSimulator(small_config, 3, seed=9).run()
        wrapped = simulate_ensemble(small_config, 3, seed=9)
        np.testing.assert_array_equal(direct.positions, wrapped.positions)
