"""Integration tests: the paper's qualitative findings at miniature scale.

Each test exercises the full stack (simulation → alignment → estimation) on a
configuration small enough to run in seconds while still reproducing the
qualitative statement of the corresponding result section.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.shape_stats import detect_concentric_rings, type_segregation_index
from repro.core.pipeline import run_experiment
from repro.core.self_organization import AnalysisConfig
from repro.particles.ensemble import EnsembleSimulator
from repro.particles.model import ParticleSystem, SimulationConfig
from repro.particles.types import InteractionParams


@pytest.mark.slow
class TestAdhesionSorting:
    """Differential adhesion sorts types (the Fig. 1 / Fig. 12 phenomenology)."""

    def test_segregation_increases(self):
        params = InteractionParams.clustering(2, self_distance=1.0, cross_distance=2.5, k=2.0)
        config = SimulationConfig(
            type_counts=(8, 8), params=params, force="F1", dt=0.02, substeps=3, n_steps=25,
            init_radius=3.0,
        )
        ensemble = EnsembleSimulator(config, 10, seed=0).run()
        initial = np.mean(
            [type_segregation_index(ensemble.positions[0, m], ensemble.types) for m in range(10)]
        )
        final = np.mean(
            [type_segregation_index(ensemble.positions[-1, m], ensemble.types) for m in range(10)]
        )
        assert final > initial + 0.15


@pytest.mark.slow
class TestMultiInformationIncrease:
    """§6: interacting multi-type collectives show increasing multi-information."""

    def test_clustering_dynamics_self_organize(self):
        params = InteractionParams.clustering(3, self_distance=1.0, cross_distance=2.5, k=2.0)
        config = SimulationConfig(
            type_counts=(5, 5, 5), params=params, force="F1", dt=0.02, substeps=3, n_steps=25,
            init_radius=3.0,
        )
        result = run_experiment(
            config, 48, analysis_config=AnalysisConfig(step_stride=8, k_neighbors=3), seed=1
        )
        assert result.delta_multi_information > 0.5

    def test_noninteracting_particles_do_not_self_organize(self):
        # Zero interaction strength: pure diffusion from the initial disc.
        params = InteractionParams.from_matrices(
            k=np.zeros((2, 2)), r=np.ones((2, 2))
        )
        config = SimulationConfig(
            type_counts=(6, 6), params=params, force="F1", dt=0.02, substeps=3, n_steps=25,
            init_radius=3.0,
        )
        result = run_experiment(
            config, 48, analysis_config=AnalysisConfig(step_stride=8, k_neighbors=3), seed=2
        )
        # Free diffusion cannot build correlations between particles; allow a
        # small tolerance for estimator fluctuations.
        assert result.delta_multi_information < 1.0


@pytest.mark.slow
class TestSingleTypeF1Rings:
    """§6/Fig. 7: single-type F1 collectives form concentric rings."""

    def test_double_ring_structure_forms(self):
        params = InteractionParams.single_type(k=1.0, r=2.5)
        config = SimulationConfig(
            type_counts=(20,), params=params, force="F1", dt=0.02, substeps=5, n_steps=60,
            init_radius=3.0, noise_variance=0.01,
        )
        ensemble = EnsembleSimulator(config, 4, seed=3).run()
        reports = [detect_concentric_rings(ensemble.positions[-1, m]) for m in range(4)]
        assert any(report.n_rings >= 2 for report in reports)


class TestEngineDeterminism:
    """Engine choice must never change a seeded run — bit for bit.

    The sparse kernel accumulates neighbour pairs in lexicographic order,
    which reproduces the dense kernel's summation order exactly; any future
    refactor that silently breaks this contract fails here.
    """

    def _config(self, engine: str) -> SimulationConfig:
        params = InteractionParams.clustering(2, self_distance=1.0, cross_distance=2.5, k=2.0)
        return SimulationConfig(
            type_counts=(6, 6),
            params=params,
            force="F1",
            cutoff=2.0,
            dt=0.02,
            substeps=2,
            n_steps=10,
            init_radius=3.0,
            engine=engine,
            neighbor_backend="kdtree",
        )

    def test_dense_and_sparse_ensembles_bit_identical(self):
        dense = EnsembleSimulator(self._config("dense"), 6, seed=9).run()
        sparse = EnsembleSimulator(self._config("sparse"), 6, seed=9).run()
        np.testing.assert_array_equal(dense.positions, sparse.positions)

    def test_dense_and_sparse_single_runs_bit_identical(self):
        initial = ParticleSystem(self._config("dense"), rng=7).positions
        dense = ParticleSystem(
            self._config("dense"), rng=7, initial_positions=initial
        ).run().positions
        sparse = ParticleSystem(
            self._config("sparse"), rng=7, initial_positions=initial
        ).run().positions
        np.testing.assert_array_equal(dense, sparse)

    def test_all_sparse_backends_agree_bit_for_bit(self):
        reference = None
        for backend in ("brute", "cell", "kdtree"):
            config = self._config("sparse").with_updates(neighbor_backend=backend)
            positions = EnsembleSimulator(config, 4, seed=3).run().positions
            if reference is None:
                reference = positions
            else:
                np.testing.assert_array_equal(positions, reference)


class TestAdaptiveAutoDeterminism:
    """Adaptive ``"auto"`` switching engines mid-run changes nothing but speed.

    A strongly attracting collective contracts from an 8-unit disc to well
    under the cut-off radius, so the adaptive engine starts sparse and drops
    to dense mid-run; the trajectory must equal the dense-forced and
    sparse-forced runs bit for bit.
    """

    def _config(self, engine: str, **overrides) -> SimulationConfig:
        params = InteractionParams.clustering(
            2, self_distance=0.5, cross_distance=0.5, k=0.05
        )
        base = dict(
            type_counts=(100, 100),
            params=params,
            force="F1",
            cutoff=6.0,
            dt=0.05,
            substeps=1,
            n_steps=12,
            init_radius=8.0,
            noise_variance=0.01,
            engine=engine,
            neighbor_backend="cell",
            auto_reresolve_every=2,
        )
        base.update(overrides)
        return SimulationConfig(**base)

    def test_single_run_switches_mid_run(self):
        from repro.particles.engine import AdaptiveDriftEngine

        system = ParticleSystem(self._config("auto"), rng=11)
        assert isinstance(system.engine, AdaptiveDriftEngine)
        assert system.engine.resolved == "sparse"  # from the initial 8-unit disc
        system.run()
        assert system.engine.resolved == "dense"  # contracted below the cut-off

    def test_single_run_matches_both_forced_engines(self):
        trajectories = {}
        for engine in ("auto", "dense", "sparse"):
            trajectories[engine] = ParticleSystem(
                self._config(engine), rng=11
            ).run().positions
        np.testing.assert_array_equal(trajectories["auto"], trajectories["dense"])
        np.testing.assert_array_equal(trajectories["auto"], trajectories["sparse"])

    def test_ensemble_matches_both_forced_engines(self):
        ensembles = {
            engine: EnsembleSimulator(self._config(engine), 3, seed=21).run().positions
            for engine in ("auto", "dense", "sparse")
        }
        np.testing.assert_array_equal(ensembles["auto"], ensembles["dense"])
        np.testing.assert_array_equal(ensembles["auto"], ensembles["sparse"])

    def test_disabled_cadence_matches_adaptive(self):
        # auto_reresolve_every=0 freezes the initial resolution; the result
        # is still the same trajectory, just potentially computed slower.
        adaptive = ParticleSystem(self._config("auto"), rng=5).run().positions
        static = ParticleSystem(
            self._config("auto", auto_reresolve_every=0), rng=5
        ).run().positions
        np.testing.assert_array_equal(adaptive, static)


@pytest.mark.slow
class TestCutoffLimitsSelfOrganization:
    """§6.1/Fig. 9: a small cut-off radius limits the achievable organization."""

    def test_long_range_beats_short_range(self):
        rng = np.random.default_rng(0)
        from repro.particles.types import random_symmetric_matrix

        r = random_symmetric_matrix(4, 2.0, 5.0, rng)
        params = InteractionParams.from_matrices(k=np.ones((4, 4)), r=r)
        base = dict(
            type_counts=(3, 3, 3, 3),
            params=params,
            force="F1",
            dt=0.02,
            substeps=3,
            n_steps=25,
            init_radius=3.0,
        )
        analysis = AnalysisConfig(step_stride=8, k_neighbors=3)
        short = run_experiment(
            SimulationConfig(**base, cutoff=1.5), 48, analysis_config=analysis, seed=4
        )
        long = run_experiment(
            SimulationConfig(**base, cutoff=None), 48, analysis_config=analysis, seed=4
        )
        assert long.delta_multi_information > short.delta_multi_information
