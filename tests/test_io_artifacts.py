"""Tests for the content-addressed run store (repro.io.artifacts)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.plan import RunUnit, single
from repro.io.artifacts import RunStore, RunStoreError

from test_core_plan import tiny_spec


@pytest.fixture
def unit() -> RunUnit:
    return RunUnit(tiny_spec())


@pytest.fixture
def executed(unit):
    return unit, unit.execute()


class TestStoreLifecycle:
    def test_creates_directory_and_marker(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.units_dir.is_dir()
        marker = json.loads((tmp_path / "store" / RunStore.MARKER_NAME).read_text())
        assert marker["format"] == "repro-run-store"

    def test_create_false_rejects_missing_directory(self, tmp_path):
        with pytest.raises(RunStoreError, match="does not exist"):
            RunStore(tmp_path / "nope", create=False)

    def test_create_false_rejects_unmarked_directory(self, tmp_path):
        (tmp_path / "plain").mkdir()
        with pytest.raises(RunStoreError, match="not a run store"):
            RunStore(tmp_path / "plain", create=False)

    def test_reopening_an_existing_store_is_idempotent(self, tmp_path):
        RunStore(tmp_path / "store")
        store = RunStore(tmp_path / "store", create=False)
        assert store.keys() == []

    def test_create_over_an_existing_file_raises_a_store_error(self, tmp_path):
        (tmp_path / "occupied").write_text("not a directory")
        with pytest.raises(RunStoreError, match="cannot create run store"):
            RunStore(tmp_path / "occupied")


class TestSaveLoad:
    def test_round_trips_the_full_experiment_result(self, tmp_path, executed):
        unit, result = executed
        store = RunStore(tmp_path / "store")
        path = store.save(unit, result)
        assert path == store.path_for(unit) and store.has(unit) and unit.content_hash in store
        loaded = store.load(unit.content_hash)
        np.testing.assert_array_equal(
            loaded.measurement.multi_information, result.measurement.multi_information
        )
        np.testing.assert_array_equal(loaded.mean_force_norm, result.mean_force_norm)
        assert loaded.simulation_config.to_dict() == result.simulation_config.to_dict()
        assert loaded.analysis_config == result.analysis_config
        assert loaded.n_samples == result.n_samples and loaded.seed == result.seed
        assert loaded.fraction_at_equilibrium == result.fraction_at_equilibrium

    def test_documents_are_deterministic(self, tmp_path, executed):
        unit, result = executed
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        first = store.path_for(unit).read_bytes()
        # A second execution has different wall times; the document must not.
        store.save(unit, unit.execute())
        assert store.path_for(unit).read_bytes() == first
        document = store.load_document(unit)
        assert document["wall_time_seconds"] == {}
        assert document["summary"]["wall_time_seconds"] == {}
        assert document["unit"]["content_hash"] == unit.content_hash

    def test_no_tmp_files_left_behind(self, tmp_path, executed):
        unit, result = executed
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        assert not list(store.units_dir.glob("*.tmp"))

    def test_keys_lists_persisted_hashes(self, tmp_path, executed):
        unit, result = executed
        store = RunStore(tmp_path / "store")
        assert len(store) == 0
        store.save(unit, result)
        assert store.keys() == [unit.content_hash] and list(store) == [unit.content_hash]


class TestErrorPaths:
    def test_missing_document_raises(self, tmp_path, unit):
        store = RunStore(tmp_path / "store")
        with pytest.raises(RunStoreError, match="no persisted result"):
            store.load(unit)

    def test_corrupt_json_raises_a_clear_error(self, tmp_path, executed):
        unit, result = executed
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        store.path_for(unit).write_text("{ not json")
        with pytest.raises(RunStoreError, match="corrupt run-store document"):
            store.load(unit)

    def test_valid_json_with_missing_fields_raises(self, tmp_path, executed):
        unit, result = executed
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        store.path_for(unit).write_text(json.dumps({"summary": {}}))
        with pytest.raises(RunStoreError, match="corrupt run-store document"):
            store.load(unit)

    def test_rejects_non_hash_keys(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(ValueError, match="sha256"):
            store.has("short")


class TestEnsemblePersistence:
    def test_ensemble_saved_and_reattached(self, tmp_path, unit):
        result = unit.execute(keep_ensemble=True)
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        assert store.ensemble_path_for(unit).is_file()
        assert not list(store.units_dir.glob("*.tmp.npz"))
        loaded = store.load(unit)
        np.testing.assert_array_equal(loaded.ensemble.positions, result.ensemble.positions)

    def test_with_ensemble_false_skips_the_archive(self, tmp_path, unit):
        result = unit.execute(keep_ensemble=True)
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        assert store.load(unit, with_ensemble=False).ensemble is None

    def test_truncated_ensemble_archive_raises_a_store_error(self, tmp_path, unit):
        result = unit.execute(keep_ensemble=True)
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        store.ensemble_path_for(unit).write_bytes(b"PK\x03\x04 truncated")
        with pytest.raises(RunStoreError, match="corrupt run-store ensemble"):
            store.load(unit)
        # The JSON summaries remain reachable regardless.
        assert store.load(unit, with_ensemble=False).ensemble is None

    def test_orphaned_archive_is_not_attached_to_an_ensembleless_result(self, tmp_path, unit):
        # Regression test: a crash in *another* sweep can leave an orphaned
        # .npz next to a document whose run never kept ensembles (inside the
        # grace window the sweep must not remove it either).  load() must
        # consult the document's unit.ensemble reference, not the filesystem.
        other = RunUnit(tiny_spec())
        with_ensemble = other.execute(keep_ensemble=True)
        store = RunStore(tmp_path / "store")
        store.save(unit, unit.execute())  # summaries only, no reference
        # Drop a fully valid archive at exactly the sibling path a crashed
        # keep-ensembles save of this unit would have left behind.
        with_ensemble.ensemble.save(store.ensemble_path_for(unit))
        assert store.load_document(unit)["unit"].get("ensemble") is None
        assert store.load(unit).ensemble is None
        # It is still reported (and sweepable) as an orphan.
        assert store.ensemble_path_for(unit) in store.orphaned_files(min_age_seconds=0.0)

    def test_referenced_archive_gone_missing_is_a_store_error(self, tmp_path, unit):
        # The save order makes this unreachable by crashes; if something
        # external removed the archive, silently returning a result without
        # its ensemble would hide real data loss.
        store = RunStore(tmp_path / "store")
        store.save(unit, unit.execute(keep_ensemble=True))
        store.ensemble_path_for(unit).unlink()
        with pytest.raises(RunStoreError, match="references missing ensemble archive"):
            store.load(unit)
        assert store.load(unit, with_ensemble=False).ensemble is None

    def test_execute_via_plan_matches_direct_unit_execution(self, unit):
        direct = unit.execute()
        via_plan = single(unit.spec).execute().results[0]
        np.testing.assert_array_equal(
            direct.measurement.multi_information, via_plan.measurement.multi_information
        )


class TestDurabilityAndOrphans:
    def test_save_commits_ensemble_before_document(self, tmp_path, unit, monkeypatch):
        # If the process dies between the two writes, the .npz must be the
        # file left behind (an orphan), never a document referencing a
        # missing archive: patch the document write to fail and check.
        import repro.io.artifacts as artifacts

        store = RunStore(tmp_path / "store")
        result = unit.execute(keep_ensemble=True)

        def boom(path, text, **kwargs):
            raise RuntimeError("crash between npz and json")

        monkeypatch.setattr(artifacts, "_atomic_write", boom)
        with pytest.raises(RuntimeError, match="crash"):
            store.save(unit, result)
        assert not store.has(unit)
        assert store.ensemble_path_for(unit).is_file()
        assert store.ensemble_path_for(unit) in store.orphaned_files(min_age_seconds=0.0)
        # ... but a freshly written archive is protected by the default
        # grace period: it is indistinguishable from a live writer's
        # mid-save state, which a concurrent sweep must never touch.
        assert store.orphaned_files() == []
        assert store.sweep_orphans() == []
        assert store.ensemble_path_for(unit).is_file()

    def test_orphaned_npz_is_listed_and_swept(self, tmp_path, unit):
        store = RunStore(tmp_path / "store")
        result = unit.execute(keep_ensemble=True)
        store.save(unit, result)
        assert store.orphaned_files(min_age_seconds=0.0) == []
        store.path_for(unit).unlink()  # simulate the crash aftermath
        orphans = store.orphaned_files(min_age_seconds=0.0)
        assert orphans == [store.ensemble_path_for(unit)]
        assert store.keys() == []  # read paths never see the orphan
        removed = store.sweep_orphans(min_age_seconds=0.0)
        assert removed == orphans
        assert not store.ensemble_path_for(unit).is_file()
        assert store.orphaned_files(min_age_seconds=0.0) == []

    def test_stale_temp_files_are_orphans_once_aged(self, tmp_path, unit):
        import os

        store = RunStore(tmp_path / "store")
        stale_json = store.units_dir / ("a" * 64 + ".json.12345.tmp")
        stale_npz = store.units_dir / ("b" * 64 + ".12345.tmp.npz")
        stale_json.write_text("{}")
        stale_npz.write_bytes(b"partial")
        # Fresh temporaries look like a live writer: the default grace
        # period hides them from the sweep.
        assert store.orphaned_files() == []
        # Age them past the window (as a genuine crash leftover would).
        for path in (stale_json, stale_npz):
            os.utime(path, (0, 0))
        assert set(store.orphaned_files()) == {stale_json, stale_npz}
        store.sweep_orphans()
        assert not stale_json.exists() and not stale_npz.exists()
        assert store.keys() == []

    def test_root_level_marker_temporaries_are_swept_once_aged(self, tmp_path):
        import os

        # Regression test: a writer that died between creating units/ and
        # renaming the store marker leaks run_store.json.<pid>.tmp at the
        # store *root*, which the units/-only scan never saw.
        store = RunStore(tmp_path / "store")
        leaked = store.root / f"{RunStore.MARKER_NAME}.12345.tmp"
        leaked.write_text("{}")
        # Inside the grace window it could be a live writer: protected.
        assert store.orphaned_files() == []
        os.utime(leaked, (0, 0))
        assert leaked in store.orphaned_files()
        assert leaked in store.sweep_orphans()
        assert not leaked.exists()
        # The committed marker itself is never a candidate.
        assert (store.root / RunStore.MARKER_NAME).is_file()
        assert store.orphaned_files(min_age_seconds=0.0) == []

    def test_root_level_non_temporaries_are_never_swept(self, tmp_path):
        import os

        # Only abandoned temporaries are store artifacts; a stray .npz (or
        # anything else) at the root is not ours to delete, however old.
        store = RunStore(tmp_path / "store")
        stray = store.root / "somebody_elses_data.npz"
        stray.write_bytes(b"not a store artifact")
        os.utime(stray, (0, 0))
        assert store.orphaned_files(min_age_seconds=0.0) == []
        assert store.sweep_orphans(min_age_seconds=0.0) == []
        assert stray.exists()

    def test_committed_pair_is_never_swept(self, tmp_path, unit):
        store = RunStore(tmp_path / "store")
        result = unit.execute(keep_ensemble=True)
        store.save(unit, result)
        assert store.sweep_orphans(min_age_seconds=0.0) == []
        assert store.has(unit)
        assert store.ensemble_path_for(unit).is_file()
        loaded = store.load(unit)
        assert loaded.ensemble is not None

    def test_atomic_write_leaves_no_temporaries(self, tmp_path):
        from repro.io.artifacts import _atomic_write

        target = tmp_path / "doc.json"
        _atomic_write(target, '{"ok": true}')
        assert json.loads(target.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_resume_recomputes_after_orphan_sweep(self, tmp_path, unit):
        # An orphaned archive does not satisfy a keep_ensembles cache check:
        # the unit is recomputed and the pair becomes consistent again.
        store = RunStore(tmp_path / "store")
        plan = single(unit.spec)
        plan.execute(store, keep_ensembles=True)
        store.path_for(unit).unlink()
        execution = plan.execute(store, keep_ensembles=True)
        assert execution.n_computed == 1
        assert store.has(unit)
        assert store.orphaned_files(min_age_seconds=0.0) == []

class TestConditionalSave:
    """Write-once semantics for stores shared between concurrent workers."""

    def test_default_save_still_overwrites(self, tmp_path, executed):
        # Deterministic-document tests (and recompute sweeps) rely on a plain
        # save being unconditional.
        unit, result = executed
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        before = store.path_for(unit).stat()
        store.save(unit, result)
        assert store.path_for(unit).stat().st_mtime_ns >= before.st_mtime_ns

    def test_conditional_save_never_touches_a_committed_document(self, tmp_path, executed):
        unit, result = executed
        store = RunStore(tmp_path / "store")
        store.save(unit, result)
        before = store.path_for(unit).stat()
        store.save(unit, result, overwrite=False)
        after = store.path_for(unit).stat()
        assert (before.st_mtime_ns, before.st_ino) == (after.st_mtime_ns, after.st_ino)

    def test_conditional_save_upgrades_an_ensembleless_document(self, tmp_path, unit):
        # The one rewrite conditional save must allow: the document exists
        # but does not reference an ensemble, and the new result carries one.
        store = RunStore(tmp_path / "store")
        store.save(unit, unit.execute(), overwrite=False)
        assert "ensemble" not in store.load_document(unit)["unit"]
        store.save(unit, unit.execute(keep_ensemble=True), overwrite=False)
        document = store.load_document(unit)["unit"]
        assert document["ensemble"] == store.ensemble_path_for(unit).name
        assert store.load(unit).ensemble is not None

    def test_provides_ensemble_reads_the_reference_not_the_sibling_file(self, tmp_path, unit):
        store = RunStore(tmp_path / "store")
        assert not store.provides_ensemble(unit)  # nothing persisted at all
        store.save(unit, unit.execute())
        assert store.has(unit) and not store.provides_ensemble(unit)
        # A bare sibling .npz (orphan of a crashed save) must not count.
        store.ensemble_path_for(unit).write_bytes(b"orphaned archive")
        assert not store.provides_ensemble(unit)
        store.save(unit, unit.execute(keep_ensemble=True))
        assert store.provides_ensemble(unit)


class TestLeases:
    HASH = "a" * 64
    OTHER = "b" * 64

    def test_acquire_is_exclusive_until_released(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=30.0)
        assert not store.try_acquire_lease(self.HASH, "worker-2", ttl_seconds=30.0)
        store.release_lease(self.HASH, "worker-1")
        assert store.try_acquire_lease(self.HASH, "worker-2", ttl_seconds=30.0)

    def test_reacquiring_ones_own_lease_renews_it(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=30.0)
        assert store.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=30.0)

    def test_independent_units_lease_independently(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=30.0)
        assert store.try_acquire_lease(self.OTHER, "worker-2", ttl_seconds=30.0)

    def test_expired_lease_is_stolen(self, tmp_path):
        import time

        store = RunStore(tmp_path / "store")
        assert store.try_acquire_lease(self.HASH, "dead-worker", ttl_seconds=0.05)
        time.sleep(0.1)
        assert store.try_acquire_lease(self.HASH, "worker-2", ttl_seconds=30.0)
        # ... and the theft is visible to the dead owner's renewals.
        assert not store.renew_lease(self.HASH, "dead-worker", ttl_seconds=30.0)

    def test_renew_extends_only_ones_own_live_lease(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert not store.renew_lease(self.HASH, "worker-1")  # never acquired
        assert store.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=30.0)
        assert store.renew_lease(self.HASH, "worker-1", ttl_seconds=30.0)
        assert not store.renew_lease(self.HASH, "worker-2", ttl_seconds=30.0)

    def test_release_ignores_leases_held_by_others(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=30.0)
        store.release_lease(self.HASH, "worker-2")  # not yours: no-op
        assert not store.try_acquire_lease(self.HASH, "worker-2", ttl_seconds=30.0)

    def test_unreadable_lease_file_is_treated_as_stale(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.leases_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path_for(self.HASH).write_text("not json {")
        assert store.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=30.0)

    def test_expired_lease_files_are_orphans_once_aged(self, tmp_path):
        import os

        store = RunStore(tmp_path / "store")
        assert store.try_acquire_lease(self.HASH, "dead-worker", ttl_seconds=0.0)
        lease_path = store.lease_path_for(self.HASH)
        # Young files stay protected even when expired (a renewal may be in
        # flight); aged ones are crash leftovers and sweepable.
        assert lease_path not in store.orphaned_files(min_age_seconds=3600.0)
        os.utime(lease_path, (0, 0))
        assert lease_path in store.orphaned_files()
        store.sweep_orphans()
        assert not lease_path.exists()

    def test_live_lease_files_are_never_orphans(self, tmp_path):
        import os

        store = RunStore(tmp_path / "store")
        assert store.try_acquire_lease(self.HASH, "worker-1", ttl_seconds=10_000.0)
        os.utime(store.lease_path_for(self.HASH), (0, 0))
        assert store.lease_path_for(self.HASH) not in store.orphaned_files()
