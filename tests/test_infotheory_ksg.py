"""Tests for repro.infotheory.ksg (the paper's core estimator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.ksg import ksg_multi_information, ksg_multi_information_with_diagnostics


def _correlated_gaussians(rho: float, m: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    cov = [[1.0, rho], [rho, 1.0]]
    xy = rng.multivariate_normal([0.0, 0.0], cov, size=m)
    return [xy[:, :1], xy[:, 1:]]


def _gaussian_mi_bits(rho: float) -> float:
    return -0.5 * np.log2(1.0 - rho * rho)


class TestAgainstAnalyticGaussian:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.9])
    @pytest.mark.parametrize("variant", ["ksg1", "ksg2"])
    def test_bivariate_gaussian(self, rho, variant):
        variables = _correlated_gaussians(rho, m=1500)
        estimate = ksg_multi_information(variables, k=5, variant=variant)
        assert estimate == pytest.approx(_gaussian_mi_bits(rho), abs=0.12)

    @pytest.mark.parametrize("variant", ["ksg1", "ksg2"])
    def test_independent_is_near_zero(self, variant):
        rng = np.random.default_rng(1)
        variables = [rng.standard_normal((1500, 1)), rng.standard_normal((1500, 1))]
        assert abs(ksg_multi_information(variables, k=5, variant=variant)) < 0.08

    def test_three_variable_common_cause(self):
        # X, Y = X + noise, Z independent: I(X,Y,Z) = I(X;Y).
        rng = np.random.default_rng(2)
        m = 1500
        x = rng.standard_normal((m, 1))
        y = x + 0.5 * rng.standard_normal((m, 1))
        z = rng.standard_normal((m, 1))
        # Analytic: correlation between X and Y is 1/sqrt(1.25)
        rho = 1.0 / np.sqrt(1.25)
        expected = _gaussian_mi_bits(rho)
        estimate = ksg_multi_information([x, y, z], k=5, variant="ksg2")
        assert estimate == pytest.approx(expected, abs=0.2)

    def test_vector_valued_observers(self):
        rng = np.random.default_rng(3)
        m = 1200
        shared = rng.standard_normal((m, 2))
        a = shared + 0.7 * rng.standard_normal((m, 2))
        b = shared + 0.7 * rng.standard_normal((m, 2))
        dependent = ksg_multi_information([a, b], k=5)
        independent = ksg_multi_information(
            [rng.standard_normal((m, 2)), rng.standard_normal((m, 2))], k=5
        )
        assert dependent > independent + 0.5


class TestEstimatorProperties:
    def test_paper_variant_preserves_ordering(self):
        # The literal Eq. 18/20 transcription is offset but must remain
        # monotone in the underlying dependence.
        weak = ksg_multi_information(_correlated_gaussians(0.2, 800, seed=4), k=4, variant="paper")
        strong = ksg_multi_information(_correlated_gaussians(0.9, 800, seed=4), k=4, variant="paper")
        assert strong > weak

    def test_insensitive_to_k_in_paper_range(self):
        variables = _correlated_gaussians(0.8, 1200, seed=5)
        estimates = [ksg_multi_information(variables, k=k) for k in (2, 4, 5, 10)]
        assert max(estimates) - min(estimates) < 0.15

    def test_invariant_under_variable_permutation(self):
        variables = _correlated_gaussians(0.7, 600, seed=6)
        forward = ksg_multi_information(variables, k=5)
        backward = ksg_multi_information(list(reversed(variables)), k=5)
        assert forward == pytest.approx(backward, abs=1e-9)

    def test_invariant_under_per_variable_isometry(self):
        # Rotating or translating an observer's coordinates must not change
        # the estimate (the metric per observer is Euclidean).
        rng = np.random.default_rng(7)
        m = 800
        shared = rng.standard_normal((m, 2))
        a = shared + 0.5 * rng.standard_normal((m, 2))
        b = shared + 0.5 * rng.standard_normal((m, 2))
        theta = 1.1
        rot = np.array([[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]])
        base = ksg_multi_information([a, b], k=5)
        transformed = ksg_multi_information([a @ rot.T + 3.0, b], k=5)
        assert transformed == pytest.approx(base, abs=1e-9)

    def test_increases_with_coupling_strength(self):
        rng = np.random.default_rng(8)
        m = 700
        shared = rng.standard_normal((m, 1))
        estimates = []
        for noise in (2.0, 1.0, 0.5, 0.25):
            a = shared + noise * rng.standard_normal((m, 1))
            b = shared + noise * rng.standard_normal((m, 1))
            estimates.append(ksg_multi_information([a, b], k=5))
        assert all(np.diff(estimates) > 0)

    def test_accepts_3d_array_input(self):
        rng = np.random.default_rng(9)
        arr = rng.standard_normal((300, 4, 2))
        value = ksg_multi_information(arr, k=3)
        assert np.isfinite(value)

    def test_diagnostics_counts_shape(self):
        variables = _correlated_gaussians(0.5, 200, seed=10)
        diag = ksg_multi_information_with_diagnostics(variables, k=3)
        assert diag.counts.shape == (2, 200)
        assert diag.k == 3
        assert np.all(diag.counts >= 1)

    def test_ksg2_counts_at_least_k(self):
        variables = _correlated_gaussians(0.5, 300, seed=11)
        diag = ksg_multi_information_with_diagnostics(variables, k=4, variant="ksg2")
        # The rectangle containing the k joint neighbours contains at least k
        # points in every projection.
        assert np.all(diag.counts >= 4)

    def test_invalid_inputs(self):
        variables = _correlated_gaussians(0.5, 50, seed=12)
        with pytest.raises(ValueError):
            ksg_multi_information(variables, k=0)
        with pytest.raises(ValueError):
            ksg_multi_information(variables, k=50)
        with pytest.raises(ValueError):
            ksg_multi_information(variables, k=5, variant="ksg3")
