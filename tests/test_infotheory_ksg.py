"""Tests for repro.infotheory.ksg (the paper's core estimator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.ksg import ksg_multi_information, ksg_multi_information_with_diagnostics


def _correlated_gaussians(rho: float, m: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    cov = [[1.0, rho], [rho, 1.0]]
    xy = rng.multivariate_normal([0.0, 0.0], cov, size=m)
    return [xy[:, :1], xy[:, 1:]]


def _gaussian_mi_bits(rho: float) -> float:
    return -0.5 * np.log2(1.0 - rho * rho)


class TestAgainstAnalyticGaussian:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.9])
    @pytest.mark.parametrize("variant", ["ksg1", "ksg2"])
    def test_bivariate_gaussian(self, rho, variant):
        variables = _correlated_gaussians(rho, m=1500)
        estimate = ksg_multi_information(variables, k=5, variant=variant)
        assert estimate == pytest.approx(_gaussian_mi_bits(rho), abs=0.12)

    @pytest.mark.parametrize("variant", ["ksg1", "ksg2"])
    def test_independent_is_near_zero(self, variant):
        rng = np.random.default_rng(1)
        variables = [rng.standard_normal((1500, 1)), rng.standard_normal((1500, 1))]
        assert abs(ksg_multi_information(variables, k=5, variant=variant)) < 0.08

    def test_three_variable_common_cause(self):
        # X, Y = X + noise, Z independent: I(X,Y,Z) = I(X;Y).
        rng = np.random.default_rng(2)
        m = 1500
        x = rng.standard_normal((m, 1))
        y = x + 0.5 * rng.standard_normal((m, 1))
        z = rng.standard_normal((m, 1))
        # Analytic: correlation between X and Y is 1/sqrt(1.25)
        rho = 1.0 / np.sqrt(1.25)
        expected = _gaussian_mi_bits(rho)
        estimate = ksg_multi_information([x, y, z], k=5, variant="ksg2")
        assert estimate == pytest.approx(expected, abs=0.2)

    def test_vector_valued_observers(self):
        rng = np.random.default_rng(3)
        m = 1200
        shared = rng.standard_normal((m, 2))
        a = shared + 0.7 * rng.standard_normal((m, 2))
        b = shared + 0.7 * rng.standard_normal((m, 2))
        dependent = ksg_multi_information([a, b], k=5)
        independent = ksg_multi_information(
            [rng.standard_normal((m, 2)), rng.standard_normal((m, 2))], k=5
        )
        assert dependent > independent + 0.5


class TestEstimatorProperties:
    def test_paper_variant_preserves_ordering(self):
        # The literal Eq. 18/20 transcription is offset but must remain
        # monotone in the underlying dependence.
        weak = ksg_multi_information(_correlated_gaussians(0.2, 800, seed=4), k=4, variant="paper")
        strong = ksg_multi_information(_correlated_gaussians(0.9, 800, seed=4), k=4, variant="paper")
        assert strong > weak

    def test_insensitive_to_k_in_paper_range(self):
        variables = _correlated_gaussians(0.8, 1200, seed=5)
        estimates = [ksg_multi_information(variables, k=k) for k in (2, 4, 5, 10)]
        assert max(estimates) - min(estimates) < 0.15

    def test_invariant_under_variable_permutation(self):
        variables = _correlated_gaussians(0.7, 600, seed=6)
        forward = ksg_multi_information(variables, k=5)
        backward = ksg_multi_information(list(reversed(variables)), k=5)
        assert forward == pytest.approx(backward, abs=1e-9)

    def test_invariant_under_per_variable_isometry(self):
        # Rotating or translating an observer's coordinates must not change
        # the estimate (the metric per observer is Euclidean).
        rng = np.random.default_rng(7)
        m = 800
        shared = rng.standard_normal((m, 2))
        a = shared + 0.5 * rng.standard_normal((m, 2))
        b = shared + 0.5 * rng.standard_normal((m, 2))
        theta = 1.1
        rot = np.array([[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]])
        base = ksg_multi_information([a, b], k=5)
        transformed = ksg_multi_information([a @ rot.T + 3.0, b], k=5)
        assert transformed == pytest.approx(base, abs=1e-9)

    def test_increases_with_coupling_strength(self):
        rng = np.random.default_rng(8)
        m = 700
        shared = rng.standard_normal((m, 1))
        estimates = []
        for noise in (2.0, 1.0, 0.5, 0.25):
            a = shared + noise * rng.standard_normal((m, 1))
            b = shared + noise * rng.standard_normal((m, 1))
            estimates.append(ksg_multi_information([a, b], k=5))
        assert all(np.diff(estimates) > 0)

    def test_accepts_3d_array_input(self):
        rng = np.random.default_rng(9)
        arr = rng.standard_normal((300, 4, 2))
        value = ksg_multi_information(arr, k=3)
        assert np.isfinite(value)

    def test_diagnostics_counts_shape(self):
        variables = _correlated_gaussians(0.5, 200, seed=10)
        diag = ksg_multi_information_with_diagnostics(variables, k=3)
        assert diag.counts.shape == (2, 200)
        assert diag.k == 3
        assert np.all(diag.counts >= 1)

    def test_ksg2_counts_at_least_k(self):
        variables = _correlated_gaussians(0.5, 300, seed=11)
        diag = ksg_multi_information_with_diagnostics(variables, k=4, variant="ksg2")
        # The rectangle containing the k joint neighbours contains at least k
        # points in every projection.
        assert np.all(diag.counts >= 4)

    def test_invalid_inputs(self):
        variables = _correlated_gaussians(0.5, 50, seed=12)
        with pytest.raises(ValueError):
            ksg_multi_information(variables, k=0)
        with pytest.raises(ValueError):
            ksg_multi_information(variables, k=50)
        with pytest.raises(ValueError):
            ksg_multi_information(variables, k=5, variant="ksg3")


class TestBackends:
    """The tree backends must answer exactly the dense path's queries."""

    @pytest.mark.parametrize("m", [60, 300])
    @pytest.mark.parametrize("n_vars", [2, 4])
    def test_ksg1_kdtree_matches_dense(self, m, n_vars):
        rng = np.random.default_rng(100 + m + n_vars)
        values = rng.standard_normal((m, n_vars, 2))
        for i in range(1, n_vars):
            values[:, i] += 0.6 * values[:, i - 1]
        dense = ksg_multi_information(values, k=4, variant="ksg1", backend="dense")
        tree = ksg_multi_information(values, k=4, variant="ksg1", backend="kdtree")
        assert tree == pytest.approx(dense, abs=1e-9)

    def test_ksg1_kdtree_matches_dense_counts_exactly_on_grid(self):
        # Integer coordinates make every pairwise distance exactly
        # representable, so the two backends must agree bit-for-bit.
        rng = np.random.default_rng(7)
        values = rng.integers(0, 12, size=(120, 3, 2)).astype(float)
        dense = ksg_multi_information_with_diagnostics(values, k=3, variant="ksg1", backend="dense")
        tree = ksg_multi_information_with_diagnostics(values, k=3, variant="ksg1", backend="kdtree")
        np.testing.assert_array_equal(dense.counts, tree.counts)
        assert dense.value_bits == tree.value_bits

    def test_auto_resolves_by_sample_count(self):
        from repro.infotheory.ksg import KSG1_KDTREE_MIN_SAMPLES

        rng = np.random.default_rng(8)
        small = rng.standard_normal((KSG1_KDTREE_MIN_SAMPLES - 1, 2, 1))
        large = rng.standard_normal((KSG1_KDTREE_MIN_SAMPLES, 2, 1))
        for values in (small, large):
            auto = ksg_multi_information(values, k=3, variant="ksg1", backend="auto")
            dense = ksg_multi_information(values, k=3, variant="ksg1", backend="dense")
            assert auto == pytest.approx(dense, abs=1e-9)

    @pytest.mark.parametrize("variant", ["ksg2", "paper"])
    @pytest.mark.parametrize("m", [60, 300])
    def test_rect_variant_kdtree_matches_dense(self, variant, m):
        variables = _correlated_gaussians(0.5, m, seed=13)
        dense = ksg_multi_information(variables, k=3, variant=variant, backend="dense")
        tree = ksg_multi_information(variables, k=3, variant=variant, backend="kdtree")
        assert tree == pytest.approx(dense, abs=1e-9)

    @pytest.mark.parametrize("variant", ["ksg2", "paper"])
    def test_rect_variant_kdtree_matches_dense_counts_exactly_on_grid(self, variant):
        # Integer coordinates make every pairwise distance exactly
        # representable and force heavy distance ties at the k-th neighbour;
        # the canonical (distance, index) tie-breaking shared by the two
        # backends must make them agree bit-for-bit anyway.
        rng = np.random.default_rng(17)
        values = rng.integers(0, 12, size=(120, 3, 2)).astype(float)
        dense = ksg_multi_information_with_diagnostics(values, k=3, variant=variant, backend="dense")
        tree = ksg_multi_information_with_diagnostics(values, k=3, variant=variant, backend="kdtree")
        np.testing.assert_array_equal(dense.counts, tree.counts)
        assert dense.value_bits == tree.value_bits

    @pytest.mark.parametrize("variant", ["ksg1", "ksg2", "paper"])
    def test_duplicates_and_constant_blocks_agree_bitwise(self, variant):
        # Exact duplicate rows and a constant observer are the worst tie
        # cases (zero distances everywhere in one block).
        rng = np.random.default_rng(21)
        values = rng.integers(0, 4, size=(90, 3, 2)).astype(float)
        values[10:20] = values[0:10]
        values[:, 2, :] = 1.0
        dense = ksg_multi_information_with_diagnostics(values, k=4, variant=variant, backend="dense")
        tree = ksg_multi_information_with_diagnostics(values, k=4, variant=variant, backend="kdtree")
        np.testing.assert_array_equal(dense.counts, tree.counts)
        assert dense.value_bits == tree.value_bits

    def test_auto_crossover_is_per_variant(self):
        from repro.infotheory.ksg import (
            KSG1_KDTREE_MIN_SAMPLES,
            KSG2_KDTREE_MIN_SAMPLES,
            PAPER_KDTREE_MIN_SAMPLES,
            _resolve_ksg_backend,
        )

        minimums = {
            "ksg1": KSG1_KDTREE_MIN_SAMPLES,
            "ksg2": KSG2_KDTREE_MIN_SAMPLES,
            "paper": PAPER_KDTREE_MIN_SAMPLES,
        }
        for variant, minimum in minimums.items():
            assert _resolve_ksg_backend("auto", variant, minimum - 1) == "dense"
            assert _resolve_ksg_backend("auto", variant, minimum) == "kdtree"

    def test_workers_do_not_change_tree_results(self):
        variables = _correlated_gaussians(0.6, 400, seed=30)
        for variant in ("ksg1", "ksg2", "paper"):
            one = ksg_multi_information(
                variables, k=4, variant=variant, backend="kdtree", workers=1
            )
            many = ksg_multi_information(
                variables, k=4, variant=variant, backend="kdtree", workers=-1
            )
            assert one == many

    @pytest.mark.slow
    @pytest.mark.parametrize("variant", ["ksg2", "paper"])
    def test_rect_variant_kdtree_matches_dense_at_scale(self, variant):
        # Above the measured crossover the tree path is the one "auto"
        # actually takes; agreement must hold there too, not just at the
        # small sizes the quick tests cover.
        variables = _correlated_gaussians(0.4, 3000, seed=31)
        dense = ksg_multi_information(variables, k=4, variant=variant, backend="dense")
        tree = ksg_multi_information(variables, k=4, variant=variant, backend="kdtree")
        assert tree == pytest.approx(dense, abs=1e-7)

    def test_unknown_backend_is_rejected(self):
        variables = _correlated_gaussians(0.5, 50, seed=14)
        with pytest.raises(ValueError, match="unknown estimator backend"):
            ksg_multi_information(variables, k=3, variant="ksg1", backend="warp")

    def test_lagged_mi_path_delegates_to_the_same_registry(self):
        # The §7.3 lagged-MI estimator forwards its backend request here, so
        # dense/kdtree must agree through that entry point too.
        from repro.infotheory.transfer import time_lagged_mutual_information

        rng = np.random.default_rng(15)
        source = rng.standard_normal((20, 20, 2))
        target = np.roll(source, 1, axis=1) + 0.1 * rng.standard_normal((20, 20, 2))
        dense = time_lagged_mutual_information(source, target, lag=1, k=3, backend="dense")
        tree = time_lagged_mutual_information(source, target, lag=1, k=3, backend="kdtree")
        assert tree == pytest.approx(dense, abs=1e-9)
