"""Tests for repro.particles.trajectory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.particles.trajectory import EnsembleTrajectory, Trajectory


@pytest.fixture
def trajectory(rng) -> Trajectory:
    positions = rng.normal(size=(12, 5, 2))
    types = np.array([0, 0, 1, 1, 1])
    return Trajectory(positions=positions, types=types, dt=0.1)


@pytest.fixture
def ensemble(rng) -> EnsembleTrajectory:
    positions = rng.normal(size=(6, 4, 5, 2))
    types = np.array([0, 0, 1, 1, 2])
    return EnsembleTrajectory(positions=positions, types=types, dt=0.5)


class TestTrajectory:
    def test_basic_properties(self, trajectory):
        assert trajectory.n_steps == 12
        assert trajectory.n_particles == 5
        assert trajectory.n_types == 2
        np.testing.assert_allclose(trajectory.times, np.arange(12) * 0.1)

    def test_frame_and_final(self, trajectory):
        np.testing.assert_array_equal(trajectory.frame(3), trajectory.positions[3])
        np.testing.assert_array_equal(trajectory.final(), trajectory.positions[-1])

    def test_type_indices(self, trajectory):
        np.testing.assert_array_equal(trajectory.type_indices(1), [2, 3, 4])

    def test_centroid_path_shape(self, trajectory):
        assert trajectory.centroid_path().shape == (12, 2)

    def test_displacement_norms_nonnegative(self, trajectory):
        norms = trajectory.displacement_norms()
        assert norms.shape == (11,)
        assert np.all(norms >= 0)

    def test_iteration(self, trajectory):
        frames = list(trajectory)
        assert len(frames) == 12
        np.testing.assert_array_equal(frames[0], trajectory.positions[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory(positions=np.zeros((3, 4, 3)), types=np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            Trajectory(positions=np.zeros((3, 4, 2)), types=np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            Trajectory(positions=np.zeros((3, 4, 2)), types=np.zeros(4, dtype=int), dt=0.0)

    def test_save_load_roundtrip(self, trajectory, tmp_path):
        path = tmp_path / "traj.npz"
        trajectory.save(path)
        loaded = Trajectory.load(path)
        np.testing.assert_allclose(loaded.positions, trajectory.positions)
        np.testing.assert_array_equal(loaded.types, trajectory.types)
        assert loaded.dt == trajectory.dt


class TestEnsembleTrajectory:
    def test_basic_properties(self, ensemble):
        assert ensemble.n_steps == 6
        assert ensemble.n_samples == 4
        assert ensemble.n_particles == 5
        assert ensemble.n_types == 3

    def test_snapshot_shape(self, ensemble):
        assert ensemble.snapshot(2).shape == (4, 5, 2)

    def test_sample_extraction(self, ensemble):
        sample = ensemble.sample(1)
        assert isinstance(sample, Trajectory)
        np.testing.assert_array_equal(sample.positions, ensemble.positions[:, 1])

    def test_iter_samples_count(self, ensemble):
        assert len(list(ensemble.iter_samples())) == 4

    def test_thin(self, ensemble):
        thinned = ensemble.thin(2)
        assert thinned.n_steps == 3
        assert thinned.dt == ensemble.dt * 2
        np.testing.assert_array_equal(thinned.positions[1], ensemble.positions[2])

    def test_thin_invalid(self, ensemble):
        with pytest.raises(ValueError):
            ensemble.thin(0)

    def test_subset_samples(self, ensemble):
        subset = ensemble.subset_samples([0, 2])
        assert subset.n_samples == 2
        np.testing.assert_array_equal(subset.positions[:, 1], ensemble.positions[:, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleTrajectory(positions=np.zeros((2, 3, 4, 3)), types=np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            EnsembleTrajectory(positions=np.zeros((2, 3, 4, 2)), types=np.zeros(3, dtype=int))

    def test_save_load_roundtrip(self, ensemble, tmp_path):
        path = tmp_path / "ensemble.npz"
        ensemble.save(path)
        loaded = EnsembleTrajectory.load(path)
        np.testing.assert_allclose(loaded.positions, ensemble.positions)
        np.testing.assert_array_equal(loaded.types, ensemble.types)
        assert loaded.dt == ensemble.dt
