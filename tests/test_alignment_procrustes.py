"""Tests for repro.alignment.procrustes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.alignment.procrustes import RigidTransform, alignment_error, kabsch_2d


def _random_points(seed: int, n: int = 15) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-5, 5, size=(n, 2))


class TestRigidTransform:
    def test_identity(self):
        transform = RigidTransform.identity()
        points = _random_points(0)
        np.testing.assert_allclose(transform.apply(points), points)

    def test_from_angle(self):
        transform = RigidTransform.from_angle(np.pi / 2)
        np.testing.assert_allclose(transform.apply(np.array([[1.0, 0.0]])), [[0.0, 1.0]], atol=1e-12)

    def test_angle_roundtrip(self):
        for angle in (-2.0, -0.5, 0.0, 1.0, 3.0):
            assert RigidTransform.from_angle(angle).angle == pytest.approx(angle)

    def test_compose(self):
        a = RigidTransform.from_angle(0.3, (1.0, 0.0))
        b = RigidTransform.from_angle(0.5, (0.0, 2.0))
        points = _random_points(1)
        np.testing.assert_allclose(a.compose(b).apply(points), a.apply(b.apply(points)), atol=1e-12)

    def test_inverse(self):
        transform = RigidTransform.from_angle(1.2, (3.0, -1.0))
        points = _random_points(2)
        roundtrip = transform.inverse().apply(transform.apply(points))
        np.testing.assert_allclose(roundtrip, points, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            RigidTransform(rotation=np.eye(3), translation=np.zeros(2))
        with pytest.raises(ValueError):
            RigidTransform(rotation=np.eye(2), translation=np.zeros(3))


class TestKabsch:
    @given(st.floats(min_value=-3.1, max_value=3.1), st.floats(min_value=-10, max_value=10), st.floats(min_value=-10, max_value=10))
    def test_recovers_known_transform(self, angle, tx, ty):
        source = _random_points(3)
        true = RigidTransform.from_angle(angle, (tx, ty))
        target = true.apply(source)
        fitted = kabsch_2d(source, target)
        np.testing.assert_allclose(fitted.apply(source), target, atol=1e-8)

    def test_proper_rotation_only(self):
        # Even when the best orthogonal map is a reflection, the fit must
        # return a proper rotation (det = +1).
        source = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0], [2.0, 1.0]])
        target = source.copy()
        target[:, 0] *= -1  # mirrored
        fitted = kabsch_2d(source, target)
        assert np.linalg.det(fitted.rotation) == pytest.approx(1.0)

    def test_weights_ignore_outlier(self):
        source = _random_points(4, n=10)
        true = RigidTransform.from_angle(0.8, (1.0, 2.0))
        target = true.apply(source)
        target[0] += 100.0  # corrupted correspondence
        weights = np.ones(10)
        weights[0] = 0.0
        fitted = kabsch_2d(source, target, weights=weights)
        np.testing.assert_allclose(fitted.apply(source)[1:], target[1:], atol=1e-8)

    def test_empty_input_gives_identity(self):
        fitted = kabsch_2d(np.zeros((0, 2)), np.zeros((0, 2)))
        np.testing.assert_allclose(fitted.rotation, np.eye(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kabsch_2d(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            kabsch_2d(np.zeros((2, 2)), np.zeros((2, 2)), weights=np.array([-1.0, 1.0]))


class TestAlignmentError:
    def test_zero_for_identical(self):
        points = _random_points(5)
        assert alignment_error(points, points) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.array([[3.0, 4.0], [0.0, 0.0]])
        assert alignment_error(a, b) == pytest.approx(np.sqrt(25.0 / 2.0))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            alignment_error(np.zeros((2, 2)), np.zeros((3, 2)))
